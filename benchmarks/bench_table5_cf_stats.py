"""Table V — client-level failures per workload and injection type."""

from _benchutil import write_output

from repro.core.classification import ClientFailure
from repro.core.report import render_table5


def test_table5_cf_stats(benchmark, campaign_result):
    text = benchmark(render_table5, campaign_result)
    write_output("table5_cf_stats.txt", text)

    counts = campaign_result.cf_counts()
    totals = {failure.value: 0 for failure in ClientFailure}
    for row in counts.values():
        for key, value in row.items():
            totals[key] += value
    total = sum(totals.values())
    assert total == campaign_result.total_experiments()
    # Paper Table V shape: NSI dominates (~89% in the paper).
    assert totals[ClientFailure.NSI.value] >= total * 0.5
