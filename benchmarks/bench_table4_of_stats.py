"""Table IV — orchestrator-level failures per workload and injection type."""

from _benchutil import write_output

from repro.core.analysis import no_effect_fraction, system_wide_fraction
from repro.core.report import render_table4


def test_table4_of_stats(benchmark, campaign_result):
    text = benchmark(render_table4, campaign_result)
    write_output("table4_of_stats.txt", text)

    results = campaign_result.results
    # Shape checks against the paper's headline numbers (F1): most injections
    # have no effect, a small but non-zero fraction is system-wide (Sta/Out).
    assert no_effect_fraction(results) > 0.4
    assert 0.0 <= system_wide_fraction(results) < 0.35
    # All three workloads and all three injection families are represented.
    workloads = {workload for workload, _ in campaign_result.of_counts()}
    assert workloads == {"deploy", "scale", "failover"}
