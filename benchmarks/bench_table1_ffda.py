"""Table I — the FFDA fault/error/failure chain of real-world incidents."""

from _benchutil import write_output

from repro.core import ffda
from repro.core.report import render_table1


def test_table1_ffda(benchmark):
    text = benchmark(render_table1)
    write_output("table1_ffda.txt", text)
    assert ffda.incident_count() == 81
    assert ffda.outage_count() == 15
    assert ffda.misconfiguration_count() == 33
