"""Figure 5 — a golden latency time series next to an injected one."""

from _benchutil import write_output

from repro.core.report import render_figure5


def test_fig5_timeseries(benchmark, campaign_result):
    # Pick the injected run with the largest client impact and compare it with
    # the golden baseline of its workload, as the paper's Figure 5 does.
    results = [result for result in campaign_result.results if result.latency_series]
    worst = max(results, key=lambda result: result.client_zscore)
    baseline = campaign_result.baselines[worst.workload.value]

    text = benchmark(
        render_figure5, baseline.baseline_series, worst.latency_series, worst.client_zscore
    )
    write_output("fig5_timeseries.txt", text)

    assert len(baseline.baseline_series) > 0
    assert len(worst.latency_series) > 0
