"""Table III — propagation of orchestrator-level failures to client-level failures."""

from _benchutil import write_output

from repro.core.classification import ClientFailure, OrchestratorFailure
from repro.core.report import render_table3


def test_table3_of_cf_mapping(benchmark, campaign_result):
    text = benchmark(render_table3, campaign_result)
    write_output("table3_of_cf_mapping.txt", text)

    matrix = campaign_result.of_cf_matrix()
    # Shape check (paper Table III): runs with no orchestrator failure mostly
    # have no client impact, and they dominate the matrix.
    no_row = matrix[OrchestratorFailure.NO.value]
    assert no_row[ClientFailure.NSI.value] >= no_row[ClientFailure.SU.value]
    total = sum(sum(row.values()) for row in matrix.values())
    assert total == campaign_result.total_experiments()
