"""Table VI — propagation of corrupted component→Apiserver messages."""

from _benchutil import write_output

from repro.core.report import render_table6


def test_table6_propagation(benchmark, propagation_rows):
    text = benchmark(render_table6, propagation_rows)
    write_output("table6_propagation.txt", text)

    for row in propagation_rows:
        assert row["injections"] == row["propagated"] + row["errors"]
    # Paper Table VI shape: a substantial share of corrupted values propagates
    # to the store without being caught by validation.
    propagated = sum(row["propagated"] for row in propagation_rows)
    injections = sum(row["injections"] for row in propagation_rows)
    assert injections > 0
    assert propagated >= injections * 0.3
