"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import os
from pathlib import Path

#: Directory where every benchmark writes its rendered table/figure.
OUTPUT_DIR = Path(__file__).parent / "output"


def bench_scale() -> int:
    """The campaign scale factor (default 1), from ``MUTINY_BENCH_SCALE``."""
    try:
        return max(1, int(os.environ.get("MUTINY_BENCH_SCALE", "1")))
    except ValueError:
        return 1


def bench_workers() -> int:
    """Worker processes for the benchmark campaign, from ``MUTINY_BENCH_WORKERS``.

    Defaults to 1 (serial) so that benchmark outputs are directly comparable
    across runs; CI runs the suite both serially and with 2 workers and fails
    on any drift between the two.
    """
    try:
        return max(1, int(os.environ.get("MUTINY_BENCH_WORKERS", "1")))
    except ValueError:
        return 1


def write_output(name: str, text: str) -> None:
    """Persist a rendered table/figure under ``benchmarks/output/`` and print it."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / name).write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
