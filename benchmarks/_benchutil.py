"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import os
import warnings
from pathlib import Path

#: Directory where every benchmark writes its rendered table/figure.
OUTPUT_DIR = Path(__file__).parent / "output"


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    """Read an integer knob from the environment, loudly rejecting garbage.

    A malformed or out-of-range value used to be silently replaced by the
    default, which made a typo (``MUTINY_BENCH_SCALE=3x``) indistinguishable
    from an intentional small run.  The fallback behaviour stays — benchmarks
    should run, not crash, on a bad knob — but the bad value is named in a
    warning.
    """
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring {name}={raw!r}: not an integer, using {default}",
            RuntimeWarning,
            stacklevel=3,
        )
        return default
    if value < minimum:
        warnings.warn(
            f"ignoring {name}={raw!r}: must be >= {minimum}, using {minimum}",
            RuntimeWarning,
            stacklevel=3,
        )
        return minimum
    return value


def bench_scale() -> int:
    """The campaign scale factor (default 1), from ``MUTINY_BENCH_SCALE``."""
    return _env_int("MUTINY_BENCH_SCALE", 1)


def bench_workers() -> int:
    """Worker processes for the benchmark campaign, from ``MUTINY_BENCH_WORKERS``.

    Defaults to 1 (serial) so that benchmark outputs are directly comparable
    across runs; CI runs the suite both serially and with 2 workers and fails
    on any drift between the two.
    """
    return _env_int("MUTINY_BENCH_WORKERS", 1)


def write_output(name: str, text: str) -> None:
    """Persist a rendered table/figure under ``benchmarks/output/`` and print it."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / name).write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
