"""Nightly benchmark runner: per-benchmark timing + peak RSS + regression gate.

Runs every ``bench_*.py`` module in its own subprocess (so each gets a clean
interpreter and an attributable memory high-water mark), records wall-clock
time and peak resident set size, writes the lot to a JSON report, and fails
when any benchmark regresses more than ``--threshold`` against the committed
baseline.

CI runs this on a nightly cron at ``MUTINY_BENCH_SCALE=3`` with all CPUs,
uploads the report as an artifact, and also runs a fast ``--dry-run`` on
pull requests so workflow edits are exercised before merge (the dry run
records and reports, but never fails on timings — PR runners are too noisy
for that).

Usage::

    python benchmarks/nightly.py [--scale N] [--workers N]
                                 [--baseline benchmarks/BENCH_baseline.json]
                                 [--output BENCH_nightly.json]
                                 [--threshold 0.25] [--dry-run]
                                 [--write-baseline]

Peak RSS is ``max(ru_maxrss)`` over the benchmark process and its campaign
worker children, in KiB (Linux semantics).  Refresh the committed baseline
with ``--write-baseline`` on the machine class that runs the nightly job;
the gate fails only on like-for-like comparisons, and a baseline measured
on a different machine class downgrades its regressions to loud
informational notes until it is refreshed there — never excused silently.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional

BENCH_DIR = Path(__file__).parent
REPO_ROOT = BENCH_DIR.parent

#: A regression must exceed the relative threshold AND this many seconds /
#: KiB before it fails the job, so sub-second benchmarks don't flap.
MIN_TIME_SLACK_S = 2.0
MIN_RSS_SLACK_KB = 50 * 1024

_RSS_MARKER = "NIGHTLY_PEAK_RSS_KB="

_CHILD_CODE = """
import resource, sys
import pytest
rc = pytest.main(sys.argv[1:])
peak = max(
    resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
)
print("{marker}" + str(peak), flush=True)
raise SystemExit(rc)
""".replace(
    "{marker}", _RSS_MARKER
)


def discover_benchmarks() -> list[Path]:
    return sorted(BENCH_DIR.glob("bench_*.py"))


def run_benchmark(path: Path, scale: int, workers: int) -> dict:
    """Run one benchmark module in a subprocess; return its measurements."""
    env = dict(os.environ)
    env["MUTINY_BENCH_SCALE"] = str(scale)
    env["MUTINY_BENCH_WORKERS"] = str(workers)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if part
    )
    started = time.monotonic()
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _CHILD_CODE,
            str(path),
            "-q",
            "--benchmark-disable",
        ],
        cwd=str(REPO_ROOT),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    elapsed = time.monotonic() - started
    peak_rss_kb = None
    for line in proc.stdout.splitlines():
        if line.startswith(_RSS_MARKER):
            peak_rss_kb = int(line[len(_RSS_MARKER) :])
    return {
        "time_s": round(elapsed, 3),
        "peak_rss_kb": peak_rss_kb,
        "returncode": proc.returncode,
        "output_tail": proc.stdout[-2000:] if proc.returncode != 0 else "",
    }


def _machine_class_mismatch(report: dict, baseline: dict) -> Optional[str]:
    """Why this baseline is not like-for-like with this run (None = it is)."""
    if baseline.get("workers") != report["workers"]:
        return f"baseline workers {baseline.get('workers')} != run workers {report['workers']}"
    minor = str(report["python"]).rsplit(".", 1)[0]
    baseline_minor = str(baseline.get("python", "")).rsplit(".", 1)[0]
    if baseline_minor != minor:
        return f"baseline python {baseline.get('python')} != run python {report['python']}"
    return None


def compare(report: dict, baseline: dict, threshold: float) -> list[str]:
    """Regressions of ``report`` against ``baseline`` (empty = all good).

    The gate only *fails* on like-for-like comparisons: a baseline recorded
    with a different worker count or interpreter minor version was measured
    on a different machine class, and failing the cron against it would be
    noise.  Such a run still prints every would-be regression — as
    non-fatal ``note:`` lines, so the information is never lost — plus a
    loud instruction to refresh the committed baseline with
    ``--write-baseline`` where the nightly runs.  A *scale* mismatch skips
    the per-benchmark comparison entirely (timings of differently-sized
    campaigns are incomparable).
    """
    problems: list[str] = []
    if baseline.get("scale") != report["scale"]:
        return [
            f"note: baseline scale {baseline.get('scale')} != run scale "
            f"{report['scale']}; regression comparison skipped"
        ]
    for name, new in report["benchmarks"].items():
        old = baseline.get("benchmarks", {}).get(name)
        if not old:
            continue  # new benchmark: recorded, compared from the next refresh
        old_time, new_time = old.get("time_s"), new.get("time_s")
        if old_time and new_time and new_time > old_time * (1 + threshold):
            if new_time - old_time >= MIN_TIME_SLACK_S:
                problems.append(
                    f"{name}: time {new_time:.1f}s vs baseline {old_time:.1f}s "
                    f"(+{100 * (new_time / old_time - 1):.0f}%, limit "
                    f"+{100 * threshold:.0f}%)"
                )
        old_rss, new_rss = old.get("peak_rss_kb"), new.get("peak_rss_kb")
        if old_rss and new_rss and new_rss > old_rss * (1 + threshold):
            if new_rss - old_rss >= MIN_RSS_SLACK_KB:
                problems.append(
                    f"{name}: peak RSS {new_rss} KiB vs baseline {old_rss} KiB "
                    f"(+{100 * (new_rss / old_rss - 1):.0f}%, limit "
                    f"+{100 * threshold:.0f}%)"
                )
    mismatch = _machine_class_mismatch(report, baseline)
    if mismatch is not None:
        return [
            f"note: {mismatch}; regressions below are informational until the "
            "baseline is refreshed with --write-baseline on this machine class"
        ] + [f"note: {problem}" for problem in problems]
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=3, help="MUTINY_BENCH_SCALE (default 3)")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="MUTINY_BENCH_WORKERS; 0 = one per CPU (default)",
    )
    parser.add_argument(
        "--baseline",
        default=str(BENCH_DIR / "BENCH_baseline.json"),
        help="committed baseline to compare against",
    )
    parser.add_argument("--output", default="BENCH_nightly.json", help="report file to write")
    parser.add_argument(
        "--threshold", type=float, default=0.25, help="failure threshold (default 0.25 = +25%%)"
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="fast PR variant: scale 1, report regressions but never fail on them",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="also write the report to --baseline (refreshing it)",
    )
    args = parser.parse_args(argv)
    if args.dry_run and args.write_baseline:
        # A dry run forces scale 1; persisting it would leave a baseline the
        # scale-3 nightly can never compare against (silently disarmed gate).
        parser.error("--write-baseline cannot be combined with --dry-run")

    scale = 1 if args.dry_run else args.scale
    workers = args.workers if args.workers > 0 else (os.cpu_count() or 1)

    report = {
        "scale": scale,
        "workers": workers,
        "python": sys.version.split()[0],
        "benchmarks": {},
    }
    failed_runs: list[str] = []
    for path in discover_benchmarks():
        name = path.stem
        print(f"[nightly] running {name} (scale={scale}, workers={workers})", flush=True)
        measurement = run_benchmark(path, scale, workers)
        report["benchmarks"][name] = {
            "time_s": measurement["time_s"],
            "peak_rss_kb": measurement["peak_rss_kb"],
        }
        status = "ok" if measurement["returncode"] == 0 else f"FAILED rc={measurement['returncode']}"
        print(
            f"[nightly] {name}: {measurement['time_s']:.1f}s, "
            f"peak RSS {measurement['peak_rss_kb']} KiB ({status})",
            flush=True,
        )
        if measurement["returncode"] != 0:
            failed_runs.append(name)
            print(measurement["output_tail"], flush=True)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"[nightly] wrote {args.output}")

    if failed_runs:
        # Never persist a crashed benchmark's bogus timing as the baseline.
        print(f"[nightly] benchmark runs FAILED: {', '.join(failed_runs)}")
        return 1

    if args.write_baseline:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"[nightly] refreshed baseline {args.baseline}")

    problems: list[str] = []
    if os.path.exists(args.baseline) and not args.write_baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = compare(report, baseline, args.threshold)
        for problem in problems:
            print(f"[nightly] {problem}")
    else:
        print("[nightly] no baseline to compare against; report recorded only")

    real_regressions = [p for p in problems if not p.startswith("note:")]
    if real_regressions and not args.dry_run:
        print(f"[nightly] {len(real_regressions)} benchmark regression(s) above threshold")
        return 1
    if real_regressions:
        print("[nightly] dry run: regressions reported but not fatal")
    return 0


if __name__ == "__main__":
    sys.exit(main())
