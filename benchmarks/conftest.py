"""Shared benchmark fixtures.

The paper's campaign is ~8,800 experiments on a physical five-node cluster;
the benchmarks run a scaled-down campaign on the simulated cluster once per
session and share its results across every table/figure benchmark.  Set
``MUTINY_BENCH_SCALE`` to a larger integer to grow the campaign toward the
paper's size (experiments per workload = 8 × scale), and
``MUTINY_BENCH_WORKERS`` to the number of worker processes the campaign
executor may use (results are identical at any worker count).
"""

from __future__ import annotations

import pytest

from _benchutil import bench_scale, bench_workers
from repro.core.campaign import Campaign, CampaignConfig
from repro.workloads.workload import WorkloadKind


@pytest.fixture(scope="session")
def campaign_config() -> CampaignConfig:
    """Configuration of the shared benchmark campaign."""
    return CampaignConfig(
        workloads=(WorkloadKind.DEPLOY, WorkloadKind.SCALE_UP, WorkloadKind.FAILOVER),
        golden_runs=2,
        max_experiments_per_workload=16 * bench_scale(),
        seed=7,
        workers=bench_workers(),
    )


@pytest.fixture(scope="session")
def campaign_results_dir(tmp_path_factory) -> str:
    """Session-scoped sharded result store backing the shared campaign."""
    return str(tmp_path_factory.mktemp("resultstore"))


@pytest.fixture(scope="session")
def campaign_result(campaign_config, campaign_results_dir):
    """Run the shared reduced-scale injection campaign once per session.

    The campaign streams through the sharded result store, so every
    table/figure benchmark downstream exercises the same storage path a
    paper-scale campaign uses (lazy plan-order reads, one shard in memory).
    """
    campaign = Campaign(campaign_config)
    return campaign.run(results_dir=campaign_results_dir)


@pytest.fixture(scope="session")
def propagation_rows():
    """Run the Table VI propagation experiments once per session."""
    campaign = Campaign(
        CampaignConfig(
            workloads=(WorkloadKind.DEPLOY,), golden_runs=1, seed=11, workers=bench_workers()
        )
    )
    return campaign.run_propagation(
        components=("kube-controller-manager", "kube-scheduler", "kubelet"),
        fields_per_component=3 * bench_scale(),
    )
