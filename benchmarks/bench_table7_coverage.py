"""Table VII — real-world error/failure subcategories Mutiny can replicate."""

from _benchutil import write_output

from repro.core import ffda
from repro.core.report import render_table7


def test_table7_coverage(benchmark):
    text = benchmark(render_table7)
    write_output("table7_coverage.txt", text)

    coverage = ffda.coverage_table()
    failure_rows = [marker for rows in coverage["failures"].values() for _, marker in rows]
    error_rows = [marker for rows in coverage["errors"].values() for _, marker in rows]
    # Shape (paper §VI-A): almost all failure subcategories are covered, while
    # several node-local error subcategories are not.
    replicable_failures = failure_rows.count("replicable") + failure_rows.count("mutiny-only")
    assert replicable_failures / len(failure_rows) > 0.8
    assert error_rows.count("not-replicable") >= 4
