"""Figure 6 — client latency z-scores per orchestrator failure category."""

from _benchutil import write_output

from repro.core.analysis import client_impact_analysis
from repro.core.report import render_figure6


def test_fig6_zscore_impact(benchmark, campaign_result):
    text = benchmark(render_figure6, campaign_result.results)
    write_output("fig6_zscore_impact.txt", text)

    report = client_impact_analysis(campaign_result.results)
    summary = report.summary()
    assert summary, "at least one failure category must have z-scores"
    # Shape (paper Figure 6): runs with no orchestrator failure sit near the
    # golden baseline (small median z-score).
    if "No" in summary:
        assert summary["No"]["median"] < 2.0
