"""§V-C1 rerun — critical-field injections on a replicated control plane.

The paper repeats the critical-field injections on a cluster with three
control-plane nodes and finds no significant difference: the fault is
injected before consensus, so every etcd replica agrees on the corrupted
value.  This benchmark reruns the uncontrolled-replication injection on a
single- and a triple-control-plane cluster and checks that the failure
appears in both.
"""

import pytest
from _benchutil import write_output

from repro.cluster.cluster import ClusterConfig
from repro.core.classification import OrchestratorFailure
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.injector import FaultSpec, FaultType, InjectionChannel
from repro.workloads.workload import WorkloadKind

_FAULT = FaultSpec(
    channel=InjectionChannel.APISERVER_TO_ETCD,
    kind="ReplicaSet",
    field_path="spec.template.metadata.labels.app",
    fault_type=FaultType.BIT_FLIP,
    bit_index=0,
    occurrence=1,
)


def _run(control_plane_nodes: int):
    config = ExperimentConfig(cluster=ClusterConfig(control_plane_nodes=control_plane_nodes))
    runner = ExperimentRunner(config)
    baseline = runner.build_baseline(WorkloadKind.DEPLOY, runs=1, base_seed=500)
    return runner.run_experiment(WorkloadKind.DEPLOY, _FAULT, baseline=baseline, seed=501)


@pytest.fixture(scope="module")
def ha_results():
    return {nodes: _run(nodes) for nodes in (1, 3)}


def test_ha_control_plane_does_not_mask_injections(benchmark, ha_results):
    def summarize():
        lines = ["HA control-plane rerun (paper §V-C1)"]
        for nodes, result in ha_results.items():
            lines.append(
                f"control-plane nodes={nodes}: OF={result.orchestrator_failure.value} "
                f"pods_created={result.pods_created}"
            )
        return "\n".join(lines)

    text = benchmark(summarize)
    write_output("ha_control_plane.txt", text)

    # The replicated data store agrees on the corrupted value: the failure
    # category is just as severe with three control-plane nodes as with one.
    for result in ha_results.values():
        assert result.injected
        assert result.orchestrator_failure in (OrchestratorFailure.STA, OrchestratorFailure.OUT)
