"""Shard transports — POSIX vs object-store write/scan throughput.

Streams the same synthetic result records through a sharded store over both
transports (the shared-directory backend and the local object-store
emulation server) and reports shard write and store scan throughput side by
side — the object store pays one HTTP round trip per shard where POSIX pays
a rename, and this benchmark keeps that overhead visible in the nightly
record.  The batched-upload path (``--shard-batch``: several batches
appended into one shard object under a generation precondition) is timed
alongside the per-shard numbers on both transports, so the cost of the
coalescing itself stays visible too.  Timings go to stdout (and the nightly
report); the file written to ``benchmarks/output/`` carries only
transport-independent facts — record counts, shard counts, and digest
equality — so the CI serial-vs-parallel drift check can diff it like every
other rendered output.
"""

from __future__ import annotations

import time

from _benchutil import bench_scale, write_output

from repro.core.objstore import LocalObjectStore
from repro.core.resultstore import ShardedResultStore, result_to_dict
from repro.core.experiment import ExperimentResult
from repro.workloads.workload import WorkloadKind

#: Records per synthetic shard (the executor's batch size, roughly).
SHARD_RECORDS = 20

#: Batches coalesced per shard object on the batched-upload path.
SHARD_BATCH = 4


def _records(total: int) -> list[tuple[int, dict]]:
    base = result_to_dict(
        ExperimentResult(workload=WorkloadKind.DEPLOY, fault=None, seed=0)
    )
    records = []
    for index in range(total):
        data = dict(base)
        data["seed"] = 1000 + index
        data["latency_series"] = [0.01 * (index % 7), 0.02, 0.03]
        records.append((index, data))
    return records


def _write_store(root: str, records: list[tuple[int, dict]]) -> ShardedResultStore:
    store = ShardedResultStore(root)
    store.open("bench-transport", total=len(records))
    for start in range(0, len(records), SHARD_RECORDS):
        store.write_shard_dicts(records[start : start + SHARD_RECORDS])
    return store


def _write_store_batched(root: str, records: list[tuple[int, dict]]) -> ShardedResultStore:
    """The --shard-batch path: same batches, appended into 1/N the objects."""
    store = ShardedResultStore(root)
    store.open("bench-transport", total=len(records))
    writer = store.batched_writer(SHARD_BATCH)
    for start in range(0, len(records), SHARD_RECORDS):
        writer.write_dicts(records[start : start + SHARD_RECORDS])
    return store


def _scan_store(root: str) -> str:
    store = ShardedResultStore(root)  # a fresh instance: cold caches
    assert store.record_count() > 0
    return store.results_digest()


def test_transport_write_scan_throughput(benchmark, tmp_path_factory):
    total = 200 * bench_scale()
    records = _records(total)
    server = LocalObjectStore(("127.0.0.1", 0)).start()
    try:
        runs = {"count": 0}

        def posix_write_scan() -> tuple[str, str]:
            runs["count"] += 1
            root = str(tmp_path_factory.mktemp(f"posix-{runs['count']}"))
            _write_store(root, records)
            return root, _scan_store(root)

        _, posix_digest = benchmark(posix_write_scan)

        # The printed comparison times exactly one pass per transport: the
        # benchmark() call above may run calibration rounds when
        # pytest-benchmark is enabled, so it can't feed a fair side-by-side.
        started = time.monotonic()
        posix_root = str(tmp_path_factory.mktemp("posix-compare"))
        _write_store(posix_root, records)
        posix_write_seconds = time.monotonic() - started
        started = time.monotonic()
        _scan_store(posix_root)
        posix_scan_seconds = time.monotonic() - started

        remote_root = f"{server.url}/bench"
        started = time.monotonic()
        _write_store(remote_root, records)
        remote_write_seconds = time.monotonic() - started
        started = time.monotonic()
        remote_digest = _scan_store(remote_root)
        remote_scan_seconds = time.monotonic() - started

        # Batched upload (--shard-batch): same batches, 1/N the objects.
        batched_posix_root = str(tmp_path_factory.mktemp("posix-batched"))
        started = time.monotonic()
        batched_posix_store = _write_store_batched(batched_posix_root, records)
        batched_posix_write_seconds = time.monotonic() - started
        batched_posix_digest = _scan_store(batched_posix_root)
        batched_remote_root = f"{server.url}/bench-batched"
        started = time.monotonic()
        _write_store_batched(batched_remote_root, records)
        batched_remote_write_seconds = time.monotonic() - started
        batched_remote_digest = _scan_store(batched_remote_root)
        batched_shards = len(batched_posix_store.shard_keys())

        shards = -(-total // SHARD_RECORDS)
        print(
            f"\nposix ({total} records, {shards} shards): write "
            f"{posix_write_seconds:.2f}s + scan {posix_scan_seconds:.2f}s; "
            f"object store: write {remote_write_seconds:.2f}s + scan "
            f"{remote_scan_seconds:.2f}s"
        )
        print(
            f"batched x{SHARD_BATCH} ({batched_shards} shards): posix write "
            f"{batched_posix_write_seconds:.2f}s; object store write "
            f"{batched_remote_write_seconds:.2f}s"
        )

        # Only transport-independent facts go into the diffed output file.
        write_output(
            "transport_throughput.txt",
            "\n".join(
                [
                    "Shard transport drift check",
                    f"records              : {total}",
                    f"shards               : {shards}",
                    f"digest matches posix : {remote_digest == posix_digest}",
                    f"batched shards       : {batched_shards} (x{SHARD_BATCH})",
                    "batched digests match: "
                    f"{batched_posix_digest == posix_digest and batched_remote_digest == posix_digest}",
                ]
            ),
        )
        assert remote_digest == posix_digest
        assert batched_posix_digest == posix_digest
        assert batched_remote_digest == posix_digest
        assert batched_shards < shards
    finally:
        server.stop()
