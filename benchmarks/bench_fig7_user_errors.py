"""Figure 7 — how often the cluster user received an error from the Apiserver."""

from _benchutil import write_output

from repro.core.analysis import user_error_analysis
from repro.core.report import render_figure7


def test_fig7_user_errors(benchmark, campaign_result):
    text = benchmark(render_figure7, campaign_result.results)
    write_output("fig7_user_errors.txt", text)

    report = user_error_analysis(campaign_result.results)
    # Shape (paper F4): in the vast majority of failed experiments the user
    # receives no error from the Apiserver (>85% in the paper).
    assert report.silent_failure_fraction >= 0.5
