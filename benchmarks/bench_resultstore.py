"""Streaming result store — shard-merge throughput and drift sentinel.

The campaign behind every other benchmark already streams through a sharded
result store (see ``conftest.py``); this benchmark times the store-side
aggregation path (scan + plan-order merge + one-pass tally) and renders the
store summary into ``benchmarks/output/``.  The summary depends only on the
stored results — not on how they were chunked into shards — so the CI
serial-vs-parallel drift check diffs it like every other rendered output.
"""

from __future__ import annotations

from _benchutil import write_output

from repro.core.campaign import CampaignResult
from repro.core.report import render_store_summary
from repro.core.resultstore import ShardedResultStore


def test_resultstore_streaming_summary(benchmark, campaign_result, campaign_results_dir):
    store = ShardedResultStore(campaign_results_dir)
    text = benchmark(render_store_summary, store)
    write_output("store_summary.txt", text)

    # The streamed view and the campaign's own results agree exactly.
    streamed = CampaignResult(results=store.all_results())
    assert streamed.total_experiments() == campaign_result.total_experiments()
    assert streamed.classification_counts() == campaign_result.classification_counts()
    assert streamed.activation_rate() == campaign_result.activation_rate()

    # Every record is on disk, compressed, and re-readable.
    assert store.record_count() == campaign_result.total_experiments()
    assert store.compressed_bytes() > 0
    assert len(store.results_digest()) == 64
