"""Finding F2 — critical-field analysis (§V-C2).

Which fields caused Sta / Out / SU failures, and what fraction of those
injections targeted the fields tracking dependency relationships among
resource instances (labels, selectors, owner references).  The paper reports
51% for the full 8,782-experiment campaign.
"""

from _benchutil import write_output

from repro.core.analysis import critical_field_analysis
from repro.core.report import render_critical_fields


def test_f2_critical_fields(benchmark, campaign_result):
    text = benchmark(render_critical_fields, campaign_result.results)
    write_output("f2_critical_fields.txt", text)

    report = critical_field_analysis(campaign_result.results)
    if report.critical_experiments:
        # Shape: dependency-tracking and identity fields dominate the
        # critical set (the paper's 51% + the name/namespace/uid group).
        dependency_like = (
            report.injections_per_category.get("dependency", 0)
            + report.injections_per_category.get("identity", 0)
            + report.injections_per_category.get("serialization/message", 0)
        )
        assert dependency_like >= report.critical_experiments * 0.3
