"""Distributed backend — coordinator overhead vs the local pool.

Runs the same small campaign twice at equal worker counts: once through the
local process-pool backend and once through the distributed backend (one
coordinator in-process plus two real ``repro.cli worker`` subprocesses over
a shared store directory), and reports the wall-clock overhead of the
lease/plan protocol.  Timings go to stdout (and the nightly report); the
file written to ``benchmarks/output/`` carries only layout-independent
facts — digest equality and experiment counts — so the CI
serial-vs-parallel drift check can diff it like every other rendered
output.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from _benchutil import write_output

import repro
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.distributed import DistributedSettings
from repro.core.resultstore import ShardedResultStore
from repro.workloads.workload import WorkloadKind

#: Worker count on both sides of the comparison: the local pool gets two
#: processes, the distributed run gets two worker subprocesses.
WORKER_COUNT = 2

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _config(workers: int) -> CampaignConfig:
    return CampaignConfig(
        workloads=(WorkloadKind.DEPLOY,),
        golden_runs=1,
        max_experiments_per_workload=8,
        seed=7,
        workers=workers,
        chunk_size=2,
    )


def _spawn_worker(root: str, worker_id: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (_SRC_DIR, env.get("PYTHONPATH")) if part
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--results-dir",
            root,
            "--worker-id",
            worker_id,
            "--poll-interval",
            "0.1",
            "--wait-timeout",
            "600",
            "--quiet",
        ],
        env=env,
    )


def test_distributed_coordinator_overhead(benchmark, tmp_path_factory):
    local_root = str(tmp_path_factory.mktemp("dist-bench-local"))
    started = time.monotonic()
    local_result = Campaign(_config(WORKER_COUNT)).run(results_dir=local_root)
    local_seconds = time.monotonic() - started

    runs = {"count": 0}

    def run_distributed() -> str:
        runs["count"] += 1
        root = str(tmp_path_factory.mktemp(f"dist-bench-remote-{runs['count']}"))
        workers = [_spawn_worker(root, f"bench-w{i}") for i in range(WORKER_COUNT)]
        try:
            Campaign(_config(1)).run(
                results_dir=root,
                backend="distributed",
                distributed=DistributedSettings(
                    slice_size=2, poll_interval=0.1, timeout=600
                ),
            )
        finally:
            for worker in workers:
                worker.wait(timeout=120)
        return root

    started = time.monotonic()
    distributed_root = benchmark(run_distributed)
    distributed_seconds = time.monotonic() - started

    local_digest = ShardedResultStore(local_root).results_digest()
    distributed_store = ShardedResultStore(distributed_root)
    total = local_result.total_experiments()

    # Only worker-count-independent facts go into the diffed output file.
    write_output(
        "distributed_overhead.txt",
        "\n".join(
            [
                "Distributed backend drift check",
                f"experiments          : {total}",
                f"digest matches local : {distributed_store.results_digest() == local_digest}",
                f"records (raw==distinct): "
                f"{distributed_store.stored_record_count() == distributed_store.record_count() == total}",
            ]
        ),
    )
    print(
        f"\nlocal pool ({WORKER_COUNT} workers): {local_seconds:.2f}s; "
        f"distributed (coordinator + {WORKER_COUNT} worker processes): "
        f"{distributed_seconds:.2f}s; "
        f"overhead {distributed_seconds - local_seconds:+.2f}s"
    )

    assert distributed_store.results_digest() == local_digest
    assert distributed_store.stored_record_count() == total
    assert distributed_store.record_count() == total
