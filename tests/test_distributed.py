"""Tests for the distributed (multi-host) campaign backend.

The contract under test: a campaign executed by one coordinator plus any
number of worker processes over a shared directory produces a result store
whose digest is byte-identical to the serial run of the same configuration,
with zero lost and zero replayed experiments — including when a worker is
SIGKILLed mid-slice and its lease is reclaimed.  The lease lifecycle itself
(O_EXCL claim, TTL expiry, heartbeat refresh, reclamation, coordinator
re-publish) is exercised edge by edge.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.distributed import (
    DistributedPlan,
    DistributedPlanError,
    DistributedSettings,
    DistributedTimeoutError,
    DistributedWorker,
    SliceLeases,
    default_slice_size,
    load_plan,
    publish_plan,
    wait_for_plan,
)
from repro.core.experiment import ExperimentConfig
from repro.core.parallel import ExperimentTask
from repro.core.resultstore import (
    ResultStoreMismatchError,
    ShardedResultStore,
    atomic_write_bytes,
)
from repro.workloads.workload import WorkloadKind

#: src/ directory, for PYTHONPATH of spawned worker processes.
_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _tiny_config(**overrides) -> CampaignConfig:
    defaults = dict(
        workloads=(WorkloadKind.DEPLOY,),
        golden_runs=1,
        max_experiments_per_workload=6,
        seed=3,
        workers=1,
        chunk_size=1,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """One serial store-backed run every distributed test compares against."""
    root = str(tmp_path_factory.mktemp("serial-store"))
    result = Campaign(_tiny_config()).run(results_dir=root)
    return root, result


def _toy_plan(total: int = 6, slice_size: int = 3) -> DistributedPlan:
    """A plan whose tasks never execute (lease/publish plumbing tests)."""
    from repro.core.injector import FaultSpec, InjectionChannel

    fault = FaultSpec(channel=InjectionChannel.APISERVER_TO_ETCD, kind="Pod")
    tasks = [
        ExperimentTask(index=i, workload=WorkloadKind.DEPLOY, fault=fault, seed=1000 + i)
        for i in range(total)
    ]
    return DistributedPlan(
        fingerprint="toy-fingerprint",
        experiment_config=ExperimentConfig(),
        tasks=tasks,
        baselines={},
        slice_size=slice_size,
    )


def _worker_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (_SRC_DIR, env.get("PYTHONPATH")) if part
    )
    return env


# ------------------------------------------------------------------ plumbing


def test_default_slice_size_splits_into_about_eight():
    assert default_slice_size(1) == 1
    assert default_slice_size(8) == 1
    assert default_slice_size(80) == 10
    assert default_slice_size(81) == 11


def test_atomic_write_leaves_no_temp_files(tmp_path):
    path = str(tmp_path / "file.bin")
    atomic_write_bytes(path, b"payload")
    with open(path, "rb") as handle:
        assert handle.read() == b"payload"
    assert os.listdir(tmp_path) == ["file.bin"]


def test_plan_publish_roundtrip_is_idempotent_and_refuses_foreign(tmp_path):
    root = str(tmp_path / "store")
    os.makedirs(root)
    plan = _toy_plan()
    assert load_plan(root) is None
    assert publish_plan(root, plan) is True
    loaded = load_plan(root)
    assert loaded.fingerprint == plan.fingerprint
    assert loaded.tasks == plan.tasks
    assert [(s.start, s.stop) for s in loaded.slices()] == [(0, 3), (3, 6)]

    # Coordinator resume: re-publishing the identical plan is a no-op.
    assert publish_plan(root, plan) is False

    # A different campaign must not silently replace the published plan.
    foreign = _toy_plan()
    foreign.fingerprint = "other-fingerprint"
    with pytest.raises(DistributedPlanError):
        publish_plan(root, foreign)


def test_wait_for_plan_times_out_without_coordinator(tmp_path):
    with pytest.raises(DistributedTimeoutError):
        wait_for_plan(str(tmp_path), timeout=0.2, poll_interval=0.05)


def test_wait_for_plan_rejects_plan_manifest_fingerprint_mismatch(tmp_path):
    root = str(tmp_path / "store")
    os.makedirs(root)
    ShardedResultStore(root).open("manifest-fingerprint", total=6)
    publish_plan(root, _toy_plan())  # fingerprint "toy-fingerprint"
    with pytest.raises(DistributedPlanError):
        wait_for_plan(root, timeout=1.0)


# --------------------------------------------------------- lease lifecycle


def test_double_claim_has_exactly_one_winner(tmp_path):
    leases = SliceLeases(str(tmp_path), ttl=30.0)
    assert leases.try_claim(0, "worker-a") is True
    assert leases.try_claim(0, "worker-b") is False
    info = leases.lease_info(0)
    assert info.worker == "worker-a"
    assert not info.expired
    # Other slices stay claimable.
    assert leases.try_claim(1, "worker-b") is True


def test_concurrent_claims_have_exactly_one_winner(tmp_path):
    # The O_EXCL create is the arbiter: many threads racing for one slice
    # must produce exactly one owner.
    leases = SliceLeases(str(tmp_path), ttl=30.0)
    outcomes: list[tuple[str, bool]] = []
    barrier = threading.Barrier(8)

    def contend(name: str) -> None:
        barrier.wait()
        outcomes.append((name, SliceLeases(str(tmp_path), ttl=30.0).try_claim(7, name)))

    threads = [threading.Thread(target=contend, args=(f"w{i}",)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    winners = [name for name, won in outcomes if won]
    assert len(winners) == 1
    assert leases.lease_info(7).worker == winners[0]


def _backdate(leases: SliceLeases, slice_id: int, seconds: float) -> None:
    path = leases._lease_path(slice_id)
    stat = os.stat(path)
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


def test_expired_lease_is_reclaimed_fresh_lease_is_not(tmp_path):
    leases = SliceLeases(str(tmp_path), ttl=5.0)
    assert leases.try_claim(0, "crashed-worker")
    # Fresh: a second worker cannot steal it.
    assert leases.try_claim(0, "worker-b") is False
    # Expired (mtime older than the owner's TTL): reclamation succeeds.
    _backdate(leases, 0, seconds=6.0)
    assert leases.lease_info(0).expired
    assert leases.try_claim(0, "worker-b") is True
    assert leases.lease_info(0).worker == "worker-b"


def test_expiry_honors_the_owners_recorded_ttl(tmp_path):
    # The claimer promised a 60s TTL; a reclaimer configured with a short
    # TTL must still respect the owner's contract.
    owner = SliceLeases(str(tmp_path), ttl=60.0)
    assert owner.try_claim(0, "long-ttl-worker")
    impatient = SliceLeases(str(tmp_path), ttl=0.1)
    _backdate(owner, 0, seconds=5.0)  # old, but well within the owner's 60s
    assert impatient.lease_info(0).expired is False
    assert impatient.try_claim(0, "impatient") is False


def test_unreadable_lease_still_counts_and_expires_by_age(tmp_path):
    # A claimer that died between the O_EXCL create and the payload write
    # leaves an empty lease file; it must block the slice only until it
    # ages out (treating it as absent would deadlock the slice: O_EXCL can
    # never succeed against an existing file).
    leases = SliceLeases(str(tmp_path), ttl=5.0)
    os.makedirs(leases.lease_dir, exist_ok=True)
    open(leases._lease_path(0), "wb").close()
    info = leases.lease_info(0)
    assert info is not None and info.worker == "?"
    assert leases.try_claim(0, "worker-b") is False  # young: still a lease
    _backdate(leases, 0, seconds=6.0)
    assert leases.try_claim(0, "worker-b") is True
    assert leases.lease_info(0).worker == "worker-b"


def test_heartbeat_refresh_prevents_reclamation(tmp_path):
    leases = SliceLeases(str(tmp_path), ttl=5.0)
    assert leases.try_claim(0, "worker-a")
    _backdate(leases, 0, seconds=6.0)
    # The owner heartbeats just in time: the lease is fresh again.
    assert leases.heartbeat(0, "worker-a") is True
    assert not leases.lease_info(0).expired
    assert leases.try_claim(0, "worker-b") is False


def test_heartbeat_detects_lost_lease(tmp_path):
    leases = SliceLeases(str(tmp_path), ttl=5.0)
    assert leases.try_claim(0, "worker-a")
    _backdate(leases, 0, seconds=6.0)
    assert leases.try_claim(0, "worker-b")  # reclaimed
    # The original owner's next heartbeat must report the loss, not refresh
    # worker-b's lease.
    before = os.stat(leases._lease_path(0)).st_mtime
    assert leases.heartbeat(0, "worker-a") is False
    assert os.stat(leases._lease_path(0)).st_mtime == before
    # An absent lease is also a loss.
    leases.release(0)
    assert leases.heartbeat(0, "worker-a") is False


def test_release_by_evicted_owner_leaves_new_owners_lease_alone(tmp_path):
    # A worker that lost its lease releases on the way out; the new owner's
    # fresh lease must survive, or a third worker could double-claim the
    # slice while the second still runs it.
    leases = SliceLeases(str(tmp_path), ttl=5.0)
    assert leases.try_claim(0, "worker-a")
    _backdate(leases, 0, seconds=6.0)
    assert leases.try_claim(0, "worker-b")
    leases.release(0, "worker-a")
    assert leases.lease_info(0).worker == "worker-b"
    # The rightful owner (and the administrative form) still release.
    leases.release(0, "worker-b")
    assert leases.lease_info(0) is None


def test_done_marker_blocks_claims_and_records_provenance(tmp_path):
    leases = SliceLeases(str(tmp_path), ttl=5.0)
    assert leases.try_claim(0, "worker-a")
    leases.mark_done(0, "worker-a", start=0, stop=3, executed=3)
    assert leases.is_done(0)
    assert leases.lease_info(0) is None  # lease released with the marker
    assert leases.try_claim(0, "worker-b") is False
    (record,) = leases.done_records()
    assert record["worker"] == "worker-a"
    assert (record["start"], record["stop"], record["executed"]) == (0, 3, 3)


# ------------------------------------------------- end-to-end distributed


def test_distributed_run_matches_serial_digest(serial_reference, tmp_path):
    serial_root, serial_result = serial_reference
    root = str(tmp_path / "dist")
    config = _tiny_config()

    outcome: dict = {}

    def coordinate() -> None:
        try:
            outcome["result"] = Campaign(config).run(
                results_dir=root,
                backend="distributed",
                distributed=DistributedSettings(
                    slice_size=2, poll_interval=0.05, timeout=600
                ),
            )
        except BaseException as error:  # noqa: BLE001 - surfaced in the assert below
            outcome["error"] = error

    coordinator = threading.Thread(target=coordinate)
    coordinator.start()
    deadline = time.monotonic() + 300
    while not os.path.exists(os.path.join(root, "PLAN.pkl")):
        assert "error" not in outcome, f"coordinator failed: {outcome.get('error')}"
        assert time.monotonic() < deadline, "coordinator never published the plan"
        time.sleep(0.05)

    workers = [
        DistributedWorker(
            root, worker_id=f"w{i}", poll_interval=0.05, lease_ttl=30.0, wait_timeout=60
        )
        for i in (1, 2)
    ]
    reports = [None, None]

    def run_worker(position: int) -> None:
        reports[position] = workers[position].run()

    threads = [threading.Thread(target=run_worker, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    coordinator.join()
    assert "error" not in outcome, f"coordinator failed: {outcome.get('error')}"

    result = outcome["result"]
    store = ShardedResultStore(root)
    total = serial_result.total_experiments()
    # Byte-identical merged digest, zero lost, zero replayed.
    assert store.results_digest() == ShardedResultStore(serial_root).results_digest()
    assert store.record_count() == total
    assert store.stored_record_count() == total
    assert result.total_experiments() == total
    assert result.classification_counts() == serial_result.classification_counts()
    # Every experiment ran exactly once, somewhere.
    assert sum(report.experiments_run for report in reports) == total
    # Every slice carries provenance.
    leases = SliceLeases(root)
    done = leases.done_records()
    assert sorted(record["start"] for record in done) == list(range(0, total, 2))
    assert leases.outstanding() == []


def test_sigkilled_worker_is_reclaimed_without_loss_or_replay(
    serial_reference, tmp_path
):
    """The acceptance bar: SIGKILL a worker mid-slice; the campaign still
    finishes with a digest byte-identical to the serial run, zero lost and
    zero duplicated experiments."""
    serial_root, serial_result = serial_reference
    root = str(tmp_path / "dist")
    config = _tiny_config()
    total = serial_result.total_experiments()

    outcome: dict = {}

    def coordinate() -> None:
        try:
            outcome["result"] = Campaign(config).run(
                results_dir=root,
                backend="distributed",
                distributed=DistributedSettings(
                    slice_size=3, poll_interval=0.05, timeout=600
                ),
            )
        except BaseException as error:  # noqa: BLE001 - surfaced in the assert below
            outcome["error"] = error

    coordinator = threading.Thread(target=coordinate)
    coordinator.start()
    deadline = time.monotonic() + 300
    while not os.path.exists(os.path.join(root, "PLAN.pkl")):
        assert "error" not in outcome, f"coordinator failed: {outcome.get('error')}"
        assert time.monotonic() < deadline, "coordinator never published the plan"
        time.sleep(0.05)

    # The victim claims a slice, writes exactly one single-experiment shard,
    # then stops heartbeating while holding its lease (a hung worker); the
    # SIGKILL makes the hang permanent.
    victim = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--results-dir",
            root,
            "--worker-id",
            "victim",
            "--chunk-size",
            "1",
            "--lease-ttl",
            "2",
            "--stall-after-batches",
            "1",
            "--wait-timeout",
            "120",
            "--quiet",
        ],
        env=_worker_env(),
    )
    try:
        store = ShardedResultStore(root)
        while not store.shard_paths():
            assert victim.poll() is None, "victim worker exited prematurely"
            assert time.monotonic() < deadline, "victim never wrote its first shard"
            time.sleep(0.05)
    finally:
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

    survivors = len(ShardedResultStore(root).completed_indexes())
    assert 0 < survivors < total

    rescue = DistributedWorker(
        root, worker_id="rescue", poll_interval=0.1, lease_ttl=30.0, wait_timeout=60
    ).run()
    coordinator.join()
    assert "error" not in outcome, f"coordinator failed: {outcome.get('error')}"

    store = ShardedResultStore(root)
    # Zero lost: every experiment is stored and the digest matches serially.
    assert store.record_count() == total
    assert store.results_digest() == ShardedResultStore(serial_root).results_digest()
    # Zero replayed: the victim's completed shard survived reclamation, so
    # raw records == distinct records, and the rescue worker executed only
    # what the victim hadn't stored.
    assert store.stored_record_count() == total
    assert rescue.experiments_run == total - survivors
    assert outcome["result"].classification_counts() == serial_result.classification_counts()
    # Provenance: the rescue worker completed every slice; the victim
    # appears nowhere as an owner (its lease was reclaimed).
    done = SliceLeases(root).done_records()
    assert {record["worker"] for record in done} == {"rescue"}
    assert SliceLeases(root).outstanding() == []


def test_objectstore_sigkilled_worker_recovery_matches_serial(
    serial_reference, tmp_path
):
    """The transport acceptance bar: the full SIGKILL-reclamation scenario —
    coordinator, a victim worker killed mid-slice, a rescue worker — run over
    the object-store transport, with zero lost and zero replayed experiments
    and a digest byte-identical to the serial (POSIX) run."""
    from repro.core.objstore import LocalObjectStore
    from repro.core.transport import transport_for

    serial_root, serial_result = serial_reference
    config = _tiny_config()
    total = serial_result.total_experiments()
    server = LocalObjectStore(("127.0.0.1", 0)).start()
    root = f"{server.url}/dist"
    victim = None

    outcome: dict = {}

    def coordinate() -> None:
        try:
            outcome["result"] = Campaign(config).run(
                results_dir=root,
                backend="distributed",
                distributed=DistributedSettings(
                    slice_size=3, poll_interval=0.05, timeout=600
                ),
            )
        except BaseException as error:  # noqa: BLE001 - surfaced in the assert below
            outcome["error"] = error

    coordinator = threading.Thread(target=coordinate)
    coordinator.start()
    try:
        transport = transport_for(root)
        deadline = time.monotonic() + 300
        while transport.stat("PLAN.pkl") is None:
            assert "error" not in outcome, f"coordinator failed: {outcome.get('error')}"
            assert time.monotonic() < deadline, "coordinator never published the plan"
            time.sleep(0.05)

        # The victim is a real subprocess reaching the store over HTTP; it
        # writes one single-experiment shard, stalls holding its lease, and
        # is SIGKILLed — exactly the POSIX scenario, minus any shared mount.
        victim = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "worker",
                "--results-dir",
                root,
                "--worker-id",
                "victim",
                "--chunk-size",
                "1",
                "--lease-ttl",
                "2",
                "--stall-after-batches",
                "1",
                "--wait-timeout",
                "120",
                "--quiet",
            ],
            env=_worker_env(),
        )
        try:
            store = ShardedResultStore(root)
            while not store.shard_keys():
                assert victim.poll() is None, "victim worker exited prematurely"
                assert time.monotonic() < deadline, "victim never wrote its first shard"
                time.sleep(0.05)
        finally:
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)

        survivors = len(ShardedResultStore(root).completed_indexes())
        assert 0 < survivors < total

        rescue = DistributedWorker(
            root, worker_id="rescue", poll_interval=0.1, lease_ttl=30.0, wait_timeout=60
        ).run()
        coordinator.join()
        assert "error" not in outcome, f"coordinator failed: {outcome.get('error')}"

        store = ShardedResultStore(root)
        # Zero lost, zero replayed, byte-identical to the POSIX serial run.
        assert store.record_count() == total
        assert store.stored_record_count() == total
        assert store.results_digest() == ShardedResultStore(serial_root).results_digest()
        assert rescue.experiments_run == total - survivors
        assert (
            outcome["result"].classification_counts()
            == serial_result.classification_counts()
        )
        done = SliceLeases(root).done_records()
        assert {record["worker"] for record in done} == {"rescue"}
        assert SliceLeases(root).outstanding() == []
    finally:
        if victim is not None and victim.poll() is None:
            victim.kill()
        coordinator.join(timeout=60)
        server.stop()


def test_distributed_rerun_of_completed_store_is_a_noop_resume(
    serial_reference, tmp_path, monkeypatch
):
    # Coordinator crash-after-completion: a rerun must re-publish (no-op),
    # re-run zero experiments, and return the identical result.
    import repro.core.parallel as parallel_module

    serial_root, serial_result = serial_reference
    root = str(tmp_path / "dist")
    config = _tiny_config()

    worker_done = threading.Event()

    def run_worker() -> None:
        try:
            DistributedWorker(
                root, worker_id="only", poll_interval=0.05, wait_timeout=120
            ).run()
        finally:
            worker_done.set()

    thread = threading.Thread(target=run_worker)
    thread.start()
    first = Campaign(config).run(
        results_dir=root,
        backend="distributed",
        distributed=DistributedSettings(poll_interval=0.05, timeout=600),
    )
    thread.join()
    assert worker_done.is_set()

    def forbidden(*args, **kwargs):
        raise AssertionError("a completed distributed campaign re-ran an experiment")

    monkeypatch.setattr(parallel_module, "_run_batch_local", forbidden)
    monkeypatch.setattr(parallel_module, "_run_golden_job", forbidden)
    resumed = Campaign(config).run(
        results_dir=root,
        backend="distributed",
        distributed=DistributedSettings(poll_interval=0.05, timeout=60),
    )
    assert resumed.classification_counts() == first.classification_counts()
    assert ShardedResultStore(root).results_digest() == (
        ShardedResultStore(serial_root).results_digest()
    )

    # And a different configuration is rejected, not silently mixed in
    # (the prep fingerprint check fires even before the plan comparison).
    with pytest.raises(ResultStoreMismatchError):
        Campaign(_tiny_config(golden_runs=2)).run(
            results_dir=root,
            backend="distributed",
            distributed=DistributedSettings(poll_interval=0.05, timeout=60),
        )


# --------------------------------------------------------------------- CLI


def test_cli_backend_distributed_requires_results_dir(capsys):
    from repro.cli import main

    assert main(["campaign", "--backend", "distributed"]) == 2
    assert "--results-dir" in capsys.readouterr().err


def test_cli_worker_times_out_without_plan(tmp_path, capsys):
    from repro.cli import main

    exit_code = main(
        ["worker", "--results-dir", str(tmp_path), "--wait-timeout", "0.2", "--quiet"]
    )
    assert exit_code == 2
    assert "no campaign plan" in capsys.readouterr().err


def test_cli_run_rejects_unknown_backend():
    with pytest.raises(ValueError):
        Campaign(_tiny_config()).run(backend="bogus")
    with pytest.raises(ValueError):
        Campaign(_tiny_config()).run(backend="distributed")  # no results_dir


def test_cli_inspect_reports_provenance_and_outstanding_leases(
    serial_reference, tmp_path, capsys
):
    from repro.cli import main

    serial_root, _ = serial_reference
    # Serial stores stay clean: no distributed section at all.
    assert main(["inspect", serial_root]) == 0
    assert "Distributed campaign" not in capsys.readouterr().out

    # A store with a published plan, one done slice, and one held lease.
    root = str(tmp_path / "store")
    os.makedirs(root)
    ShardedResultStore(root).open("toy-fingerprint", total=6)
    publish_plan(root, _toy_plan())
    leases = SliceLeases(root, ttl=30.0)
    assert leases.try_claim(0, "worker-a")
    leases.mark_done(0, "worker-a", start=0, stop=3, executed=3)
    assert leases.try_claim(1, "worker-b")

    json_path = str(tmp_path / "inspect.json")
    assert main(["inspect", root, "--json", json_path]) == 0
    out = capsys.readouterr().out
    assert "Distributed campaign" in out
    assert "done by worker-a (3 executed)" in out
    assert "held by worker-b" in out
    assert "fresh" in out
    with open(json_path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["stored_records"] == 0  # no shards in this toy store


# ------------------------------------- paginated + batched object-store runs


def test_paginated_batched_objectstore_campaign_matches_serial(
    serial_reference, tmp_path
):
    """The scale acceptance bar: a distributed campaign over an object store
    that forces limit=2 listing pages, executed by --shard-batch 4 workers,
    still produces a store digest byte-identical to the serial POSIX run,
    with zero lost and zero replayed experiments — while storing fewer
    shard objects than batches."""
    from repro.core.objstore import LocalObjectStore

    serial_root, serial_result = serial_reference
    total = serial_result.total_experiments()
    config = _tiny_config(shard_batch=4)
    server = LocalObjectStore(("127.0.0.1", 0), max_page=2).start()
    try:
        root = f"{server.url}/dist"
        outcome: dict = {}

        def coordinate() -> None:
            try:
                outcome["result"] = Campaign(config).run(
                    results_dir=root,
                    backend="distributed",
                    distributed=DistributedSettings(
                        slice_size=2, poll_interval=0.05, timeout=600
                    ),
                )
            except BaseException as error:  # noqa: BLE001 - surfaced below
                outcome["error"] = error

        coordinator = threading.Thread(target=coordinate)
        coordinator.start()
        deadline = time.monotonic() + 300
        while load_plan(root) is None:
            assert "error" not in outcome, f"coordinator failed: {outcome.get('error')}"
            assert time.monotonic() < deadline, "coordinator never published the plan"
            time.sleep(0.05)

        worker = DistributedWorker(
            root,
            worker_id="w1",
            shard_batch=4,
            poll_interval=0.05,
            lease_ttl=30.0,
            wait_timeout=60,
        )
        worker_thread = threading.Thread(target=worker.run)
        worker_thread.start()
        worker_thread.join()
        coordinator.join()
        assert "error" not in outcome, f"coordinator failed: {outcome.get('error')}"

        store = ShardedResultStore(root)
        assert store.results_digest() == ShardedResultStore(serial_root).results_digest()
        assert store.record_count() == total
        assert store.stored_record_count() == total  # appends duplicated nothing
        # chunk_size=1 makes every experiment its own batch (6 of them), and
        # the single worker's shard group spans its slices, so exactly
        # ceil(6/4) shard objects exist — the full configured coalescing.
        assert len(store.shard_keys()) == -(-total // 4)
        assert outcome["result"].classification_counts() == (
            serial_result.classification_counts()
        )
    finally:
        server.stop()


# ------------------------------------------------- CLI flag validation


@pytest.mark.parametrize(
    "argv",
    [
        ["campaign", "--slice-size", "0"],
        ["campaign", "--poll-interval", "0"],
        ["campaign", "--coordinator-timeout", "-5"],
        ["campaign", "--shard-batch", "0"],
        ["worker", "--results-dir", "x", "--shard-batch", "-1"],
        ["worker", "--results-dir", "x", "--poll-interval", "0"],
        ["worker", "--results-dir", "x", "--lease-ttl", "0"],
        ["autofederate", "dest", "src", "--poll-interval", "0"],
        ["autofederate", "dest", "src", "--timeout", "0"],
    ],
)
def test_cli_rejects_non_positive_tuning_flags_naming_them(argv, capsys):
    """A non-positive slice size, poll interval, timeout, or shard batch
    used to range from a silent busy-loop to a ZeroDivisionError deep in the
    worker; the CLI must reject each one up front, naming the flag."""
    from repro.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert argv[-2] in err  # the offending flag is named
    assert "invalid value" in err


def test_published_plan_carries_shard_batch_to_inheriting_workers(tmp_path):
    # campaign --shard-batch N publishes the coalescing factor with the
    # plan; a worker that sets no --shard-batch of its own inherits it
    # (silently ignoring the coordinator's flag was the old behavior).
    root = str(tmp_path)
    plan = _toy_plan()
    plan.shard_batch = 5
    publish_plan(root, plan)
    assert load_plan(root).shard_batch == 5
    worker = DistributedWorker(root, worker_id="w", wait_timeout=5)
    assert worker.shard_batch is None  # None = inherit from the plan
