"""Tests for the process-parallel campaign execution subsystem.

The contract under test is the one the executor is built around: an
experiment is fully determined by its ``(workload, fault, seed, config)``
tuple, so a campaign sharded across worker processes must produce exactly
the results of the serial run — same classifications, same order — and a
checkpointed campaign must resume without re-running completed experiments.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.classification import GoldenBaseline
from repro.core.experiment import ExperimentResult
from repro.core.injector import FaultSpec, FaultType, InjectionChannel
from repro.core.parallel import (
    CampaignExecutor,
    CheckpointMismatchError,
    ExperimentTask,
    campaign_fingerprint,
    load_checkpoint,
    resolve_workers,
    tasks_fingerprint,
    write_checkpoint,
)
from repro.workloads.workload import WorkloadKind


def _tiny_config(**overrides) -> CampaignConfig:
    defaults = dict(
        workloads=(WorkloadKind.DEPLOY,),
        golden_runs=1,
        max_experiments_per_workload=4,
        seed=3,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


# ----------------------------------------------------------- pure plumbing


def test_resolve_workers():
    assert resolve_workers(3) == 3
    assert resolve_workers(1) == 1
    assert resolve_workers(None) >= 1
    assert resolve_workers(0) == resolve_workers(None)


def test_fault_task_and_baseline_pickle_roundtrip():
    fault = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Deployment",
        field_path="spec.replicas",
        name="webapp-1",
        namespace="default",
        fault_type=FaultType.BIT_FLIP,
        bit_index=4,
        occurrence=2,
    )
    task = ExperimentTask(index=5, workload=WorkloadKind.SCALE_UP, fault=fault, seed=1006)
    baseline = GoldenBaseline.from_golden_runs(
        workload="deploy",
        series=[[0.1, 0.2], [0.1, 0.3]],
        expected_replicas=6,
        expected_endpoints=6,
        pods_created=[10, 11],
        settle_times=[30.0, 32.0],
        client_errors=[1, 2],
    )
    result = ExperimentResult(workload=WorkloadKind.DEPLOY, fault=fault, seed=1006)
    for original in (fault, task, baseline, result):
        clone = pickle.loads(pickle.dumps(original))
        assert clone == original


def test_executor_chunking_covers_all_tasks_exactly_once():
    fault = FaultSpec(channel=InjectionChannel.APISERVER_TO_ETCD, kind="Pod")
    tasks = [
        ExperimentTask(index=i, workload=WorkloadKind.DEPLOY, fault=fault, seed=1000 + i)
        for i in range(11)
    ]
    executor = CampaignExecutor(workers=2)
    chunks = executor._chunks(tasks, workers=2)
    flattened = [task for chunk in chunks for task in chunk]
    assert flattened == tasks
    assert all(chunks)
    sized = CampaignExecutor(workers=2, chunk_size=3)._chunks(tasks, workers=2)
    assert [len(chunk) for chunk in sized] == [3, 3, 3, 2]


def test_fingerprint_is_stable_and_sensitive():
    fault = FaultSpec(channel=InjectionChannel.APISERVER_TO_ETCD, kind="Pod")
    tasks = [ExperimentTask(index=0, workload=WorkloadKind.DEPLOY, fault=fault, seed=1001)]
    assert tasks_fingerprint(tasks) == tasks_fingerprint(list(tasks))
    reseeded = [ExperimentTask(index=0, workload=WorkloadKind.DEPLOY, fault=fault, seed=1002)]
    assert tasks_fingerprint(tasks) != tasks_fingerprint(reseeded)
    refaulted = [
        ExperimentTask(
            index=0,
            workload=WorkloadKind.DEPLOY,
            fault=FaultSpec(
                channel=InjectionChannel.APISERVER_TO_ETCD, kind="Pod", bit_index=7
            ),
            seed=1001,
        )
    ]
    assert tasks_fingerprint(tasks) != tasks_fingerprint(refaulted)


def test_campaign_fingerprint_covers_config_and_baselines():
    # A resumed checkpoint must not mix results classified against different
    # baselines or produced by a different experiment configuration.
    from repro.core.experiment import ExperimentConfig

    fault = FaultSpec(channel=InjectionChannel.APISERVER_TO_ETCD, kind="Pod")
    tasks = [ExperimentTask(index=0, workload=WorkloadKind.DEPLOY, fault=fault, seed=1001)]
    config = ExperimentConfig()
    baseline = GoldenBaseline.from_golden_runs(
        workload="deploy",
        series=[[0.1]],
        expected_replicas=6,
        expected_endpoints=6,
        pods_created=[10],
        settle_times=[30.0],
    )
    base = campaign_fingerprint(tasks, config, {"deploy": baseline})
    assert base == campaign_fingerprint(tasks, config, {"deploy": baseline})
    other_baseline = GoldenBaseline.from_golden_runs(
        workload="deploy",
        series=[[0.1], [0.2]],
        expected_replicas=6,
        expected_endpoints=6,
        pods_created=[10, 12],
        settle_times=[30.0, 31.0],
    )
    assert base != campaign_fingerprint(tasks, config, {"deploy": other_baseline})
    assert base != campaign_fingerprint(tasks, ExperimentConfig(run_seconds=90.0), {"deploy": baseline})


def test_checkpoint_roundtrip_and_mismatch(tmp_path):
    path = str(tmp_path / "campaign.ckpt")
    results = {0: ExperimentResult(workload=WorkloadKind.DEPLOY, fault=None, seed=1001)}
    write_checkpoint(path, "fingerprint-a", results)
    assert load_checkpoint(path, "fingerprint-a") == results
    with pytest.raises(CheckpointMismatchError):
        load_checkpoint(path, "fingerprint-b")
    assert load_checkpoint(str(tmp_path / "absent.ckpt"), "fingerprint-a") == {}
    garbage = tmp_path / "garbage.ckpt"
    garbage.write_text("not a pickle")
    with pytest.raises(CheckpointMismatchError):
        load_checkpoint(str(garbage), "fingerprint-a")


def test_per_run_prep_matches_build_baseline():
    # Preparation fans out one job per golden run; the baseline assembled
    # from per-run stats must equal the one ExperimentRunner builds serially.
    from repro.core.experiment import ExperimentConfig, ExperimentRunner
    from repro.core.parallel import WorkloadPrep

    config = ExperimentConfig()
    executor = CampaignExecutor(config, workers=1)
    ((baseline, recorded),) = executor.prepare_workloads(
        [WorkloadPrep(workload=WorkloadKind.DEPLOY, golden_runs=2, record_seed=50)]
    )
    assert baseline == ExperimentRunner(config).build_baseline(WorkloadKind.DEPLOY, runs=2)
    assert recorded, "the record run must have captured etcd-written fields"

    # golden_runs=0 (the propagation prep) records fields but skips the baseline.
    ((no_baseline, recorded_only),) = executor.prepare_workloads(
        [WorkloadPrep(workload=WorkloadKind.DEPLOY, golden_runs=0, record_seed=60)]
    )
    assert no_baseline is None
    assert recorded_only


# ------------------------------------------------- end-to-end determinism


def test_serial_and_parallel_campaign_results_identical():
    # The acceptance bar of the parallel engine: the same CampaignConfig run
    # with workers=1 and workers=4 yields identical classification counts and
    # identical result ordering.
    serial = Campaign(_tiny_config(workers=1)).run()
    parallel = Campaign(_tiny_config(workers=4)).run()
    assert serial.classification_counts() == parallel.classification_counts()
    assert [result.seed for result in serial.results] == [
        result.seed for result in parallel.results
    ]
    assert [result.fault.describe() for result in serial.results] == [
        result.fault.describe() for result in parallel.results
    ]
    assert serial.results == parallel.results
    assert serial.baselines == parallel.baselines


def test_checkpoint_resume_skips_completed_experiments(tmp_path):
    config = _tiny_config(workers=1)
    campaign = Campaign(config)
    tasks, baselines, _ = campaign.plan_campaign()
    assert [task.index for task in tasks] == list(range(len(tasks)))
    path = str(tmp_path / "resume.ckpt")

    first_calls: list[tuple[int, int]] = []
    executor = CampaignExecutor(
        config.experiment,
        workers=1,
        chunk_size=1,
        progress=lambda done, total: first_calls.append((done, total)),
        checkpoint_path=path,
    )
    results = executor.run_experiments(tasks, baselines=baselines)
    total = len(tasks)
    assert first_calls == [(done, total) for done in range(1, total + 1)]

    # Drop one completed experiment from the checkpoint: the rerun must
    # execute exactly that one and reproduce the full result list.
    fingerprint = campaign_fingerprint(tasks, config.experiment, baselines)
    completed = load_checkpoint(path, fingerprint)
    del completed[1]
    write_checkpoint(path, fingerprint, completed)

    second_calls: list[tuple[int, int]] = []
    resumed = CampaignExecutor(
        config.experiment,
        workers=1,
        chunk_size=1,
        progress=lambda done, total: second_calls.append((done, total)),
        checkpoint_path=path,
    ).run_experiments(tasks, baselines=baselines)
    assert resumed == results
    # One progress call for the resumed state, one for the single rerun batch.
    assert second_calls == [(total - 1, total), (total, total)]


def test_campaign_resume_skips_workload_preparation(tmp_path, monkeypatch):
    # A full Campaign.run with a checkpoint persists the golden baselines and
    # field recordings too; the resumed run must not redo them.
    import repro.core.parallel as parallel_module

    config = _tiny_config(workers=1, max_experiments_per_workload=2)
    path = str(tmp_path / "full.ckpt")
    first = Campaign(config).run(checkpoint_path=path)

    def explode(*args, **kwargs):
        raise AssertionError("prep must come from the checkpoint on resume")

    monkeypatch.setattr(parallel_module, "_run_golden_job", explode)
    resumed = Campaign(config).run(checkpoint_path=path)
    assert resumed.results == first.results
    assert resumed.baselines == first.baselines
    assert resumed.recorded_fields == first.recorded_fields

    # A configuration change is rejected *before* any prep recomputation
    # (fail-fast: the monkeypatched prep would explode otherwise).
    changed = _tiny_config(workers=1, max_experiments_per_workload=2, golden_runs=2)
    with pytest.raises(CheckpointMismatchError):
        Campaign(changed).run(checkpoint_path=path)


# --------------------------------------------------------------------- CLI


def test_cli_campaign_smoke(tmp_path, capsys):
    from repro.cli import main

    json_path = str(tmp_path / "summary.json")
    exit_code = main(
        [
            "campaign",
            "--workloads",
            "deploy",
            "--golden-runs",
            "1",
            "--max-experiments",
            "2",
            "--seed",
            "3",
            "--workers",
            "1",
            "--quiet",
            "--json",
            json_path,
        ]
    )
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "Campaign summary" in captured.out
    with open(json_path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["experiments"] == 2
    assert sum(payload["classification_counts"].values()) == 2


def test_cli_rejects_unknown_workload_and_component(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["campaign", "--workloads", "bogus"])
    assert "unknown workload" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["propagation", "--components", "kube-proxy"])
    assert "unknown component" in capsys.readouterr().err
