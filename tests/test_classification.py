"""Unit tests for failure classification (OF and CF) and the golden baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classification import (
    ClientFailure,
    ClientObservations,
    GoldenBaseline,
    OrchestratorFailure,
    OrchestratorObservations,
    classify_client,
    classify_orchestrator,
    detect_unreachable_tail,
    mean_absolute_error,
    most_severe_cf,
    most_severe_of,
)


def _baseline(expected=6, errors_mean=0.0):
    baseline = GoldenBaseline.from_golden_runs(
        workload="deploy",
        series=[[0.05] * 100, [0.05] * 100, [0.052] * 100],
        expected_replicas=expected,
        expected_endpoints=expected,
        pods_created=[6, 6, 6],
        settle_times=[10.0, 11.0, 10.5],
        client_errors=[int(errors_mean)] * 3,
    )
    return baseline


def _healthy_observations(expected=6):
    return OrchestratorObservations(
        final_ready_replicas=expected,
        final_desired_replicas=expected,
        final_endpoints=expected,
        peak_total_pods=expected + 7,
        final_total_pods=expected + 7,
        pods_created=6,
        network_manager_ready=5,
        dns_ready=2,
        expected_network_manager=5,
        settle_time=10.0,
        final_reachability=1.0,
    )


# ----------------------------------------------------------- severity order


def test_severity_ordering():
    assert most_severe_of([OrchestratorFailure.LER, OrchestratorFailure.OUT]) == OrchestratorFailure.OUT
    assert most_severe_of([OrchestratorFailure.TIM, OrchestratorFailure.NET]) == OrchestratorFailure.NET
    assert most_severe_of([]) == OrchestratorFailure.NO
    assert most_severe_cf([ClientFailure.HRT, ClientFailure.SU]) == ClientFailure.SU
    assert most_severe_cf([]) == ClientFailure.NSI


# ------------------------------------------------------------ MAE machinery


def test_mean_absolute_error_alignment_and_padding():
    assert mean_absolute_error([1.0, 1.0], [1.0, 1.0]) == 0.0
    assert mean_absolute_error([1.0], [1.0, 1.0]) == pytest.approx(0.5)
    assert mean_absolute_error([], []) == 0.0


def test_mae_zscore_floor_prevents_degenerate_std():
    baseline = _baseline()
    # A series identical to the baseline has a z-score near zero even though
    # the golden MAEs are nearly identical to each other.
    assert abs(baseline.mae_zscore([0.05] * 100)) < 2.0
    # A grossly degraded series exceeds the HRT threshold.
    assert baseline.mae_zscore([0.5] * 100) > 2.0


def test_settle_time_zscore_handles_missing():
    baseline = _baseline()
    assert baseline.settle_time_zscore(None) == float("inf")
    assert baseline.settle_time_zscore(10.5) < 3.0
    assert baseline.settle_time_zscore(100.0) > 3.0


# ---------------------------------------------------------- OF classification


def test_healthy_run_classified_no():
    assert classify_orchestrator(_healthy_observations(), _baseline()) == OrchestratorFailure.NO


def test_less_resources():
    observations = _healthy_observations()
    observations.final_ready_replicas = 4
    observations.final_endpoints = 4
    assert classify_orchestrator(observations, _baseline()) == OrchestratorFailure.LER


def test_more_resources():
    observations = _healthy_observations()
    observations.final_ready_replicas = 9
    observations.final_endpoints = 9
    assert classify_orchestrator(observations, _baseline()) == OrchestratorFailure.MOR


def test_net_failure_right_pods_wrong_networking():
    observations = _healthy_observations()
    observations.final_endpoints = 3
    assert classify_orchestrator(observations, _baseline()) == OrchestratorFailure.NET
    observations = _healthy_observations()
    observations.unreachable_running_pods = 2
    assert classify_orchestrator(observations, _baseline()) == OrchestratorFailure.NET


def test_stall_from_uncontrolled_spawn():
    observations = _healthy_observations()
    observations.pods_created = 200
    observations.pod_count_growing = True
    assert classify_orchestrator(observations, _baseline()) == OrchestratorFailure.STA


def test_stall_from_lost_leadership_or_etcd_alarm():
    observations = _healthy_observations()
    observations.kcm_is_leader = False
    assert classify_orchestrator(observations, _baseline()) == OrchestratorFailure.STA
    observations = _healthy_observations()
    observations.etcd_alarm = True
    assert classify_orchestrator(observations, _baseline()) == OrchestratorFailure.STA


def test_stall_from_degraded_network_manager():
    observations = _healthy_observations()
    observations.network_manager_ready = 3
    assert classify_orchestrator(observations, _baseline()) == OrchestratorFailure.STA


def test_outage_from_dns_or_network_collapse():
    observations = _healthy_observations()
    observations.dns_ready = 0
    assert classify_orchestrator(observations, _baseline()) == OrchestratorFailure.OUT
    observations = _healthy_observations()
    observations.network_manager_ready = 0
    observations.final_reachability = 0.0
    assert classify_orchestrator(observations, _baseline()) == OrchestratorFailure.OUT
    observations = _healthy_observations()
    observations.final_endpoints = 0
    observations.final_reachability = 0.0
    assert classify_orchestrator(observations, _baseline()) == OrchestratorFailure.OUT


def test_timing_failure_from_restarts_or_slow_settle():
    observations = _healthy_observations()
    observations.app_pod_restarts = 1
    assert classify_orchestrator(observations, _baseline()) == OrchestratorFailure.TIM
    observations = _healthy_observations()
    observations.settle_time = 55.0
    assert classify_orchestrator(observations, _baseline()) == OrchestratorFailure.TIM


def test_most_severe_category_wins():
    observations = _healthy_observations()
    observations.final_ready_replicas = 4  # LeR
    observations.dns_ready = 0  # Out
    assert classify_orchestrator(observations, _baseline()) == OrchestratorFailure.OUT


# ---------------------------------------------------------- CF classification


def test_client_nsi_for_clean_run():
    baseline = _baseline()
    failure, zscore = classify_client(
        ClientObservations(latency_series=[0.05] * 100, total_requests=100), baseline
    )
    assert failure == ClientFailure.NSI
    assert zscore < 2.0


def test_client_hrt_for_slow_run():
    baseline = _baseline()
    failure, zscore = classify_client(
        ClientObservations(latency_series=[0.3] * 100, total_requests=100), baseline
    )
    assert failure == ClientFailure.HRT
    assert zscore > 2.0


def test_client_ia_for_intermittent_errors():
    baseline = _baseline()
    series = [0.05] * 90 + [0.0] * 5 + [0.05] * 5
    failure, _ = classify_client(
        ClientObservations(latency_series=series, error_count=5, error_bursts=1, total_requests=100),
        baseline,
    )
    assert failure in (ClientFailure.IA, ClientFailure.HRT)
    assert failure != ClientFailure.SU


def test_client_su_for_unreachable_tail():
    baseline = _baseline()
    series = [0.05] * 50 + [0.0] * 50
    failure, _ = classify_client(
        ClientObservations(
            latency_series=series,
            error_count=50,
            error_bursts=1,
            total_requests=100,
            unreachable_from_some_point=True,
        ),
        baseline,
    )
    assert failure == ClientFailure.SU


def test_client_errors_compared_against_golden_level():
    # Golden runs of the deploy workload already fail ~140 requests while the
    # service comes up; the same number of errors must not classify as IA.
    baseline = _baseline(errors_mean=140)
    failure, _ = classify_client(
        ClientObservations(latency_series=[0.05] * 100, error_count=140, total_requests=100),
        baseline,
    )
    assert failure == ClientFailure.NSI


def test_detect_unreachable_tail():
    assert detect_unreachable_tail([True] * 10 + [False] * 20)
    assert not detect_unreachable_tail([False] * 20 + [True] * 10)
    assert not detect_unreachable_tail([True] * 30)
    assert not detect_unreachable_tail([])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50))
def test_classification_is_total(series):
    # Any latency series classifies into exactly one category without raising.
    baseline = _baseline()
    failure, zscore = classify_client(
        ClientObservations(latency_series=series, total_requests=len(series)), baseline
    )
    assert failure in ClientFailure
    assert isinstance(zscore, float)
