"""Unit tests for the Apiserver request path, validation, admission and watches."""

import pytest

from repro.apiserver.admission import AdmissionChain, deny_oversized_requests
from repro.apiserver.apiserver import APIServer
from repro.apiserver.client import APIClient
from repro.apiserver.errors import (
    AlreadyExistsError,
    ConflictError,
    ForbiddenError,
    InvalidObjectError,
    NotFoundError,
    ServerUnavailableError,
)
from repro.apiserver.registry import (
    UnknownKindError,
    is_namespaced,
    kind_from_key,
    storage_key,
    storage_prefix,
)
from repro.apiserver.validation import validate_object
from repro.etcd.raft import RaftGroup
from repro.etcd.store import EtcdStore
from repro.objects.kinds import make_deployment, make_namespace, make_node, make_pod, make_service
from repro.serialization import encode
from repro.sim.engine import Simulation

# ----------------------------------------------------------------- registry


def test_storage_key_layout():
    assert storage_key("Pod", "ns1", "p") == "/registry/pods/ns1/p"
    assert storage_key("Node", None, "n") == "/registry/nodes/n"
    assert storage_prefix("Deployment") == "/registry/deployments/"
    assert is_namespaced("Pod") and not is_namespaced("Node")


def test_kind_from_key():
    assert kind_from_key("/registry/pods/ns/p") == "Pod"
    assert kind_from_key("/registry/nodes/n") == "Node"
    assert kind_from_key("/other/path") is None
    assert kind_from_key("/registry/unknownkind/ns/x") is None


def test_unknown_kind_rejected():
    with pytest.raises(UnknownKindError):
        storage_key("Widget", "ns", "w")


# --------------------------------------------------------------- validation


def test_validation_accepts_wellformed_objects():
    for kind, obj in (
        ("Pod", make_pod("p")),
        ("Deployment", make_deployment("d")),
        ("Service", make_service("s")),
        ("Node", make_node("n")),
    ):
        assert validate_object(kind, obj, obj["metadata"].get("namespace")).ok


def test_validation_rejects_bad_names():
    pod = make_pod("Bad_Name!")
    assert not validate_object("Pod", pod, "default").ok


def test_validation_rejects_namespace_url_mismatch():
    pod = make_pod("p", namespace="other")
    result = validate_object("Pod", pod, expected_namespace="default")
    assert not result.ok
    assert any("namespace" in error for error in result.errors)


def test_validation_rejects_selector_template_mismatch():
    deployment = make_deployment("d", labels={"app": "d"})
    deployment["spec"]["selector"]["matchLabels"] = {"app": "other"}
    assert not validate_object("Deployment", deployment, "default").ok


def test_validation_rejects_extreme_replicas_but_not_wrong_ones():
    deployment = make_deployment("d", replicas=17)
    # 17 is wrong (user wanted 5) but syntactically valid: accepted.
    assert validate_object("Deployment", deployment, "default").ok
    deployment["spec"]["replicas"] = -1
    assert not validate_object("Deployment", deployment, "default").ok
    deployment["spec"]["replicas"] = 10**9
    assert not validate_object("Deployment", deployment, "default").ok


def test_validation_does_not_catch_valid_but_wrong_label():
    # The paper's F2 weakness: a flipped character is still a valid label.
    deployment = make_deployment("d", labels={"app": "d"})
    deployment["spec"]["template"]["metadata"]["labels"]["app"] = "e"
    deployment["spec"]["selector"]["matchLabels"]["app"] = "e"
    assert validate_object("Deployment", deployment, "default").ok


def test_validation_rejects_missing_containers_and_bad_ports():
    pod = make_pod("p")
    pod["spec"]["containers"] = []
    assert not validate_object("Pod", pod, "default").ok
    service = make_service("s", port=99999)
    assert not validate_object("Service", service, "default").ok


# ---------------------------------------------------------------- admission


def test_admission_defaults_pod_fields():
    chain = AdmissionChain()
    pod = make_pod("p")
    del pod["spec"]["priority"]
    chain.admit("Pod", pod, "create")
    assert pod["spec"]["priority"] == 0


def test_admission_policy_plugin_can_reject():
    chain = AdmissionChain()
    chain.add_plugin(deny_oversized_requests)
    deployment = make_deployment("d", replicas=1000)
    with pytest.raises(ForbiddenError):
        chain.admit("Deployment", deployment, "create")


# ---------------------------------------------------------------- apiserver


def _apiserver() -> APIServer:
    return APIServer(Simulation(), EtcdStore())


def test_create_get_list_delete_cycle():
    api = _apiserver()
    created = api.create("Pod", make_pod("p", namespace="default"))
    assert created["metadata"]["resourceVersion"] > 0
    fetched = api.get("Pod", "p", namespace="default")
    assert fetched["metadata"]["name"] == "p"
    assert len(api.list("Pod", namespace="default")) == 1
    assert api.delete("Pod", "p", namespace="default")
    with pytest.raises(NotFoundError):
        api.get("Pod", "p", namespace="default")


def test_create_duplicate_rejected():
    api = _apiserver()
    api.create("Pod", make_pod("p"))
    with pytest.raises(AlreadyExistsError):
        api.create("Pod", make_pod("p"))


def test_update_requires_existing_object_and_matching_resource_version():
    api = _apiserver()
    with pytest.raises(NotFoundError):
        api.update("Pod", make_pod("ghost"))
    created = api.create("Pod", make_pod("p"))
    created["spec"]["priority"] = 10
    api.update("Pod", created)
    stale = dict(created)
    stale["metadata"] = dict(created["metadata"])
    stale["metadata"]["resourceVersion"] = created["metadata"]["resourceVersion"]
    with pytest.raises(ConflictError):
        api.update("Pod", stale)


def test_update_bumps_generation_only_on_spec_change():
    api = _apiserver()
    deployment = api.create("Deployment", make_deployment("d", replicas=1))
    assert deployment["metadata"]["generation"] == 1
    fetched = api.get("Deployment", "d")
    fetched["spec"]["replicas"] = 2
    updated = api.update("Deployment", fetched)
    assert updated["metadata"]["generation"] == 2
    fetched = api.get("Deployment", "d")
    fetched["status"]["readyReplicas"] = 2
    status_updated = api.update_status("Deployment", fetched)
    assert status_updated["metadata"]["generation"] == 2


def test_list_with_label_selector():
    api = _apiserver()
    api.create("Pod", make_pod("a", labels={"app": "web"}))
    api.create("Pod", make_pod("b", labels={"app": "db"}))
    assert len(api.list("Pod", label_selector={"app": "web"})) == 1


def test_invalid_object_rejected_and_logged():
    api = _apiserver()
    pod = make_pod("p")
    pod["spec"]["containers"] = []
    with pytest.raises(InvalidObjectError):
        api.create("Pod", pod)
    assert api.user_errors("user")


def test_unhealthy_apiserver_returns_503():
    api = _apiserver()
    api.healthy = False
    with pytest.raises(ServerUnavailableError):
        api.create("Pod", make_pod("p"))


def test_no_quorum_returns_503():
    raft = RaftGroup(["a", "b", "c"])
    api = APIServer(Simulation(), EtcdStore(), raft=raft)
    raft.fail_member("a")
    raft.fail_member("b")
    with pytest.raises(ServerUnavailableError):
        api.create("Pod", make_pod("p"))


def test_etcd_quota_exhaustion_returns_503():
    api = APIServer(Simulation(), EtcdStore(quota_bytes=600))
    api.create("Namespace", make_namespace("a"))
    with pytest.raises(ServerUnavailableError):
        for index in range(10):
            api.create("Pod", make_pod(f"p{index}"))
    assert any(event["reason"] == "EtcdSpaceExhausted" for event in api.events)


def test_undecodable_object_is_deleted_on_read():
    api = _apiserver()
    api.create("Pod", make_pod("p"))
    key = storage_key("Pod", "default", "p")
    api.store.put(key, b"\xff\xff\xff\xff")
    api.restart()  # drop the cache so the read goes to the corrupted bytes
    with pytest.raises(NotFoundError):
        api.get("Pod", "p")
    assert api.store.get(key) is None
    assert any(event["reason"] == "UndecodableObjectDeleted" for event in api.events)


def test_message_drop_hook_acknowledges_without_persisting():
    api = _apiserver()
    api.set_etcd_write_hook(lambda context, data: None)
    api.create("Pod", make_pod("p"))
    api.set_etcd_write_hook(None)
    # The user got an acknowledgement but the object never reached the store.
    assert api.list("Pod") == []
    assert not api.user_errors("user")


def test_corrupting_hook_persists_corrupted_value():
    api = _apiserver()

    def corrupt(context, data):
        obj = make_pod("p")
        obj["metadata"]["labels"] = {"app": "corrupted"}
        return encode(obj)

    api.set_etcd_write_hook(corrupt)
    api.create("Pod", make_pod("p", labels={"app": "web"}))
    api.set_etcd_write_hook(None)
    stored = api.get("Pod", "p")
    assert stored["metadata"]["labels"]["app"] == "corrupted"


def test_watch_handlers_receive_events():
    sim = Simulation()
    api = APIServer(sim, EtcdStore())
    events = []
    api.add_watch_handler("Pod", lambda event_type, obj: events.append((event_type, obj["metadata"]["name"])))
    api.create("Pod", make_pod("p"))
    sim.run_for(1.0)
    fetched = api.get("Pod", "p")
    fetched["spec"]["priority"] = 5
    api.update("Pod", fetched)
    api.delete("Pod", "p")
    sim.run_for(1.0)
    types = [event_type for event_type, _ in events]
    assert types == ["ADDED", "MODIFIED", "DELETED"]


def test_at_rest_corruption_masked_by_cache_until_restart():
    api = _apiserver()
    api.create("Deployment", make_deployment("d", replicas=2))
    key = storage_key("Deployment", "default", "d")
    corrupted = api.get("Deployment", "d")
    corrupted["spec"]["replicas"] = 99
    # Corrupt at rest, bypassing the apiserver and its watch (simulating a
    # direct disk corruption rather than a watched write).
    api.store._data[key].value = encode(corrupted)  # noqa: SLF001 - test reaches into the store
    assert api.get("Deployment", "d")["spec"]["replicas"] == 2
    api.restart()
    assert api.get("Deployment", "d")["spec"]["replicas"] == 99


# ------------------------------------------------------------------- client


def test_client_request_hook_can_corrupt_and_drop():
    api = _apiserver()
    client = APIClient(api, component="kube-controller-manager")

    client.set_request_hook(lambda context, data: None)
    client.create("Pod", make_pod("dropped"))
    assert api.list("Pod") == []

    def corrupt(context, data):
        return data[:-1] + bytes([data[-1] ^ 0xFF])

    client.set_request_hook(corrupt)
    try:
        client.create("Pod", make_pod("maybe"))
    except InvalidObjectError:
        pass
    client.set_request_hook(None)
    client.create("Pod", make_pod("clean"))
    assert any(pod["metadata"]["name"] == "clean" for pod in api.list("Pod"))


def test_client_counts_failures():
    api = _apiserver()
    client = APIClient(api, component="tester")
    client.create("Pod", make_pod("p"))
    with pytest.raises(AlreadyExistsError):
        client.create("Pod", make_pod("p"))
    assert client.requests_sent == 2
    assert client.requests_failed == 1
