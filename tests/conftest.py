"""Shared test fixtures.

``control_plane`` builds a minimal simulated control plane (sim + etcd +
apiserver + admin client) without booting a full cluster; unit tests for
controllers drive it by hand.  ``booted_cluster`` boots a full default
cluster once per test session for read-only integration assertions; tests
that mutate cluster state build their own cluster instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.apiserver.apiserver import APIServer
from repro.apiserver.client import APIClient
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.etcd.store import EtcdStore
from repro.objects.meta import reset_uid_counter
from repro.sim.engine import Simulation
from repro.sim.rng import DeterministicRNG


@dataclass
class ControlPlane:
    """A minimal control plane for controller unit tests."""

    sim: Simulation
    store: EtcdStore
    apiserver: APIServer
    admin: APIClient


@pytest.fixture()
def control_plane() -> ControlPlane:
    """A fresh, empty control plane (no controllers running)."""
    reset_uid_counter()
    sim = Simulation(rng=DeterministicRNG(0))
    store = EtcdStore()
    apiserver = APIServer(sim, store)
    admin = APIClient(apiserver, component="test-admin")
    return ControlPlane(sim=sim, store=store, apiserver=apiserver, admin=admin)


@pytest.fixture(scope="session")
def booted_cluster() -> Cluster:
    """A booted default cluster shared by read-only integration tests."""
    cluster = Cluster(ClusterConfig(seed=42))
    cluster.boot(stabilization_seconds=30.0)
    return cluster


def make_cluster(seed: int = 0, **overrides) -> Cluster:
    """Helper for tests that need their own mutable cluster."""
    config = ClusterConfig(seed=seed)
    for key, value in overrides.items():
        setattr(config, key, value)
    cluster = Cluster(config)
    cluster.boot(stabilization_seconds=30.0)
    return cluster
