"""Unit tests for the workload drivers, the application client, and the
campaign result aggregations behind Tables III-V."""

import pytest

from repro.core.campaign import CampaignResult
from repro.core.classification import ClientFailure, OrchestratorFailure
from repro.core.experiment import ExperimentResult
from repro.core.injector import FaultSpec, FaultType, InjectionChannel
from repro.core.report import render_table3, render_table4, render_table5
from repro.network.network import ClusterNetwork
from repro.objects.kinds import make_node
from repro.sim.engine import Simulation
from repro.workloads.appclient import ApplicationClient, RequestSample
from repro.workloads.scenario import SEED_CONFIGMAP, SERVICE_NAME, ServiceApplication
from repro.workloads.workload import KbenchDriver, WorkloadKind

# ---------------------------------------------------------------- scenarios


def test_service_application_creates_shared_objects(control_plane):
    application = ServiceApplication(control_plane.admin)
    application.create_shared_objects()
    assert control_plane.admin.get("Service", SERVICE_NAME)["spec"]["selector"] == {"tier": "webapp"}
    assert control_plane.admin.get("ConfigMap", SEED_CONFIGMAP)["data"]["seed"] == "42"


def test_service_application_deployments_carry_shared_label_and_volume(control_plane):
    application = ServiceApplication(control_plane.admin)
    application.create_shared_objects()
    application.create_deployments(count=2, replicas=2)
    assert application.deployment_names == ["webapp-1", "webapp-2"]
    deployment = control_plane.admin.get("Deployment", "webapp-1")
    labels = deployment["spec"]["template"]["metadata"]["labels"]
    assert labels["tier"] == "webapp"
    volumes = deployment["spec"]["template"]["spec"]["volumes"]
    assert volumes[0]["configMap"]["name"] == SEED_CONFIGMAP
    assert application.expected_replicas() == 4
    application.scale("webapp-1", 5)
    assert application.expected_replicas() == 7


# ------------------------------------------------------------------ kbench


def _driver(control_plane, kind, taint_node=None):
    application = ServiceApplication(control_plane.admin)
    return KbenchDriver(control_plane.sim, control_plane.admin, application, kind, taint_node=taint_node)


def test_deploy_workload_creates_three_deployments(control_plane):
    driver = _driver(control_plane, WorkloadKind.DEPLOY)
    driver.setup_scenario()
    assert control_plane.admin.list("Deployment") == []
    driver.start()
    control_plane.sim.run_for(10.0)
    assert len(control_plane.admin.list("Deployment")) == 3
    assert driver.expected_total_replicas() == 6
    assert not driver.failed_requests()


def test_scale_workload_steps_to_five_replicas_each(control_plane):
    driver = _driver(control_plane, WorkloadKind.SCALE_UP)
    driver.setup_scenario()
    assert len(control_plane.admin.list("Deployment")) == 2
    driver.start()
    control_plane.sim.run_for(5.0)
    assert control_plane.admin.get("Deployment", "webapp-1")["spec"]["replicas"] == 3
    control_plane.sim.run_for(30.0)
    replicas = [d["spec"]["replicas"] for d in control_plane.admin.list("Deployment")]
    assert replicas == [5, 5]
    assert driver.expected_total_replicas() == 10


def test_failover_workload_taints_the_target_node(control_plane):
    control_plane.admin.create("Node", make_node("worker-2"))
    driver = _driver(control_plane, WorkloadKind.FAILOVER, taint_node="worker-2")
    driver.setup_scenario()
    driver.start()
    control_plane.sim.run_for(10.0)
    node = control_plane.admin.get("Node", "worker-2", namespace=None)
    effects = [taint["effect"] for taint in node["spec"]["taints"]]
    assert "NoExecute" in effects


def test_failover_without_target_records_user_error(control_plane):
    driver = _driver(control_plane, WorkloadKind.FAILOVER, taint_node=None)
    driver.setup_scenario()
    driver.start()
    control_plane.sim.run_for(10.0)
    assert driver.failed_requests()


# ------------------------------------------------------------- app client


def test_application_client_sends_rate_times_duration_requests(control_plane):
    network = ClusterNetwork(control_plane.sim, control_plane.apiserver)
    client = ApplicationClient(
        control_plane.sim, network, rate=10.0, duration=3.0, expected_backends=1
    )
    client.start()
    with pytest.raises(RuntimeError):
        client.start()
    control_plane.sim.run_for(5.0)
    assert len(client.samples) == 30
    # No service exists: every request fails, availability is zero and the
    # time series is padded with zeros.
    assert client.availability() == 0.0
    assert set(client.time_series()) == {0.0}
    assert client.error_burst_count() == 1


def test_application_client_error_bursts_and_availability():
    sim = Simulation()
    client = ApplicationClient(sim, network=None)  # type: ignore[arg-type]
    client.samples = [
        RequestSample(time=0.0, latency=0.05, success=True),
        RequestSample(time=1.0, latency=0.0, success=False, error="no-endpoints"),
        RequestSample(time=2.0, latency=0.05, success=True),
        RequestSample(time=3.0, latency=0.0, success=False, error="no-endpoints"),
        RequestSample(time=4.0, latency=0.0, success=False, error="no-endpoints"),
    ]
    assert client.error_burst_count() == 2
    assert client.availability() == pytest.approx(0.4)
    assert len(client.error_samples()) == 3


# ------------------------------------------------------------- aggregation


def _synthetic_result(workload, fault_type, of, cf, zscore=0.0, activated=True):
    fault = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Deployment",
        field_path="spec.replicas" if fault_type is not FaultType.MESSAGE_DROP else None,
        fault_type=fault_type,
    )
    result = ExperimentResult(workload=workload, fault=fault, seed=0)
    result.orchestrator_failure = of
    result.client_failure = cf
    result.client_zscore = zscore
    result.injected = True
    result.activated = activated
    return result


def _synthetic_campaign() -> CampaignResult:
    campaign = CampaignResult()
    campaign.results = [
        _synthetic_result(WorkloadKind.DEPLOY, FaultType.BIT_FLIP, OrchestratorFailure.NO, ClientFailure.NSI),
        _synthetic_result(WorkloadKind.DEPLOY, FaultType.BIT_FLIP, OrchestratorFailure.MOR, ClientFailure.HRT, 4.0),
        _synthetic_result(WorkloadKind.DEPLOY, FaultType.DATA_TYPE_SET, OrchestratorFailure.STA, ClientFailure.NSI),
        _synthetic_result(WorkloadKind.SCALE_UP, FaultType.MESSAGE_DROP, OrchestratorFailure.LER, ClientFailure.NSI, activated=False),
        _synthetic_result(WorkloadKind.FAILOVER, FaultType.PROTO_BYTE_FLIP, OrchestratorFailure.OUT, ClientFailure.SU, 12.0),
    ]
    return campaign


def test_injection_family_mapping():
    assert CampaignResult.injection_family(None) == "golden"
    assert CampaignResult.injection_family(FaultSpec(InjectionChannel.APISERVER_TO_ETCD, "Pod")) == "Bit-flip"
    assert (
        CampaignResult.injection_family(
            FaultSpec(InjectionChannel.APISERVER_TO_ETCD, "Pod", fault_type=FaultType.PROTO_BYTE_FLIP)
        )
        == "Bit-flip"
    )
    assert (
        CampaignResult.injection_family(
            FaultSpec(InjectionChannel.APISERVER_TO_ETCD, "Pod", fault_type=FaultType.MESSAGE_DROP)
        )
        == "Drop"
    )


def test_of_and_cf_counts_structure():
    campaign = _synthetic_campaign()
    of_counts = campaign.of_counts()
    assert of_counts[("deploy", "Bit-flip")]["No"] == 1
    assert of_counts[("deploy", "Bit-flip")]["MoR"] == 1
    assert of_counts[("deploy", "Value set")]["Sta"] == 1
    assert of_counts[("scale", "Drop")]["LeR"] == 1
    assert of_counts[("failover", "Bit-flip")]["Out"] == 1
    cf_counts = campaign.cf_counts()
    assert cf_counts[("failover", "Bit-flip")]["SU"] == 1


def test_of_cf_matrix_and_critical_results():
    campaign = _synthetic_campaign()
    matrix = campaign.of_cf_matrix()
    assert matrix["MoR"]["HRT"] == 1
    assert matrix["Out"]["SU"] == 1
    deploy_only = campaign.of_cf_matrix(WorkloadKind.DEPLOY)
    assert sum(sum(row.values()) for row in deploy_only.values()) == 3
    critical = campaign.critical_results()
    assert len(critical) == 2
    assert campaign.activation_rate() == pytest.approx(0.8)
    assert campaign.total_experiments() == 5


def test_render_tables_from_synthetic_campaign():
    campaign = _synthetic_campaign()
    table3 = render_table3(campaign)
    table4 = render_table4(campaign)
    table5 = render_table5(campaign)
    assert "Table III" in table3 and "Out" in table3
    assert "TOTAL" in table4 and "Sta" in table4
    assert "TOTAL" in table5 and "SU" in table5
    scoped = render_table3(campaign, WorkloadKind.DEPLOY)
    assert "workload=deploy" in scoped
