"""Unit tests for the Mutiny injector: the where/what/when triplet."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apiserver.apiserver import WriteContext
from repro.apiserver.client import RequestContext
from repro.core.injector import (
    FaultSpec,
    FaultType,
    InjectionChannel,
    MutinyInjector,
    flip_bool,
    flip_int_bit,
    flip_str_char_bit,
)
from repro.objects.kinds import make_deployment, make_pod
from repro.serialization import DecodeError, decode, encode


def _etcd_context(kind="Deployment", name="web", namespace="default"):
    return WriteContext(
        kind=kind, key=f"/registry/x/{namespace}/{name}", operation="update",
        actor="apiserver", name=name, namespace=namespace,
    )


def _component_context(kind="Pod", name="p", component="kube-controller-manager"):
    return RequestContext(
        component=component, kind=kind, operation="update", name=name, namespace="default"
    )


# ----------------------------------------------------------------- helpers


def test_flip_int_bit():
    assert flip_int_bit(2, 0) == 3
    assert flip_int_bit(2, 4) == 18
    assert flip_int_bit(flip_int_bit(7, 3), 3) == 7


def test_flip_str_char_bit_yields_valid_string():
    assert flip_str_char_bit("webapp", 0) == "vebapp"
    assert flip_str_char_bit("webapp", 1) == "wdbapp"
    assert flip_str_char_bit("", 0) == ""
    # Index past the end flips the last character instead of crashing.
    assert flip_str_char_bit("a", 10) == "`"


def test_flip_bool():
    assert flip_bool(True) is False
    assert flip_bool(False) is True


# -------------------------------------------------------------- field faults


def test_bitflip_on_integer_field_fires_at_requested_occurrence():
    spec = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Deployment",
        field_path="spec.replicas",
        fault_type=FaultType.BIT_FLIP,
        bit_index=0,
        occurrence=2,
    )
    injector = MutinyInjector(spec)
    deployment = make_deployment("web", replicas=2)
    data = encode(deployment)
    first = injector.etcd_write_hook(_etcd_context(), data)
    assert decode(first)["spec"]["replicas"] == 2
    assert not injector.injected
    second = injector.etcd_write_hook(_etcd_context(), data)
    assert decode(second)["spec"]["replicas"] == 3
    assert injector.injected
    assert injector.record.original_value == 2
    assert injector.record.injected_value == 3
    # Only one injection per experiment: later messages pass through untouched.
    third = injector.etcd_write_hook(_etcd_context(), data)
    assert decode(third)["spec"]["replicas"] == 2
    assert injector.post_injection_observations == 1
    assert injector.activated


def test_value_set_on_string_field():
    spec = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Pod",
        field_path="metadata.labels.app",
        fault_type=FaultType.DATA_TYPE_SET,
        set_value="",
        occurrence=1,
    )
    injector = MutinyInjector(spec)
    pod = make_pod("p", labels={"app": "web"})
    out = injector.etcd_write_hook(_etcd_context(kind="Pod", name="p"), encode(pod))
    assert decode(out)["metadata"]["labels"]["app"] == ""


def test_boolean_field_inverted():
    spec = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Node",
        field_path="spec.unschedulable",
        fault_type=FaultType.BIT_FLIP,
        occurrence=1,
    )
    injector = MutinyInjector(spec)
    obj = {"kind": "Node", "metadata": {"name": "n"}, "spec": {"unschedulable": False}}
    out = injector.etcd_write_hook(_etcd_context(kind="Node", name="n"), encode(obj))
    assert decode(out)["spec"]["unschedulable"] is True


def test_missing_field_does_not_consume_occurrence():
    spec = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Pod",
        field_path="status.podIP",
        fault_type=FaultType.DATA_TYPE_SET,
        set_value="0.0.0.0",
        occurrence=1,
    )
    injector = MutinyInjector(spec)
    pod_without_ip = make_pod("p")
    del pod_without_ip["status"]["podIP"]
    out = injector.etcd_write_hook(_etcd_context(kind="Pod", name="p"), encode(pod_without_ip))
    assert not injector.injected
    pod_with_ip = make_pod("p")
    pod_with_ip["status"]["podIP"] = "10.0.0.1"
    out = injector.etcd_write_hook(_etcd_context(kind="Pod", name="p"), encode(pod_with_ip))
    assert decode(out)["status"]["podIP"] == "0.0.0.0"
    assert injector.injected


def test_kind_and_name_filters():
    spec = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Deployment",
        name="webapp-1",
        field_path="spec.replicas",
        fault_type=FaultType.BIT_FLIP,
        occurrence=1,
    )
    injector = MutinyInjector(spec)
    other = make_deployment("other", replicas=2)
    out = injector.etcd_write_hook(_etcd_context(name="other"), encode(other))
    assert not injector.injected and decode(out)["spec"]["replicas"] == 2
    target = make_deployment("webapp-1", replicas=2)
    injector.etcd_write_hook(_etcd_context(name="webapp-1"), encode(target))
    assert injector.injected


def test_occurrence_counted_per_instance():
    spec = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Deployment",
        field_path="spec.replicas",
        fault_type=FaultType.BIT_FLIP,
        occurrence=2,
    )
    injector = MutinyInjector(spec)
    a = make_deployment("a", replicas=2)
    b = make_deployment("b", replicas=2)
    injector.etcd_write_hook(_etcd_context(name="a"), encode(a))
    out_b = injector.etcd_write_hook(_etcd_context(name="b"), encode(b))
    # Each instance has its own occurrence counter: b's first message is not
    # the second occurrence for b.
    assert decode(out_b)["spec"]["replicas"] == 2
    out_a = injector.etcd_write_hook(_etcd_context(name="a"), encode(a))
    assert decode(out_a)["spec"]["replicas"] == 3


# ------------------------------------------------------------ message drops


def test_message_drop_returns_none_once():
    spec = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Pod",
        fault_type=FaultType.MESSAGE_DROP,
        occurrence=3,
    )
    injector = MutinyInjector(spec)
    pod = make_pod("p")
    data = encode(pod)
    context = _etcd_context(kind="Pod", name="p")
    assert injector.etcd_write_hook(context, data) is not None
    assert injector.etcd_write_hook(context, data) is not None
    assert injector.etcd_write_hook(context, data) is None
    assert injector.record.dropped
    assert injector.etcd_write_hook(context, data) is not None


# -------------------------------------------------------- serialization bytes


def test_proto_byte_flip_changes_exactly_one_bit():
    spec = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Pod",
        fault_type=FaultType.PROTO_BYTE_FLIP,
        bit_index=37,
        occurrence=1,
    )
    injector = MutinyInjector(spec)
    data = encode(make_pod("p"))
    out = injector.etcd_write_hook(_etcd_context(kind="Pod", name="p"), data)
    assert out is not None and len(out) == len(data)
    differing = [index for index in range(len(data)) if data[index] != out[index]]
    assert len(differing) == 1
    xor = data[differing[0]] ^ out[differing[0]]
    assert xor and (xor & (xor - 1)) == 0  # exactly one bit


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_proto_byte_flip_outcomes_are_decode_or_decodeerror(bit_index):
    spec = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Pod",
        fault_type=FaultType.PROTO_BYTE_FLIP,
        bit_index=bit_index,
        occurrence=1,
    )
    injector = MutinyInjector(spec)
    data = encode(make_pod("p", labels={"app": "web"}))
    out = injector.etcd_write_hook(_etcd_context(kind="Pod", name="p"), data)
    try:
        decode(out)
        assert injector.record.decode_failed_after is False
    except DecodeError:
        assert injector.record.decode_failed_after is True


# -------------------------------------------------- component→apiserver channel


def test_component_channel_matches_component_prefix():
    spec = FaultSpec(
        channel=InjectionChannel.COMPONENT_TO_APISERVER,
        kind="Pod",
        field_path="status.podIP",
        component="kubelet",
        fault_type=FaultType.DATA_TYPE_SET,
        set_value="10.9.9.9",
        occurrence=1,
    )
    injector = MutinyInjector(spec)
    pod = make_pod("p")
    pod["status"]["podIP"] = "10.244.0.5"
    data = encode(pod)
    untouched = injector.component_request_hook(
        _component_context(component="kube-scheduler"), data
    )
    assert decode(untouched)["status"]["podIP"] == "10.244.0.5"
    out = injector.component_request_hook(
        _component_context(component="kubelet-worker-1"), data
    )
    assert decode(out)["status"]["podIP"] == "10.9.9.9"


def test_channels_do_not_cross_match():
    spec = FaultSpec(
        channel=InjectionChannel.COMPONENT_TO_APISERVER,
        kind="Pod",
        field_path="status.podIP",
        fault_type=FaultType.DATA_TYPE_SET,
        set_value="x",
        occurrence=1,
    )
    injector = MutinyInjector(spec)
    pod = make_pod("p")
    out = injector.etcd_write_hook(_etcd_context(kind="Pod", name="p"), encode(pod))
    assert not injector.injected
    assert decode(out) == pod


def test_arm_resets_state():
    spec = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Pod",
        fault_type=FaultType.MESSAGE_DROP,
        occurrence=1,
    )
    injector = MutinyInjector(spec)
    injector.etcd_write_hook(_etcd_context(kind="Pod", name="p"), encode(make_pod("p")))
    assert injector.injected
    injector.arm(spec)
    assert not injector.injected
    assert injector.matches_seen == 0


def test_describe_is_human_readable():
    spec = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Deployment",
        name="webapp-1",
        field_path="spec.replicas",
        fault_type=FaultType.BIT_FLIP,
        occurrence=3,
    )
    text = spec.describe()
    assert "Deployment" in text and "spec.replicas" in text and "3" in text
