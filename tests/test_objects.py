"""Unit tests for the object model: metadata, selectors, quantities, kinds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects.kinds import (
    KINDS,
    make_daemonset,
    make_deployment,
    make_endpoints,
    make_lease,
    make_namespace,
    make_node,
    make_pod,
    make_replicaset,
    make_service,
)
from repro.objects.meta import (
    controller_owner,
    deep_copy,
    make_object_meta,
    make_owner_reference,
    new_uid,
    object_key,
    owner_uids,
    reset_uid_counter,
)
from repro.objects.quantities import (
    QuantityError,
    node_allocatable,
    parse_cpu,
    parse_memory,
    pod_resource_request,
    safe_parse_cpu,
    safe_parse_memory,
)
from repro.objects.selectors import labels_subset, matches_selector, selector_from_labels

# ------------------------------------------------------------------ metadata


def test_uids_are_unique_and_resettable():
    reset_uid_counter()
    first = new_uid()
    second = new_uid()
    assert first != second
    reset_uid_counter()
    assert new_uid() == first


def test_object_meta_defaults():
    meta = make_object_meta("web", namespace="prod", labels={"app": "web"})
    assert meta["name"] == "web"
    assert meta["namespace"] == "prod"
    assert meta["labels"] == {"app": "web"}
    assert meta["ownerReferences"] == []
    assert meta["resourceVersion"] == 0


def test_owner_reference_roundtrip():
    replicaset = make_replicaset("rs", replicas=1)
    pod = make_pod("pod", owner_references=[make_owner_reference(replicaset)])
    assert replicaset["metadata"]["uid"] in owner_uids(pod)
    owner = controller_owner(pod)
    assert owner is not None and owner["kind"] == "ReplicaSet"


def test_owner_uids_tolerates_corruption():
    pod = make_pod("pod")
    pod["metadata"]["ownerReferences"] = "corrupted"
    assert owner_uids(pod) == set()
    assert controller_owner(pod) is None
    pod["metadata"] = None
    assert owner_uids(pod) == set()


def test_object_key_and_deep_copy():
    pod = make_pod("p", namespace="ns1")
    assert object_key(pod) == "ns1/p"
    clone = deep_copy(pod)
    clone["metadata"]["name"] = "other"
    assert pod["metadata"]["name"] == "p"
    assert object_key({"metadata": None}) == "<corrupted>/<corrupted>"


# ----------------------------------------------------------------- selectors


def test_match_labels_selector():
    pod = make_pod("p", labels={"app": "web", "tier": "frontend"})
    assert matches_selector({"matchLabels": {"app": "web"}}, pod)
    assert not matches_selector({"matchLabels": {"app": "db"}}, pod)
    assert not matches_selector({"matchLabels": {"app": "web", "extra": "x"}}, pod)


def test_match_expressions_selector():
    pod = make_pod("p", labels={"app": "web"})
    assert matches_selector(
        {"matchExpressions": [{"key": "app", "operator": "In", "values": ["web", "api"]}]}, pod
    )
    assert not matches_selector(
        {"matchExpressions": [{"key": "app", "operator": "NotIn", "values": ["web"]}]}, pod
    )
    assert matches_selector({"matchExpressions": [{"key": "app", "operator": "Exists"}]}, pod)
    assert matches_selector(
        {"matchExpressions": [{"key": "missing", "operator": "DoesNotExist"}]}, pod
    )


def test_empty_or_corrupted_selector_matches_nothing():
    pod = make_pod("p", labels={"app": "web"})
    assert not matches_selector({}, pod)
    assert not matches_selector(None, pod)
    assert not matches_selector("corrupted", pod)
    assert not matches_selector({"matchLabels": "corrupted"}, pod)


def test_single_character_label_corruption_breaks_match():
    # The F2 failure mechanism: one flipped character silently breaks the
    # controller-pod relationship.
    pod = make_pod("p", labels={"app": "weaapp"})
    selector = selector_from_labels({"app": "webapp"})
    assert not matches_selector(selector, pod)


def test_labels_subset():
    assert labels_subset({"a": "1"}, {"a": "1", "b": "2"})
    assert not labels_subset({"a": "2"}, {"a": "1"})
    assert not labels_subset("bad", {"a": "1"})


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(st.text(min_size=1, max_size=5), st.text(max_size=5), max_size=5))
def test_selector_from_own_labels_always_matches(labels):
    pod = make_pod("p", labels=labels)
    if labels:
        assert matches_selector(selector_from_labels(labels), pod)


# ---------------------------------------------------------------- quantities


def test_parse_cpu_forms():
    assert parse_cpu("500m") == 0.5
    assert parse_cpu("2") == 2.0
    assert parse_cpu(1.5) == 1.5
    assert parse_cpu(None) == 0.0


def test_parse_cpu_invalid():
    for bad in ("", "abc", "-1", True):
        with pytest.raises(QuantityError):
            parse_cpu(bad)
    assert safe_parse_cpu("garbage", default=0.25) == 0.25


def test_parse_memory_forms():
    assert parse_memory("128Mi") == 128 * 1024 * 1024
    assert parse_memory("1Gi") == 1024**3
    assert parse_memory("1000") == 1000
    assert parse_memory("2K") == 2000
    assert parse_memory(None) == 0


def test_parse_memory_invalid():
    for bad in ("", "xyzMi", True):
        with pytest.raises(QuantityError):
            parse_memory(bad)
    assert safe_parse_memory("bad", default=7) == 7


def test_pod_resource_request_sums_containers():
    pod = make_pod("p")
    pod["spec"]["containers"][0]["resources"]["requests"] = {"cpu": "500m", "memory": "256Mi"}
    cpu, memory = pod_resource_request(pod)
    assert cpu == 0.5
    assert memory == 256 * 1024 * 1024


def test_pod_resource_request_tolerates_corruption():
    pod = make_pod("p")
    pod["spec"]["containers"] = "corrupted"
    assert pod_resource_request(pod) == (0.0, 0)
    pod["spec"] = None
    assert pod_resource_request(pod) == (0.0, 0)


def test_node_allocatable():
    node = make_node("n", cpu="8", memory="4Gi")
    cpu, memory = node_allocatable(node)
    assert cpu == 8.0
    assert memory == 4 * 1024**3
    assert node_allocatable({"status": None}) == (0.0, 0)


# --------------------------------------------------------------------- kinds


def test_kind_registry_consistency():
    assert set(KINDS) >= {"Pod", "ReplicaSet", "Deployment", "DaemonSet", "Service", "Node"}
    for info in KINDS.values():
        assert info["plural"]
        assert isinstance(info["namespaced"], bool)


def test_manifest_factories_produce_expected_kinds():
    manifests = {
        "Pod": make_pod("a"),
        "ReplicaSet": make_replicaset("a"),
        "Deployment": make_deployment("a"),
        "DaemonSet": make_daemonset("a"),
        "Service": make_service("a"),
        "Endpoints": make_endpoints("a"),
        "Node": make_node("a"),
        "Namespace": make_namespace("a"),
        "Lease": make_lease("a"),
    }
    for kind, manifest in manifests.items():
        assert manifest["kind"] == kind
        assert manifest["metadata"]["name"] == "a"


def test_deployment_selector_matches_template():
    deployment = make_deployment("web", replicas=3, labels={"app": "web"})
    selector = deployment["spec"]["selector"]["matchLabels"]
    template_labels = deployment["spec"]["template"]["metadata"]["labels"]
    assert labels_subset(selector, template_labels)


def test_daemonset_defaults_to_critical_priority_and_tolerations():
    daemonset = make_daemonset("net")
    template_spec = daemonset["spec"]["template"]["spec"]
    assert template_spec["priority"] > 1_000_000
    assert template_spec["tolerations"] == [{"operator": "Exists"}]
