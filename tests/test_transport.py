"""Tests for the pluggable shard-store transports.

Two layers of contract: the :class:`ShardTransport` operations themselves
(atomic put, exactly-one-winner put-if-absent, generation-conditional
delete/refresh — exercised identically against the POSIX backend and the
object-store emulation server), and the storage protocols built on top of
them (the result store and the slice-lease lifecycle, which must behave the
same over either backend).  The POSIX transport additionally guarantees the
historical on-disk layout byte for byte, so stores written before the
transport layer existed resume unchanged.
"""

from __future__ import annotations

import http.client
import itertools
import os
import threading

import pytest

from repro.core.distributed import SliceLeases
from repro.core.objstore import LocalObjectStore
from repro.core.resultstore import ResultStoreMismatchError, ShardedResultStore
from repro.core.transport import (
    LIST_PAGE_ENV,
    ObjectStoreTransport,
    PosixTransport,
    TransportKeyError,
    _temp_path_for,
    atomic_write_bytes,
    transport_for,
)

from test_resultstore import _full_result  # noqa: E402 - shared result factory

_BUCKETS = itertools.count()


@pytest.fixture(scope="module")
def objstore_server():
    server = LocalObjectStore(("127.0.0.1", 0)).start()
    yield server
    server.stop()


class Backend:
    """One transport under test plus the knobs the tests need around it."""

    def __init__(self, root, transport, backdate):
        self.root = root
        self.transport = transport
        self.backdate = backdate  # backdate(key, seconds): age an object


@pytest.fixture(params=["posix", "objstore"])
def backend(request, tmp_path, objstore_server) -> Backend:
    if request.param == "posix":
        root = str(tmp_path / "store")

        def backdate(key: str, seconds: float) -> None:
            path = os.path.join(root, *key.split("/"))
            stat = os.stat(path)
            os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))

        return Backend(root, PosixTransport(root), backdate)

    bucket = f"bucket-{next(_BUCKETS)}"
    root = f"{objstore_server.url}/{bucket}"

    def backdate(key: str, seconds: float) -> None:
        objstore_server.backdate(f"{bucket}/{key}", seconds)

    return Backend(root, ObjectStoreTransport(root), backdate)


# ------------------------------------------------------------- dispatching


def test_transport_for_picks_backend_by_root_shape(tmp_path):
    assert isinstance(transport_for(str(tmp_path)), PosixTransport)
    assert isinstance(
        transport_for("objstore://127.0.0.1:9999/bucket"), ObjectStoreTransport
    )
    with pytest.raises(ValueError):
        ObjectStoreTransport("objstore://127.0.0.1:9999")  # no bucket
    with pytest.raises(ValueError):
        ObjectStoreTransport("/just/a/path")


def test_posix_layout_is_the_historical_one(tmp_path):
    # Keys map onto the exact paths the pre-transport store used, so stores
    # written by either code generation are interchangeable.
    root = str(tmp_path / "store")
    transport = PosixTransport(root)
    transport.put("MANIFEST.json", b"{}")
    transport.put("shards/shard-00000000-00000001.jsonl.gz", b"gz")
    assert transport.locate("MANIFEST.json") == os.path.join(root, "MANIFEST.json")
    assert os.path.isfile(os.path.join(root, "MANIFEST.json"))
    assert os.path.isfile(
        os.path.join(root, "shards", "shard-00000000-00000001.jsonl.gz")
    )


# ---------------------------------------------------------------- contract


def test_put_get_roundtrip_and_overwrite(backend):
    transport = backend.transport
    with pytest.raises(TransportKeyError):
        transport.get("a/missing")
    assert transport.stat("a/missing") is None
    transport.put("a/obj", b"one")
    assert transport.get("a/obj") == b"one"
    transport.put("a/obj", b"two")  # atomic overwrite
    data, stat = transport.get_with_stat("a/obj")
    assert data == b"two"
    assert stat.size == len(b"two")
    assert transport.stat("a/obj").generation == stat.generation


def test_every_write_changes_the_generation(backend):
    transport = backend.transport
    transport.put("g/obj", b"one")
    first = transport.stat("g/obj").generation
    transport.put("g/obj", b"one")  # same content still re-generates
    assert transport.stat("g/obj").generation != first


def test_put_if_absent_has_exactly_one_winner(backend):
    transport = backend.transport
    assert transport.put_if_absent("race/obj", b"mine") is True
    assert transport.put_if_absent("race/obj", b"theirs") is False
    assert transport.get("race/obj") == b"mine"


def test_concurrent_put_if_absent_has_exactly_one_winner(backend):
    transport = backend.transport
    outcomes: list[tuple[str, bool]] = []
    barrier = threading.Barrier(8)

    def contend(name: str) -> None:
        barrier.wait()
        fresh = transport_for(backend.root)  # own connections per contender
        outcomes.append((name, fresh.put_if_absent("hot/obj", name.encode())))

    threads = [threading.Thread(target=contend, args=(f"w{i}",)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    winners = [name for name, won in outcomes if won]
    assert len(winners) == 1
    assert backend.transport.get("hot/obj") == winners[0].encode()


def test_list_is_flat_prefix_scoped_and_sorted(backend):
    transport = backend.transport
    transport.put("dir/b", b"2")
    transport.put("dir/a", b"1")
    transport.put("other/c", b"3")
    assert transport.list("dir/") == ["dir/a", "dir/b"]
    assert transport.list("dir/a") == ["dir/a"]
    assert transport.list("empty/") == []


def test_list_iter_streams_the_same_keys_as_list(backend):
    transport = backend.transport
    for name in ("c", "a", "b"):
        transport.put(f"iter/{name}", b"x")
    assert list(transport.list_iter("iter/")) == ["iter/a", "iter/b", "iter/c"]
    assert list(transport.list_iter("iter/")) == transport.list("iter/")


def test_listing_an_unpopulated_store_is_empty_not_an_error(backend):
    # A coordinator (`inspect`, `autofederate`) polls stores whose worker
    # hasn't created anything yet — the backing directory/bucket does not
    # exist at all.  Both backends must answer "empty", never raise.
    transport = backend.transport
    assert transport.list("shards/") == []
    assert list(transport.list_iter("shards/")) == []
    store = ShardedResultStore(backend.root)
    assert store.shard_keys() == []
    assert store.completed_indexes() == {}
    assert store.stored_record_count() == 0


def test_append_contract(backend):
    transport = backend.transport
    # generation=None is the put-if-absent of appends: exactly one creator.
    first = transport.append("ap/obj", b"one", None)
    assert first is not None
    assert transport.get("ap/obj") == b"one"
    assert transport.append("ap/obj", b"x", None) is None  # already exists
    assert transport.get("ap/obj") == b"one"
    # A matching generation extends; the returned token is the new state.
    second = transport.append("ap/obj", b"two", first)
    assert second is not None and second != first
    assert transport.get("ap/obj") == b"onetwo"
    assert transport.stat("ap/obj").generation == second
    # A stale generation writes nothing.
    assert transport.append("ap/obj", b"three", first) is None
    assert transport.get("ap/obj") == b"onetwo"
    # An absent key with a generation precondition writes nothing.
    assert transport.append("ap/missing", b"x", first) is None
    assert transport.stat("ap/missing") is None


def test_delete_is_idempotent_and_conditional_delete_respects_generation(backend):
    transport = backend.transport
    transport.put("d/obj", b"x")
    generation = transport.stat("d/obj").generation
    transport.put("d/obj", b"y")  # replaced: the old generation is stale
    assert transport.delete_if_unchanged("d/obj", generation) is False
    assert transport.get("d/obj") == b"y"
    assert transport.delete_if_unchanged("d/obj", transport.stat("d/obj").generation)
    assert transport.stat("d/obj") is None
    assert transport.delete_if_unchanged("d/obj", generation) is False  # absent
    transport.delete("d/obj")  # idempotent no-op


def test_refresh_bumps_mtime_only_under_matching_generation(backend):
    transport = backend.transport
    transport.put("r/obj", b"x")
    before = transport.stat("r/obj")
    backend.backdate("r/obj", 100.0)
    aged = transport.stat("r/obj")
    assert aged.mtime < before.mtime
    current = aged.generation
    assert transport.refresh("r/obj", current) is True
    refreshed = transport.stat("r/obj")
    assert refreshed.mtime > aged.mtime
    assert refreshed.generation != current
    assert transport.refresh("r/obj", current) is False  # stale token
    assert transport.refresh("r/missing", current) is False


# ------------------------------------------------------ listing pagination


def test_paginated_listing_covers_every_boundary(objstore_server):
    # Page size 1, a page exactly equal to the key count, and pages larger
    # than the key count must all stream the identical sorted key set.
    root = f"{objstore_server.url}/page-{next(_BUCKETS)}"
    seed = ObjectStoreTransport(root)
    keys = [f"s/k{i:02d}" for i in range(5)]
    for key in keys:
        seed.put(key, b"x")
    for page_size in (1, 2, 5, 7):
        transport = ObjectStoreTransport(root, page_size=page_size)
        assert transport.list("s/") == keys
        assert list(transport.list_iter("s/")) == keys


def test_keys_added_between_pages_follow_cursor_semantics(objstore_server):
    # S3 listing semantics: a key created behind the cursor while paging is
    # missed by *this* iteration, a key created ahead of it is included.
    root = f"{objstore_server.url}/cursor-{next(_BUCKETS)}"
    transport = ObjectStoreTransport(root, page_size=2)
    for i in range(4):
        transport.put(f"s/k{i}0", b"x")
    stream = transport.list_iter("s/")
    assert [next(stream), next(stream)] == ["s/k00", "s/k10"]  # page 1 served
    transport.put("s/k05", b"x")  # behind the cursor: missed
    transport.put("s/k90", b"x")  # ahead of the cursor: included
    assert list(stream) == ["s/k20", "s/k30", "s/k90"]
    # A fresh iteration sees the full current key set.
    assert transport.list("s/") == ["s/k00", "s/k05", "s/k10", "s/k20", "s/k30", "s/k90"]


def test_server_side_max_page_caps_even_greedy_clients():
    # A server configured with --max-page never produces an unbounded
    # listing response, whatever limit the client asked for — and clients
    # page through transparently.
    server = LocalObjectStore(("127.0.0.1", 0), max_page=2).start()
    try:
        transport = ObjectStoreTransport(f"{server.url}/b")  # default page size
        keys = [f"s/k{i}" for i in range(5)]
        for key in keys:
            transport.put(key, b"x")
        page, truncated = server.list_keys("b/s/")
        assert len(page) == 2 and truncated  # the raw protocol is capped
        assert transport.list("s/") == keys  # the client still sees it all
    finally:
        server.stop()


def test_page_size_env_override(monkeypatch):
    monkeypatch.setenv(LIST_PAGE_ENV, "3")
    assert ObjectStoreTransport("objstore://127.0.0.1:1/b").page_size == 3
    monkeypatch.setenv(LIST_PAGE_ENV, "bogus")
    with pytest.warns(RuntimeWarning):
        transport = ObjectStoreTransport("objstore://127.0.0.1:1/b")
    assert transport.page_size == 1000
    monkeypatch.delenv(LIST_PAGE_ENV)
    assert ObjectStoreTransport("objstore://127.0.0.1:1/b", page_size=7).page_size == 7


def test_campaign_digest_with_forced_pagination_matches_unpaginated(tmp_path):
    # The acceptance bar for pagination: a store-backed campaign run against
    # a server that forces limit=2 listing pages produces a digest
    # byte-identical to the unpaginated POSIX run of the same configuration.
    from repro.core.campaign import Campaign, CampaignConfig
    from repro.workloads.workload import WorkloadKind

    config = dict(
        workloads=(WorkloadKind.DEPLOY,),
        golden_runs=1,
        max_experiments_per_workload=4,
        seed=3,
        workers=1,
        chunk_size=2,
    )
    plain_root = str(tmp_path / "plain")
    Campaign(CampaignConfig(**config)).run(results_dir=plain_root)
    server = LocalObjectStore(("127.0.0.1", 0), max_page=2).start()
    try:
        paged_root = f"{server.url}/paged"
        Campaign(CampaignConfig(**config)).run(results_dir=paged_root)
        paged = ShardedResultStore(paged_root)
        plain = ShardedResultStore(plain_root)
        assert paged.results_digest() == plain.results_digest()
        assert paged.record_count() == plain.record_count()
        assert paged.stored_record_count() == plain.stored_record_count()
    finally:
        server.stop()


# --------------------------------------- conditional ops under lost responses


class _DroppingTransport(ObjectStoreTransport):
    """Fault injection: lose the response of a chosen request *after* the
    server has applied it — the flaky-connection case the retry-ambiguity
    rules exist for.  ``drop_when(method, path)`` selects the one request
    whose response to drop (auto-cleared after firing); ``fail_when`` drops
    *every* matching response, simulating an endpoint that stays down."""

    def __init__(self, root: str):
        super().__init__(root)
        self.drop_when = None
        self.fail_when = None

    def _connection(self):
        real = super()._connection()
        transport = self

        class _Proxy:
            def __init__(self):
                self._pending = None

            def request(self, method, path, *args, **kwargs):
                self._pending = (method, path)
                return real.request(method, path, *args, **kwargs)

            def getresponse(self):
                response = real.getresponse()  # the server has acted by now
                drop = transport.drop_when
                if drop is not None and self._pending and drop(*self._pending):
                    transport.drop_when = None
                    response.read()  # drain, then lose it
                    raise http.client.HTTPException("injected: response dropped")
                fail = transport.fail_when
                if fail is not None and self._pending and fail(*self._pending):
                    response.read()
                    raise http.client.HTTPException("injected: endpoint down")
                return response

            def close(self):
                real.close()

        return _Proxy()


def _drop_refresh(method, path):
    return method == "POST" and "op=refresh" in path


def test_retried_refresh_does_not_wrongly_surrender(objstore_server):
    # The bug: a heartbeat whose first attempt applied but whose response
    # was lost saw 412 on the retry and concluded the lease was gone, making
    # the owner surrender a slice it still held.
    transport = _DroppingTransport(f"{objstore_server.url}/retry-{next(_BUCKETS)}")
    transport.put("lease", b"owner-a")
    generation = transport.stat("lease").generation
    transport.drop_when = _drop_refresh
    assert transport.refresh("lease", generation, expected=b"owner-a") is True
    assert transport.stat("lease").generation != generation  # applied exactly once


def test_retried_refresh_still_reports_a_genuinely_lost_lease(objstore_server):
    transport = _DroppingTransport(f"{objstore_server.url}/retry-{next(_BUCKETS)}")
    transport.put("lease", b"owner-a")
    generation = transport.stat("lease").generation
    transport.put("lease", b"owner-b")  # reclaimed by someone else
    transport.drop_when = _drop_refresh
    assert transport.refresh("lease", generation, expected=b"owner-a") is False
    # Without an expected payload the ambiguous case stays conservative:
    # the refresh applied (new generation), but the transport cannot prove
    # it was ours, so it reports the lease as lost.
    current = transport.stat("lease").generation
    transport.drop_when = _drop_refresh
    assert transport.refresh("lease", current) is False
    assert transport.stat("lease").generation != current  # ... yet it applied


def test_ambiguity_reread_failure_degrades_to_loss_not_a_crash(objstore_server):
    # If the store stays flaky through the ambiguity re-read itself, the
    # conditional op must answer a conservative False — an exception here
    # would escape into the worker's heartbeat thread, which has no handler,
    # and silently kill the abort signal while the slice keeps running.
    transport = _DroppingTransport(f"{objstore_server.url}/retry-{next(_BUCKETS)}")
    transport.put("lease", b"owner-a")
    generation = transport.stat("lease").generation
    transport.drop_when = _drop_refresh
    transport.fail_when = lambda method, path: method == "GET" and path.startswith("/k/")
    assert transport.refresh("lease", generation, expected=b"owner-a") is False
    transport.fail_when = None

    generation = transport.stat("lease").generation
    transport.drop_when = lambda method, path: method == "DELETE"
    transport.fail_when = lambda method, path: method == "HEAD"
    assert transport.delete_if_unchanged("lease", generation) is False
    transport.fail_when = None


def test_retried_conditional_delete_recognizes_its_own_success(objstore_server):
    # The bug: a reclaim whose conditional delete applied but lost its
    # response concluded False from the retry's 404 — "the lease I freed is
    # still someone else's" — even though the slice was in fact freed.
    transport = _DroppingTransport(f"{objstore_server.url}/retry-{next(_BUCKETS)}")
    transport.put("lease", b"owner-a")
    generation = transport.stat("lease").generation
    transport.drop_when = lambda method, path: method == "DELETE"
    assert transport.delete_if_unchanged("lease", generation) is True
    assert transport.stat("lease") is None


def test_retried_conditional_delete_keeps_precondition_failures(objstore_server):
    transport = _DroppingTransport(f"{objstore_server.url}/retry-{next(_BUCKETS)}")
    transport.put("lease", b"owner-a")
    stale = transport.stat("lease").generation
    transport.put("lease", b"owner-b")  # the generation we hold is stale
    transport.drop_when = lambda method, path: method == "DELETE"
    assert transport.delete_if_unchanged("lease", stale) is False
    assert transport.get("lease") == b"owner-b"  # the new owner survived


def test_retried_append_does_not_duplicate_the_batch(objstore_server):
    # An append whose first attempt applied must not be re-applied by the
    # ambiguity rule: duplicated members would double the batch's records.
    transport = _DroppingTransport(f"{objstore_server.url}/retry-{next(_BUCKETS)}")
    first = transport.append("shard", b"alpha|", None)
    transport.drop_when = lambda method, path: "append=1" in path
    second = transport.append("shard", b"beta|", first)
    assert second is not None
    assert transport.get("shard") == b"alpha|beta|"
    # And a dropped *create* resolves the same way.
    transport.drop_when = lambda method, path: "append=1" in path
    created = transport.append("shard2", b"solo", None)
    assert created is not None
    assert transport.get("shard2") == b"solo"


def test_heartbeat_survives_a_dropped_refresh_response(objstore_server):
    # End to end through the lease layer: a worker whose heartbeat response
    # is lost must keep its lease, not surrender the slice.
    root = f"{objstore_server.url}/retry-{next(_BUCKETS)}"
    leases = SliceLeases(root, ttl=30.0)
    transport = _DroppingTransport(root)
    leases.transport = transport
    assert leases.try_claim(0, "worker-a")
    transport.drop_when = _drop_refresh
    assert leases.heartbeat(0, "worker-a") is True
    assert leases.lease_info(0).worker == "worker-a"
    # A genuinely reclaimed lease still reads as lost.
    leases.release(0)
    assert leases.try_claim(0, "worker-b")
    transport.drop_when = _drop_refresh
    assert leases.heartbeat(0, "worker-a") is False


# ------------------------------------------------- store over any backend


def test_store_round_trip_over_object_store(backend):
    store = ShardedResultStore(backend.root)
    store.open("fp", total=4)
    records = [(index, _full_result(index)) for index in range(4)]
    store.write_shard(records[:2])
    store.write_shard(records[2:])
    assert store.record_count() == 4
    assert store.stored_record_count() == 4
    assert list(store.iter_all()) == [result for _, result in records]
    assert store.compressed_bytes() > 0

    # A fresh store instance (a different process in real life) sees it all.
    again = ShardedResultStore(backend.root)
    assert again.load_result(3) == records[3][1]
    with pytest.raises(ResultStoreMismatchError):
        ShardedResultStore(backend.root).open("other-fp", total=4)


def test_store_digest_is_transport_independent(tmp_path, objstore_server):
    records = [(index, _full_result(index)) for index in range(4)]
    posix = ShardedResultStore(str(tmp_path / "posix"))
    remote = ShardedResultStore(f"{objstore_server.url}/digest-{next(_BUCKETS)}")
    for store in (posix, remote):
        store.open("fp", total=4)
        store.write_shard(records)
    assert posix.results_digest() == remote.results_digest()


def test_store_prep_round_trip_over_object_store(objstore_server):
    store = ShardedResultStore(f"{objstore_server.url}/prep-{next(_BUCKETS)}")
    prepared = [("baseline-sentinel", ["field-sentinel"])]
    store.save_prep("prep-fp", prepared)
    assert store.load_prep("prep-fp") == prepared
    with pytest.raises(ResultStoreMismatchError):
        store.load_prep("other-fp")


def test_truncated_shard_over_object_store_yields_readable_prefix(objstore_server):
    root = f"{objstore_server.url}/trunc-{next(_BUCKETS)}"
    store = ShardedResultStore(root)
    store.open("fp", total=8)
    store.write_shard([(index, _full_result(index)) for index in range(8)])
    (key,) = store.shard_keys()
    payload = store.transport.get(key)
    store.transport.put(key, payload[: len(payload) // 2])
    store.refresh()
    completed = set(store.completed_indexes())
    assert completed < set(range(8))
    for index in sorted(completed):
        assert store.load_result(index) == _full_result(index)


# --------------------------------------------- lease lifecycle, per backend


def test_lease_double_claim_single_winner(backend):
    leases = SliceLeases(backend.root, ttl=30.0)
    assert leases.try_claim(0, "worker-a") is True
    assert leases.try_claim(0, "worker-b") is False
    info = leases.lease_info(0)
    assert info.worker == "worker-a"
    assert not info.expired
    assert leases.try_claim(1, "worker-b") is True


def test_lease_expiry_and_reclamation(backend):
    leases = SliceLeases(backend.root, ttl=5.0)
    assert leases.try_claim(0, "crashed-worker")
    assert leases.try_claim(0, "worker-b") is False  # fresh
    backend.backdate(leases._lease_key(0), 6.0)
    assert leases.lease_info(0).expired
    assert leases.try_claim(0, "worker-b") is True
    assert leases.lease_info(0).worker == "worker-b"


def test_lease_expiry_honors_owner_recorded_ttl(backend):
    owner = SliceLeases(backend.root, ttl=60.0)
    assert owner.try_claim(0, "long-ttl-worker")
    impatient = SliceLeases(backend.root, ttl=0.1)
    backend.backdate(owner._lease_key(0), 5.0)  # old, within the owner's 60s
    assert impatient.lease_info(0).expired is False
    assert impatient.try_claim(0, "impatient") is False


def test_lease_heartbeat_refreshes_and_detects_loss(backend):
    leases = SliceLeases(backend.root, ttl=5.0)
    assert leases.try_claim(0, "worker-a")
    backend.backdate(leases._lease_key(0), 6.0)
    # The owner heartbeats just in time: the lease is fresh again.
    assert leases.heartbeat(0, "worker-a") is True
    assert not leases.lease_info(0).expired
    assert leases.try_claim(0, "worker-b") is False

    backend.backdate(leases._lease_key(0), 6.0)
    assert leases.try_claim(0, "worker-b")  # reclaimed
    # The evicted owner's heartbeat reports the loss without refreshing the
    # new owner's lease.
    before = backend.transport.stat(leases._lease_key(0))
    assert leases.heartbeat(0, "worker-a") is False
    after = backend.transport.stat(leases._lease_key(0))
    assert (after.mtime, after.generation) == (before.mtime, before.generation)
    leases.release(0)
    assert leases.heartbeat(0, "worker-a") is False  # absent is also a loss


def test_lease_release_by_evicted_owner_spares_new_owner(backend):
    leases = SliceLeases(backend.root, ttl=5.0)
    assert leases.try_claim(0, "worker-a")
    backend.backdate(leases._lease_key(0), 6.0)
    assert leases.try_claim(0, "worker-b")
    leases.release(0, "worker-a")
    assert leases.lease_info(0).worker == "worker-b"
    leases.release(0, "worker-b")
    assert leases.lease_info(0) is None


def test_lease_done_marker_blocks_claims_and_keeps_provenance(backend):
    leases = SliceLeases(backend.root, ttl=5.0)
    assert leases.try_claim(0, "worker-a")
    leases.mark_done(0, "worker-a", start=0, stop=3, executed=3)
    assert leases.is_done(0)
    assert leases.lease_info(0) is None
    assert leases.try_claim(0, "worker-b") is False
    (record,) = leases.done_records()
    assert record["worker"] == "worker-a"
    assert (record["start"], record["stop"], record["executed"]) == (0, 3, 3)
    assert leases.outstanding() == []


# ------------------------------------------------- atomic_write_bytes fix


def test_temp_names_are_unique_within_one_thread():
    # The historical name embedded only the pid, so two in-flight writes of
    # one target inside one process shared a temp file.
    first = _temp_path_for("/store/LEASE")
    second = _temp_path_for("/store/LEASE")
    assert first != second
    for name in (first, second):
        assert name.startswith("/store/LEASE.")
        assert name.endswith(".tmp")
        assert str(os.getpid()) in name


def test_concurrent_atomic_writes_to_one_path_never_collide(tmp_path):
    # Regression: the worker heartbeat thread and the main loop both write
    # lease files; with pid-only temp names they scribbled over each other's
    # in-flight temp file.  Hammering one target from many threads must end
    # with one intact payload and zero leftover temp files.
    target = str(tmp_path / "lease")
    payloads = [f"payload-{i:02d}".encode() * 64 for i in range(8)]
    barrier = threading.Barrier(8)
    errors: list[BaseException] = []

    def write(payload: bytes) -> None:
        barrier.wait()
        try:
            for _ in range(25):
                atomic_write_bytes(target, payload)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=write, args=(p,)) for p in payloads]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    with open(target, "rb") as handle:
        assert handle.read() in payloads  # one writer's bytes, intact
    assert os.listdir(tmp_path) == ["lease"]  # no temp residue
