"""Unit tests for the deterministic RNG."""

from repro.sim.rng import DeterministicRNG


def test_same_seed_same_sequence():
    a = DeterministicRNG(1)
    b = DeterministicRNG(1)
    assert [a.uniform("x", 0, 1) for _ in range(5)] == [b.uniform("x", 0, 1) for _ in range(5)]


def test_different_seeds_differ():
    a = DeterministicRNG(1)
    b = DeterministicRNG(2)
    assert [a.uniform("x", 0, 1) for _ in range(5)] != [b.uniform("x", 0, 1) for _ in range(5)]


def test_streams_are_independent_of_request_order():
    a = DeterministicRNG(3)
    b = DeterministicRNG(3)
    # Draw from streams in different orders; each stream's own sequence is stable.
    a_first = a.uniform("alpha", 0, 1)
    a.uniform("beta", 0, 1)
    b.uniform("beta", 0, 1)
    b_first = b.uniform("alpha", 0, 1)
    assert a_first == b_first


def test_randint_within_bounds():
    rng = DeterministicRNG(4)
    values = [rng.randint("ints", 1, 10) for _ in range(100)]
    assert all(1 <= value <= 10 for value in values)


def test_choice_and_shuffle():
    rng = DeterministicRNG(5)
    items = list(range(20))
    assert rng.choice("pick", items) in items
    shuffled = rng.shuffle("mix", items)
    assert sorted(shuffled) == items
    assert items == list(range(20)), "shuffle must not mutate its input"


def test_jitter_bounds():
    rng = DeterministicRNG(6)
    for _ in range(50):
        value = rng.jitter("j", 10.0, fraction=0.1)
        assert 9.0 <= value <= 11.0
    assert rng.jitter("j", 0.0) == 0.0


def test_fork_gives_independent_generator():
    rng = DeterministicRNG(7)
    fork_a = rng.fork(1)
    fork_b = rng.fork(2)
    assert fork_a.uniform("x", 0, 1) != fork_b.uniform("x", 0, 1)
    # Forking is deterministic too.
    assert DeterministicRNG(7).fork(1).uniform("x", 0, 1) == DeterministicRNG(7).fork(1).uniform(
        "x", 0, 1
    )
