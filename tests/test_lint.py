"""mutiny-lint: checkers, suppressions, CLI, and the repo's own cleanliness.

Each checker gets a positive fixture (the violation is found, with the
right code/file/line), a negative fixture (the sanctioned pattern passes),
and a suppressed fixture (a justified inline disable silences exactly that
finding).  The meta-test at the bottom pins the tentpole guarantee: the
shipped tree lints clean, so the CI gate stays green by construction.
"""

from __future__ import annotations

import json
import os
import textwrap

import pytest

import repro
from repro.cli import main
from repro.lint import (
    EXPLANATIONS,
    HYGIENE_CODE,
    JSON_SCHEMA_VERSION,
    KNOWN_CODES,
    TITLES,
    LintUsageError,
    lint_paths,
    select_codes,
)

REPRO_PACKAGE = os.path.dirname(os.path.abspath(repro.__file__))


def lint_fixture(tmp_path, relpath: str, source: str, codes=None):
    """Write one fixture file mirroring the package layout and lint it."""
    path = tmp_path / "repro" / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([str(path)], codes=codes)


def codes_of(report):
    return [diagnostic.code for diagnostic in report.diagnostics]


# ---------------------------------------------------------------------------
# MUT001 — informer mutation
# ---------------------------------------------------------------------------


class TestInformerMutation:
    def test_mutating_a_copy_false_ref_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/bad.py",
            """\
            def reconcile(client):
                pod = client.get("Pod", "a", copy=False)
                pod["metadata"]["labels"] = {}
            """,
        )
        assert codes_of(report) == ["MUT001"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.line == 3
        assert "bad.py" in diagnostic.path
        assert "copy=False" in diagnostic.message

    def test_loop_variable_over_listed_refs_is_tainted(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/loop.py",
            """\
            def reconcile(client):
                for pod in client.list("Pod", copy=False):
                    pod["spec"]["nodeName"] = "n1"
            """,
        )
        assert codes_of(report) == ["MUT001"]

    def test_mutating_method_call_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/method.py",
            """\
            def reconcile(client):
                pods = client.list("Pod", copy=False)
                pods.append({})
            """,
        )
        assert codes_of(report) == ["MUT001"]

    def test_deep_copy_clears_taint(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/good.py",
            """\
            def reconcile(client, deep_copy):
                pod = client.get("Pod", "a", copy=False)
                pod = deep_copy(pod)
                pod["metadata"]["labels"] = {}
                client.update("Pod", pod)
            """,
        )
        assert report.ok

    def test_copy_true_reads_are_not_tainted(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/copied.py",
            """\
            def reconcile(client):
                pod = client.get("Pod", "a")
                pod["metadata"]["labels"] = {}
            """,
        )
        assert report.ok

    def test_fresh_container_over_refs_may_be_mutated(self, tmp_path):
        # The scheduler/namespace-controller pattern: a comprehension over a
        # copy=False list builds a *new* container; appending to it is fine.
        report = lint_fixture(
            tmp_path,
            "controllers/fresh.py",
            """\
            def reconcile(client):
                pods = client.list("Pod", copy=False)
                names = {p.get("name") for p in pods}
                names.update(("default",))
                bound = [pod for pod in pods if pod.get("bound")]
                bound.append({"fresh": True})
            """,
        )
        assert report.ok

    def test_iterating_a_fresh_container_yields_refs(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/elements.py",
            """\
            def reconcile(client):
                pods = client.list("Pod", copy=False)
                bound = [pod for pod in pods if pod.get("bound")]
                for pod in bound:
                    pod["seen"] = True
            """,
        )
        assert codes_of(report) == ["MUT001"]

    def test_justified_suppression_silences_the_finding(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/waived.py",
            """\
            def reconcile(client):
                pod = client.get("Pod", "a", copy=False)
                # mutiny-lint: disable=MUT001 -- scratch field never read by other controllers
                pod["scratch"] = 1
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# MUT002 — transport purity
# ---------------------------------------------------------------------------


class TestTransportPurity:
    def test_direct_os_io_in_scope_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/distributed.py",
            """\
            import os

            def cleanup(path):
                os.remove(path)
            """,
        )
        assert codes_of(report) == ["MUT002"]
        assert report.diagnostics[0].line == 4

    def test_open_and_http_client_in_service_are_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/raw.py",
            """\
            import http.client

            def fetch(path):
                with open(path) as handle:
                    return handle.read()
            """,
        )
        assert codes_of(report) == ["MUT002", "MUT002"]

    def test_from_http_import_client_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/federate.py",
            "from http import client\n",
        )
        assert codes_of(report) == ["MUT002"]

    def test_out_of_scope_modules_may_do_io(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/transport.py",
            """\
            import os

            def put(path, data):
                with open(path, "wb") as handle:
                    handle.write(data)
                os.rename(path, path + ".final")
            """,
        )
        assert report.ok

    def test_justified_suppression_silences_the_finding(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/waived.py",
            """\
            # mutiny-lint: disable=MUT002 -- control-plane HTTP, not shard storage
            import http.client
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# MUT003 — determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_wall_clock_in_sim_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "sim/clocky.py",
            """\
            import time

            def stamp():
                return time.time()
            """,
        )
        assert codes_of(report) == ["MUT003"]
        assert report.diagnostics[0].line == 4

    def test_random_module_and_unseeded_random_are_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/dicey.py",
            """\
            import random
            from random import Random

            def roll():
                generator = Random()
                return random.random()
            """,
        )
        assert codes_of(report) == ["MUT003", "MUT003", "MUT003", "MUT003"]

    def test_seeded_random_and_monotonic_pacing_pass(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/parallel.py",
            """\
            import time

            def pace(seed, Random):
                generator = Random(seed)
                deadline = time.monotonic() + 5.0
                time.sleep(0.01)
                return generator, deadline, time.perf_counter()
            """,
        )
        assert report.ok

    def test_slice_leases_wall_clock_is_allowlisted(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/distributed.py",
            """\
            import time

            class SliceLeases:
                def age(self, mtime):
                    return time.time() - mtime

            def elsewhere():
                return time.time()
            """,
        )
        # Only the module-level function is flagged; the class is exempt.
        assert codes_of(report) == ["MUT003"]
        assert report.diagnostics[0].line == 8

    def test_rng_module_itself_is_exempt(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "sim/rng.py",
            """\
            import random

            def stream(seed):
                return random.Random(seed)
            """,
        )
        assert report.ok

    def test_out_of_scope_modules_may_use_wall_clock(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/clocked.py",
            """\
            import time

            def submitted_at():
                return time.time()
            """,
        )
        assert report.ok

    def test_justified_suppression_silences_the_finding(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "sim/waived.py",
            """\
            import time

            def stamp():
                # mutiny-lint: disable=MUT003 -- diagnostic log timestamp, never stored in results
                return time.time()
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# MUT004 — lock discipline
# ---------------------------------------------------------------------------


class TestLockDiscipline:
    def test_off_lock_write_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/svc.py",
            """\
            class Svc:
                _lock_guarded = ("_state",)

                def __init__(self):
                    self._state = 0

                def bump(self):
                    self._state += 1
            """,
        )
        assert codes_of(report) == ["MUT004"]
        assert report.diagnostics[0].line == 8

    def test_off_lock_read_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/read.py",
            """\
            class Svc:
                _lock_guarded = ("_state",)

                def peek(self):
                    return self._state
            """,
        )
        assert codes_of(report) == ["MUT004"]

    def test_locked_access_and_locked_suffix_pass(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/good.py",
            """\
            class Svc:
                _lock_guarded = ("_state",)

                def __init__(self, lock):
                    self._lock = lock
                    self._state = 0

                def bump(self):
                    with self._lock:
                        self._state += 1
                        return self._state

                def _drain_locked(self):
                    self._state = 0
            """,
        )
        assert report.ok

    def test_unregistered_assignment_outside_init_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/frozen.py",
            """\
            class Leases:
                _lock_guarded = ()

                def __init__(self, root):
                    self.root = root

                def rebind(self, root):
                    self.root = root
            """,
        )
        assert codes_of(report) == ["MUT004"]
        assert "unregistered" in report.diagnostics[0].message

    def test_nested_function_does_not_inherit_the_lock(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/nested.py",
            """\
            class Svc:
                _lock_guarded = ("_state",)

                def bump(self):
                    with self._lock:
                        def later():
                            return self._state
                        return later
            """,
        )
        assert codes_of(report) == ["MUT004"]

    def test_undeclared_classes_are_out_of_scope(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/plain.py",
            """\
            class Plain:
                def bump(self):
                    self.count = getattr(self, "count", 0) + 1
            """,
        )
        assert report.ok

    def test_justified_suppression_silences_the_finding(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/waived.py",
            """\
            class Svc:
                _lock_guarded = ("_state",)

                def peek_racy(self):
                    # mutiny-lint: disable=MUT004 -- monotonic counter, approximate read is fine for metrics
                    return self._state
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# MUT005 — swallowed exceptions
# ---------------------------------------------------------------------------


class TestSwallowedException:
    def test_bare_except_pass_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/swallow.py",
            """\
            def work(task):
                try:
                    task()
                except:
                    pass
            """,
        )
        assert codes_of(report) == ["MUT005"]
        assert report.diagnostics[0].line == 4

    def test_broad_except_in_tuple_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/tuple.py",
            """\
            def work(task):
                try:
                    task()
                except (ValueError, Exception):
                    return None
            """,
        )
        assert codes_of(report) == ["MUT005"]

    def test_narrow_except_is_control_flow(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/narrow.py",
            """\
            def work(mapping):
                try:
                    return mapping["key"]
                except KeyError:
                    return None
            """,
        )
        assert report.ok

    def test_recording_or_reraising_the_error_passes(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/handled.py",
            """\
            def work(task, sink):
                try:
                    task()
                except Exception as error:
                    sink.append(error)
                try:
                    task()
                except Exception as error:
                    raise RuntimeError("wrapped") from error
            """,
        )
        assert report.ok

    def test_raise_inside_nested_def_does_not_count(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/nested_raise.py",
            """\
            def work(task):
                try:
                    task()
                except Exception:
                    def later():
                        raise RuntimeError("too late")
                    return later
            """,
        )
        assert codes_of(report) == ["MUT005"]

    def test_justified_suppression_silences_the_finding(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/waived.py",
            """\
            def work(task):
                try:
                    task()
                # mutiny-lint: disable=MUT005 -- last-resort barrier; the error was recorded upstream
                except Exception:
                    pass
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# MUT000 — suppression hygiene
# ---------------------------------------------------------------------------


class TestSuppressionHygiene:
    def test_unjustified_suppression_is_flagged_and_inert(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/unjustified.py",
            """\
            def work(task):
                try:
                    task()
                # mutiny-lint: disable=MUT005
                except Exception:
                    pass
            """,
        )
        # The naked disable is itself a finding AND fails to suppress.
        assert sorted(codes_of(report)) == [HYGIENE_CODE, "MUT005"]

    def test_unknown_code_in_suppression_is_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/unknown.py",
            "x = 1  # mutiny-lint: disable=MUT999 -- no such contract\n",
        )
        assert codes_of(report) == [HYGIENE_CODE]
        assert "MUT999" in report.diagnostics[0].message

    def test_hygiene_code_itself_cannot_be_suppressed(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/meta.py",
            "x = 1  # mutiny-lint: disable=MUT000 -- trying to silence the referee\n",
        )
        assert HYGIENE_CODE in codes_of(report)

    def test_malformed_directive_is_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/typo.py",
            "x = 1  # mutiny-lint: disabled=MUT005 -- typo in the marker\n",
        )
        assert codes_of(report) == [HYGIENE_CODE]

    def test_prose_mentioning_the_tool_is_fine(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/prose.py",
            "x = 1  # checked by mutiny-lint MUT004\n",
        )
        assert report.ok

    def test_syntax_error_becomes_a_hygiene_finding(self, tmp_path):
        report = lint_fixture(tmp_path, "core/broken.py", "def broken(:\n")
        assert codes_of(report) == [HYGIENE_CODE]
        assert "parse" in report.diagnostics[0].message


# ---------------------------------------------------------------------------
# Runner and report
# ---------------------------------------------------------------------------


class TestRunner:
    def test_codes_filter_selects_checkers(self, tmp_path):
        source = """\
        import time

        def stamp(client):
            pod = client.get("Pod", "a", copy=False)
            pod["at"] = time.time()
        """
        everything = lint_fixture(tmp_path, "controllers/both.py", source)
        assert sorted(codes_of(everything)) == ["MUT001", "MUT003"]
        only_determinism = lint_fixture(
            tmp_path, "controllers/both.py", source, codes=["MUT003"]
        )
        assert codes_of(only_determinism) == ["MUT003"]

    def test_unknown_code_is_a_usage_error(self):
        with pytest.raises(LintUsageError):
            select_codes(["MUT731"])

    def test_json_document_schema_is_stable(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/swallow.py",
            """\
            def work(task):
                try:
                    task()
                except:
                    pass
            """,
        )
        document = report.to_document()
        assert sorted(document) == [
            "codes", "files_checked", "findings", "ok", "schema_version", "tool",
        ]
        assert document["schema_version"] == JSON_SCHEMA_VERSION == 1
        assert document["tool"] == "mutiny-lint"
        assert document["ok"] is False
        (finding,) = document["findings"]
        assert sorted(finding) == ["code", "column", "file", "line", "message"]
        assert finding["code"] == "MUT005"
        assert finding["line"] == 4

    def test_every_code_has_title_and_explanation(self):
        assert set(KNOWN_CODES) == set(TITLES) == set(EXPLANATIONS)
        for code in KNOWN_CODES:
            assert TITLES[code].strip()
            assert len(EXPLANATIONS[code].strip()) > 100


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestLintCli:
    def seed(self, tmp_path):
        path = tmp_path / "repro" / "sim" / "clocky.py"
        path.parent.mkdir(parents=True)
        path.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        return path

    def test_findings_exit_1_and_name_code_file_line(self, tmp_path, capsys):
        path = self.seed(tmp_path)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "MUT003" in out
        assert f"{path}:4:" in out

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        path = tmp_path / "repro" / "controllers" / "fine.py"
        path.parent.mkdir(parents=True)
        path.write_text("def reconcile(client):\n    return client.list('Pod')\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format_parses_and_matches(self, tmp_path, capsys):
        self.seed(tmp_path)
        assert main(["lint", "--format", "json", str(tmp_path)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["findings"][0]["code"] == "MUT003"

    def test_codes_flag_filters(self, tmp_path, capsys):
        self.seed(tmp_path)
        assert main(["lint", "--codes", "MUT001,MUT005", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_unknown_code_exits_2(self, tmp_path, capsys):
        assert main(["lint", "--codes", "MUT731", str(tmp_path)]) == 2
        assert "MUT731" in capsys.readouterr().err

    def test_explain_every_known_code(self, capsys):
        for code in KNOWN_CODES:
            assert main(["lint", "--explain", code]) == 0
            out = capsys.readouterr().out
            assert out.startswith(f"{code}:")
            assert len(out) > 200

    def test_explain_unknown_code_exits_2(self, capsys):
        assert main(["lint", "--explain", "MUT731"]) == 2
        assert "MUT731" in capsys.readouterr().err

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nowhere")]) == 2
        capsys.readouterr()


# ---------------------------------------------------------------------------
# The tentpole guarantee: the shipped tree lints clean.
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_the_repro_package_lints_clean(self):
        report = lint_paths([REPRO_PACKAGE])
        assert report.files_checked > 50
        assert report.ok, "\n".join(
            diagnostic.render() for diagnostic in report.diagnostics
        )
