"""mutiny-lint: checkers, suppressions, CLI, and the repo's own cleanliness.

Each checker gets a positive fixture (the violation is found, with the
right code/file/line), a negative fixture (the sanctioned pattern passes),
and a suppressed fixture (a justified inline disable silences exactly that
finding).  The meta-test at the bottom pins the tentpole guarantee: the
shipped tree lints clean, so the CI gate stays green by construction.
"""

from __future__ import annotations

import json
import os
import textwrap

import pytest

import repro
from repro.cli import _github_escape, main
from repro.lint import (
    EXPLANATIONS,
    HYGIENE_CODE,
    JSON_SCHEMA_VERSION,
    KNOWN_CODES,
    TITLES,
    BaselineError,
    Diagnostic,
    LintUsageError,
    lint_paths,
    select_codes,
)
from repro.lint import baseline as lint_baseline

REPRO_PACKAGE = os.path.dirname(os.path.abspath(repro.__file__))


def lint_fixture(tmp_path, relpath: str, source: str, codes=None, **kwargs):
    """Write one fixture file mirroring the package layout and lint it."""
    path = tmp_path / "repro" / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([str(path)], codes=codes, **kwargs)


def lint_tree(tmp_path, files: dict, codes=None, **kwargs):
    """Write a multi-file fixture tree (for the whole-program checkers)
    mirroring the package layout, and lint the whole tree."""
    for relpath, source in files.items():
        path = tmp_path / "repro" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return lint_paths([str(tmp_path)], codes=codes, **kwargs)


def codes_of(report):
    return [diagnostic.code for diagnostic in report.diagnostics]


# ---------------------------------------------------------------------------
# MUT001 — informer mutation
# ---------------------------------------------------------------------------


class TestInformerMutation:
    def test_mutating_a_copy_false_ref_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/bad.py",
            """\
            def reconcile(client):
                pod = client.get("Pod", "a", copy=False)
                pod["metadata"]["labels"] = {}
            """,
        )
        assert codes_of(report) == ["MUT001"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.line == 3
        assert "bad.py" in diagnostic.path
        assert "copy=False" in diagnostic.message

    def test_loop_variable_over_listed_refs_is_tainted(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/loop.py",
            """\
            def reconcile(client):
                for pod in client.list("Pod", copy=False):
                    pod["spec"]["nodeName"] = "n1"
            """,
        )
        assert codes_of(report) == ["MUT001"]

    def test_mutating_method_call_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/method.py",
            """\
            def reconcile(client):
                pods = client.list("Pod", copy=False)
                pods.append({})
            """,
        )
        assert codes_of(report) == ["MUT001"]

    def test_deep_copy_clears_taint(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/good.py",
            """\
            def reconcile(client, deep_copy):
                pod = client.get("Pod", "a", copy=False)
                pod = deep_copy(pod)
                pod["metadata"]["labels"] = {}
                client.update("Pod", pod)
            """,
        )
        assert report.ok

    def test_copy_true_reads_are_not_tainted(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/copied.py",
            """\
            def reconcile(client):
                pod = client.get("Pod", "a")
                pod["metadata"]["labels"] = {}
            """,
        )
        assert report.ok

    def test_fresh_container_over_refs_may_be_mutated(self, tmp_path):
        # The scheduler/namespace-controller pattern: a comprehension over a
        # copy=False list builds a *new* container; appending to it is fine.
        report = lint_fixture(
            tmp_path,
            "controllers/fresh.py",
            """\
            def reconcile(client):
                pods = client.list("Pod", copy=False)
                names = {p.get("name") for p in pods}
                names.update(("default",))
                bound = [pod for pod in pods if pod.get("bound")]
                bound.append({"fresh": True})
            """,
        )
        assert report.ok

    def test_iterating_a_fresh_container_yields_refs(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/elements.py",
            """\
            def reconcile(client):
                pods = client.list("Pod", copy=False)
                bound = [pod for pod in pods if pod.get("bound")]
                for pod in bound:
                    pod["seen"] = True
            """,
        )
        assert codes_of(report) == ["MUT001"]

    def test_justified_suppression_silences_the_finding(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/waived.py",
            """\
            def reconcile(client):
                pod = client.get("Pod", "a", copy=False)
                # mutiny-lint: disable=MUT001 -- scratch field never read by other controllers
                pod["scratch"] = 1
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# MUT002 — transport purity
# ---------------------------------------------------------------------------


class TestTransportPurity:
    def test_direct_os_io_in_scope_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/distributed.py",
            """\
            import os

            def cleanup(path):
                os.remove(path)
            """,
        )
        assert codes_of(report) == ["MUT002"]
        assert report.diagnostics[0].line == 4

    def test_open_and_http_client_in_service_are_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/raw.py",
            """\
            import http.client

            def fetch(path):
                with open(path) as handle:
                    return handle.read()
            """,
        )
        assert codes_of(report) == ["MUT002", "MUT002"]

    def test_from_http_import_client_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/federate.py",
            "from http import client\n",
        )
        assert codes_of(report) == ["MUT002"]

    def test_out_of_scope_modules_may_do_io(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/transport.py",
            """\
            import os

            def put(path, data):
                with open(path, "wb") as handle:
                    handle.write(data)
                os.rename(path, path + ".final")
            """,
        )
        assert report.ok

    def test_justified_suppression_silences_the_finding(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/waived.py",
            """\
            # mutiny-lint: disable=MUT002 -- control-plane HTTP, not shard storage
            import http.client
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# MUT003 — determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_wall_clock_in_sim_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "sim/clocky.py",
            """\
            import time

            def stamp():
                return time.time()
            """,
        )
        assert codes_of(report) == ["MUT003"]
        assert report.diagnostics[0].line == 4

    def test_random_module_and_unseeded_random_are_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "controllers/dicey.py",
            """\
            import random
            from random import Random

            def roll():
                generator = Random()
                return random.random()
            """,
        )
        assert codes_of(report) == ["MUT003", "MUT003", "MUT003", "MUT003"]

    def test_seeded_random_and_monotonic_pacing_pass(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/parallel.py",
            """\
            import time

            def pace(seed, Random):
                generator = Random(seed)
                deadline = time.monotonic() + 5.0
                time.sleep(0.01)
                return generator, deadline, time.perf_counter()
            """,
        )
        assert report.ok

    def test_slice_leases_wall_clock_is_allowlisted(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/distributed.py",
            """\
            import time

            class SliceLeases:
                def age(self, mtime):
                    return time.time() - mtime

            def elsewhere():
                return time.time()
            """,
        )
        # Only the module-level function is flagged; the class is exempt.
        assert codes_of(report) == ["MUT003"]
        assert report.diagnostics[0].line == 8

    def test_rng_module_itself_is_exempt(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "sim/rng.py",
            """\
            import random

            def stream(seed):
                return random.Random(seed)
            """,
        )
        assert report.ok

    def test_out_of_scope_modules_may_use_wall_clock(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/clocked.py",
            """\
            import time

            def submitted_at():
                return time.time()
            """,
        )
        assert report.ok

    def test_justified_suppression_silences_the_finding(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "sim/waived.py",
            """\
            import time

            def stamp():
                # mutiny-lint: disable=MUT003 -- diagnostic log timestamp, never stored in results
                return time.time()
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# MUT004 — lock discipline
# ---------------------------------------------------------------------------


class TestLockDiscipline:
    def test_off_lock_write_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/svc.py",
            """\
            class Svc:
                _lock_guarded = ("_state",)

                def __init__(self):
                    self._state = 0

                def bump(self):
                    self._state += 1
            """,
        )
        assert codes_of(report) == ["MUT004"]
        assert report.diagnostics[0].line == 8

    def test_off_lock_read_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/read.py",
            """\
            class Svc:
                _lock_guarded = ("_state",)

                def peek(self):
                    return self._state
            """,
        )
        assert codes_of(report) == ["MUT004"]

    def test_locked_access_and_locked_suffix_pass(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/good.py",
            """\
            class Svc:
                _lock_guarded = ("_state",)

                def __init__(self, lock):
                    self._lock = lock
                    self._state = 0

                def bump(self):
                    with self._lock:
                        self._state += 1
                        return self._state

                def _drain_locked(self):
                    self._state = 0
            """,
        )
        assert report.ok

    def test_unregistered_assignment_outside_init_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/frozen.py",
            """\
            class Leases:
                _lock_guarded = ()

                def __init__(self, root):
                    self.root = root

                def rebind(self, root):
                    self.root = root
            """,
        )
        assert codes_of(report) == ["MUT004"]
        assert "unregistered" in report.diagnostics[0].message

    def test_nested_function_does_not_inherit_the_lock(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/nested.py",
            """\
            class Svc:
                _lock_guarded = ("_state",)

                def bump(self):
                    with self._lock:
                        def later():
                            return self._state
                        return later
            """,
        )
        assert codes_of(report) == ["MUT004"]

    def test_undeclared_classes_are_out_of_scope(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/plain.py",
            """\
            class Plain:
                def bump(self):
                    self.count = getattr(self, "count", 0) + 1
            """,
        )
        assert report.ok

    def test_justified_suppression_silences_the_finding(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/waived.py",
            """\
            class Svc:
                _lock_guarded = ("_state",)

                def peek_racy(self):
                    # mutiny-lint: disable=MUT004 -- monotonic counter, approximate read is fine for metrics
                    return self._state
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# MUT005 — swallowed exceptions
# ---------------------------------------------------------------------------


class TestSwallowedException:
    def test_bare_except_pass_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/swallow.py",
            """\
            def work(task):
                try:
                    task()
                except:
                    pass
            """,
        )
        assert codes_of(report) == ["MUT005"]
        assert report.diagnostics[0].line == 4

    def test_broad_except_in_tuple_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/tuple.py",
            """\
            def work(task):
                try:
                    task()
                except (ValueError, Exception):
                    return None
            """,
        )
        assert codes_of(report) == ["MUT005"]

    def test_narrow_except_is_control_flow(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/narrow.py",
            """\
            def work(mapping):
                try:
                    return mapping["key"]
                except KeyError:
                    return None
            """,
        )
        assert report.ok

    def test_recording_or_reraising_the_error_passes(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/handled.py",
            """\
            def work(task, sink):
                try:
                    task()
                except Exception as error:
                    sink.append(error)
                try:
                    task()
                except Exception as error:
                    raise RuntimeError("wrapped") from error
            """,
        )
        assert report.ok

    def test_raise_inside_nested_def_does_not_count(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/nested_raise.py",
            """\
            def work(task):
                try:
                    task()
                except Exception:
                    def later():
                        raise RuntimeError("too late")
                    return later
            """,
        )
        assert codes_of(report) == ["MUT005"]

    def test_justified_suppression_silences_the_finding(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/waived.py",
            """\
            def work(task):
                try:
                    task()
                # mutiny-lint: disable=MUT005 -- last-resort barrier; the error was recorded upstream
                except Exception:
                    pass
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# MUT000 — suppression hygiene
# ---------------------------------------------------------------------------


class TestSuppressionHygiene:
    def test_unjustified_suppression_is_flagged_and_inert(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/unjustified.py",
            """\
            def work(task):
                try:
                    task()
                # mutiny-lint: disable=MUT005
                except Exception:
                    pass
            """,
        )
        # The naked disable is itself a finding AND fails to suppress.
        assert sorted(codes_of(report)) == [HYGIENE_CODE, "MUT005"]

    def test_unknown_code_in_suppression_is_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/unknown.py",
            "x = 1  # mutiny-lint: disable=MUT999 -- no such contract\n",
        )
        assert codes_of(report) == [HYGIENE_CODE]
        assert "MUT999" in report.diagnostics[0].message

    def test_hygiene_code_itself_cannot_be_suppressed(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/meta.py",
            "x = 1  # mutiny-lint: disable=MUT000 -- trying to silence the referee\n",
        )
        assert HYGIENE_CODE in codes_of(report)

    def test_malformed_directive_is_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/typo.py",
            "x = 1  # mutiny-lint: disabled=MUT005 -- typo in the marker\n",
        )
        assert codes_of(report) == [HYGIENE_CODE]

    def test_prose_mentioning_the_tool_is_fine(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/prose.py",
            "x = 1  # checked by mutiny-lint MUT004\n",
        )
        assert report.ok

    def test_syntax_error_becomes_a_hygiene_finding(self, tmp_path):
        report = lint_fixture(tmp_path, "core/broken.py", "def broken(:\n")
        assert codes_of(report) == [HYGIENE_CODE]
        assert "parse" in report.diagnostics[0].message


# ---------------------------------------------------------------------------
# Runner and report
# ---------------------------------------------------------------------------


class TestRunner:
    def test_codes_filter_selects_checkers(self, tmp_path):
        source = """\
        import time

        def stamp(client):
            pod = client.get("Pod", "a", copy=False)
            pod["at"] = time.time()
        """
        everything = lint_fixture(tmp_path, "controllers/both.py", source)
        assert sorted(codes_of(everything)) == ["MUT001", "MUT003"]
        only_determinism = lint_fixture(
            tmp_path, "controllers/both.py", source, codes=["MUT003"]
        )
        assert codes_of(only_determinism) == ["MUT003"]

    def test_unknown_code_is_a_usage_error(self):
        with pytest.raises(LintUsageError):
            select_codes(["MUT731"])

    def test_json_document_schema_is_stable(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "core/swallow.py",
            """\
            def work(task):
                try:
                    task()
                except:
                    pass
            """,
        )
        document = report.to_document()
        assert sorted(document) == [
            "baselined", "codes", "files_checked", "findings", "ok",
            "schema_version", "stale_baseline", "tool",
        ]
        assert document["schema_version"] == JSON_SCHEMA_VERSION == 1
        assert document["tool"] == "mutiny-lint"
        assert document["ok"] is False
        (finding,) = document["findings"]
        assert sorted(finding) == ["code", "column", "file", "line", "message"]
        assert finding["code"] == "MUT005"
        assert finding["line"] == 4

    def test_every_code_has_title_and_explanation(self):
        assert set(KNOWN_CODES) == set(TITLES) == set(EXPLANATIONS)
        for code in KNOWN_CODES:
            assert TITLES[code].strip()
            assert len(EXPLANATIONS[code].strip()) > 100


# ---------------------------------------------------------------------------
# MUT006 — interprocedural transport purity
# ---------------------------------------------------------------------------


class TestInterproceduralPurity:
    def test_cross_module_chain_is_found_with_the_full_chain(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "core/util.py": """\
                def dump(path, data):
                    with open(path, "w") as handle:
                        handle.write(data)
                """,
                "service/flush.py": """\
                from repro.core.util import dump

                def persist(path, data):
                    dump(path, data)
                """,
            },
        )
        assert codes_of(report) == ["MUT006"]
        diagnostic = report.diagnostics[0]
        assert "flush.py" in diagnostic.path
        assert diagnostic.line == 4
        assert "call chain:" in diagnostic.message
        assert "util.dump (service/flush.py:4)" in diagnostic.message
        assert "open() (core/util.py:2)" in diagnostic.message

    def test_in_scope_terminal_is_mut002s_finding_not_a_chain(self, tmp_path):
        # The helper's open() lives inside MUT002's scope: the primitive is
        # reported there once, and MUT006 does not also flag every caller.
        report = lint_tree(
            tmp_path,
            {
                "service/selfio.py": """\
                def helper(path):
                    open(path)

                def persist(path):
                    helper(path)
                """,
            },
        )
        assert codes_of(report) == ["MUT002"]
        assert report.diagnostics[0].line == 2

    def test_transport_modules_are_the_sanctioned_floor(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "core/transport.py": """\
                def put(path, data):
                    with open(path, "wb") as handle:
                        handle.write(data)
                """,
                "service/store.py": """\
                from repro.core import transport

                def persist(path, data):
                    transport.put(path, data)
                """,
            },
        )
        assert report.ok

    def test_out_of_scope_callers_are_not_constrained(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "core/util.py": """\
                def dump(path, data):
                    open(path)
                """,
                "controllers/logger.py": """\
                from repro.core.util import dump

                def snapshot(path, data):
                    dump(path, data)
                """,
            },
        )
        assert report.ok

    def test_justified_suppression_at_the_primitive_covers_chains(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "core/probe.py": """\
                def probe(path):
                    # mutiny-lint: disable=MUT006 -- scratch file outside the store root, never shard data
                    open(path)
                """,
                "service/monitor.py": """\
                from repro.core.probe import probe

                def check(path):
                    probe(path)
                """,
            },
        )
        assert report.ok


# ---------------------------------------------------------------------------
# MUT001 (interprocedural) — tainted reference escaping into a helper
# ---------------------------------------------------------------------------


class TestInformerEscape:
    def test_copy_false_ref_passed_to_mutating_helper_is_found(self, tmp_path):
        # The documented hole in intraprocedural MUT001: the mutation
        # happens in the helper, the taint in the caller.
        report = lint_tree(
            tmp_path,
            {
                "controllers/escape.py": """\
                def strip_status(pod):
                    pod.pop("status")

                def reconcile(client):
                    pod = client.get("Pod", "a", copy=False)
                    strip_status(pod)
                """,
            },
        )
        assert codes_of(report) == ["MUT001"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.line == 6
        assert "'strip_status'" in diagnostic.message
        assert "'pod'" in diagnostic.message
        assert "controllers/escape.py:2" in diagnostic.message
        assert "deep_copy" in diagnostic.message

    def test_transitive_forwarding_is_found(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "controllers/chainmut.py": """\
                def inner(obj):
                    obj["seen"] = True

                def outer(obj):
                    inner(obj)

                def reconcile(client):
                    pods = client.list("Pod", copy=False)
                    outer(pods)
                """,
            },
        )
        assert codes_of(report) == ["MUT001"]
        assert report.diagnostics[0].line == 9

    def test_method_helper_accounts_for_self(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "controllers/methodmut.py": """\
                class Reconciler:
                    def _strip(self, pod):
                        pod.pop("status")

                    def reconcile(self, client):
                        pod = client.get("Pod", "a", copy=False)
                        self._strip(pod)
                """,
            },
        )
        assert codes_of(report) == ["MUT001"]
        assert "'pod'" in report.diagnostics[0].message

    def test_helper_that_rebinds_its_parameter_is_safe(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "controllers/rebind.py": """\
                def sanitize(pod, deep_copy):
                    pod = deep_copy(pod)
                    pod.pop("status")

                def reconcile(client, deep_copy):
                    pod = client.get("Pod", "a", copy=False)
                    sanitize(pod, deep_copy)
                """,
            },
        )
        assert report.ok

    def test_read_only_helper_is_safe(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "controllers/readonly.py": """\
                def name_of(pod):
                    return pod.get("name")

                def reconcile(client):
                    pod = client.get("Pod", "a", copy=False)
                    return name_of(pod)
                """,
            },
        )
        assert report.ok


# ---------------------------------------------------------------------------
# MUT007 — blocking under a lock
# ---------------------------------------------------------------------------


class TestBlockingUnderLock:
    def test_direct_sleep_under_lock_is_found(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "service/busy.py": """\
                import time
                import threading

                class Svc:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def bad(self):
                        with self._lock:
                            time.sleep(0.1)
                """,
            },
        )
        assert codes_of(report) == ["MUT007"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.line == 10
        assert "time.sleep()" in diagnostic.message
        assert "self._lock" in diagnostic.message

    def test_transport_seven_op_under_lock_is_found(self, tmp_path):
        # The receiver is a parameter — an unknown callee to the graph —
        # but the lexical transport heuristic must not silently pass it.
        report = lint_tree(
            tmp_path,
            {
                "service/flushy.py": """\
                import threading

                class Writer:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def flush(self, transport, key, data):
                        with self._lock:
                            transport.put(key, data)
                """,
            },
        )
        assert codes_of(report) == ["MUT007"]
        assert "transport put()" in report.diagnostics[0].message

    def test_thread_join_under_lock_is_found(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "service/joiny.py": """\
                import threading

                class Svc:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def stop(self, worker_thread):
                        with self._lock:
                            worker_thread.join()
                """,
            },
        )
        assert codes_of(report) == ["MUT007"]
        assert "Thread.join" in report.diagnostics[0].message

    def test_interprocedural_chain_is_found_and_printed(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "service/spin.py": """\
                import time
                import threading

                class Svc:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def _backoff(self):
                        time.sleep(0.5)

                    def run(self):
                        with self._lock:
                            self._backoff()
                """,
            },
        )
        assert codes_of(report) == ["MUT007"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.line == 13
        assert "call chain:" in diagnostic.message
        assert "time.sleep() (service/spin.py:9)" in diagnostic.message

    def test_locked_suffix_bodies_report_once_at_the_site(self, tmp_path):
        # _flush_locked holds self._lock by convention: the sleep inside it
        # is the finding; the caller's dispatch is not a second one.
        report = lint_tree(
            tmp_path,
            {
                "service/conv.py": """\
                import time
                import threading

                class Writer:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def _flush_locked(self):
                        time.sleep(0.1)

                    def flush(self):
                        with self._lock:
                            self._flush_locked()
                """,
            },
        )
        assert codes_of(report) == ["MUT007"]
        assert report.diagnostics[0].line == 9

    def test_join_and_sleep_outside_locks_are_fine(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "service/fine.py": """\
                import os
                import time
                import threading

                class Svc:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def label(self, parts):
                        with self._lock:
                            return "-".join(parts) + os.path.join("a", "b")

                    def nap(self):
                        time.sleep(0.1)
                """,
            },
        )
        assert report.ok

    def test_justified_suppression_at_the_primitive_covers_callers(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "service/waivedblock.py": """\
                import time
                import threading

                class Svc:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def _pace(self):
                        # mutiny-lint: disable=MUT007 -- fixed 1ms pacing, bounded and intentional
                        time.sleep(0.001)

                    def run(self):
                        with self._lock:
                            self._pace()
                """,
            },
        )
        assert report.ok


# ---------------------------------------------------------------------------
# MUT008 — lock-order cycles
# ---------------------------------------------------------------------------


class TestLockOrder:
    def test_two_locks_taken_in_both_orders_is_a_cycle(self, tmp_path):
        # One order is lexical, the other runs through the call graph.
        report = lint_tree(
            tmp_path,
            {
                "service/order.py": """\
                import threading

                class TwoLocks:
                    def __init__(self):
                        self._read_lock = threading.Lock()
                        self._write_lock = threading.Lock()

                    def snapshot(self):
                        with self._read_lock:
                            with self._write_lock:
                                pass

                    def publish(self):
                        with self._write_lock:
                            self._note()

                    def _note(self):
                        with self._read_lock:
                            pass
                """,
            },
        )
        assert codes_of(report) == ["MUT008", "MUT008"]
        assert sorted(d.line for d in report.diagnostics) == [10, 15]
        for diagnostic in report.diagnostics:
            assert "lock-order cycle" in diagnostic.message
            assert "_read_lock" in diagnostic.message
            assert "_write_lock" in diagnostic.message

    def test_consistent_order_is_fine(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "service/consistent.py": """\
                import threading

                class TwoLocks:
                    def __init__(self):
                        self._read_lock = threading.Lock()
                        self._write_lock = threading.Lock()

                    def snapshot(self):
                        with self._read_lock:
                            with self._write_lock:
                                pass

                    def publish(self):
                        with self._read_lock:
                            self._grab()

                    def _grab(self):
                        with self._write_lock:
                            pass
                """,
            },
        )
        assert report.ok

    def test_same_attribute_on_two_classes_is_two_locks(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "service/twoclasses.py": """\
                import threading

                class Alpha:
                    def both(self):
                        with self._first_lock:
                            with self._second_lock:
                                pass

                class Beta:
                    def both(self):
                        with self._second_lock:
                            with self._first_lock:
                                pass
                """,
            },
        )
        assert report.ok

    def test_reentry_of_one_lock_is_not_an_ordering_edge(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "service/reentry.py": """\
                import threading

                class Svc:
                    def outer(self):
                        with self._lock:
                            self._inner()

                    def _inner(self):
                        with self._lock:
                            pass
                """,
            },
        )
        assert report.ok


# ---------------------------------------------------------------------------
# MUT009 — nondeterministic iteration
# ---------------------------------------------------------------------------


class TestNondeterministicIteration:
    def test_for_loop_over_a_set_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "sim/sched.py",
            """\
            def schedule(names):
                pending = set(names)
                for name in pending:
                    pass
            """,
        )
        assert codes_of(report) == ["MUT009"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.line == 3
        assert "sorted(" in diagnostic.message

    def test_comprehension_over_listdir_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "sim/scan.py",
            """\
            import os

            def scan(root):
                return [name for name in os.listdir(root)]
            """,
        )
        assert codes_of(report) == ["MUT009"]
        assert "os.listdir()" in report.diagnostics[0].message

    def test_join_over_a_set_comprehension_is_found(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "sim/digest.py",
            """\
            def digest(parts):
                return ",".join({p.strip() for p in parts})
            """,
        )
        assert codes_of(report) == ["MUT009"]

    def test_set_algebra_keeps_the_taint(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "sim/algebra.py",
            """\
            def merge(a, b):
                combined = set(a) | set(b)
                return list(combined)
            """,
        )
        assert codes_of(report) == ["MUT009"]

    def test_sorted_wrapping_is_the_sanctioned_fix(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "sim/sorted_ok.py",
            """\
            import os

            def scan(root, names):
                pending = set(names)
                ordered = [name for name in sorted(pending)]
                listing = sorted(os.listdir(root))
                for name in listing:
                    ordered.append(name)
                return ordered
            """,
        )
        assert report.ok

    def test_membership_tests_are_fine(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "sim/member.py",
            """\
            def filter_known(names):
                pending = set(names)
                return [n for n in names if n in pending]
            """,
        )
        assert report.ok

    def test_out_of_scope_modules_may_iterate_sets(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "service/anyorder.py",
            """\
            def schedule(names):
                pending = set(names)
                for name in pending:
                    pass
            """,
        )
        assert report.ok

    def test_justified_suppression_silences_the_finding(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "sim/waived_iter.py",
            """\
            def schedule(names):
                pending = set(names)
                # mutiny-lint: disable=MUT009 -- debug dump, order never reaches a result record
                for name in pending:
                    pass
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# Baseline / ratchet
# ---------------------------------------------------------------------------


class TestBaseline:
    def finding(self, tmp_path):
        return lint_fixture(
            tmp_path,
            "sim/clocky.py",
            "import time\n\ndef stamp():\n    return time.time()\n",
        )

    def test_serialize_parse_roundtrip_matches_the_finding(self, tmp_path):
        first = self.finding(tmp_path)
        assert codes_of(first) == ["MUT003"]
        entries = lint_baseline.parse(lint_baseline.serialize(first.diagnostics))
        assert entries[0][0] == "sim/clocky.py"
        second = lint_fixture(
            tmp_path,
            "sim/clocky.py",
            "import time\n\ndef stamp():\n    return time.time()\n",
            baseline_entries=entries,
        )
        assert second.ok
        assert second.baselined == 1
        assert not second.diagnostics

    def test_new_findings_still_fail_a_baselined_run(self, tmp_path):
        first = self.finding(tmp_path)
        entries = lint_baseline.parse(lint_baseline.serialize(first.diagnostics))
        report = lint_tree(
            tmp_path,
            {"sim/fresh.py": "import time\n\ndef other():\n    return time.time()\n"},
            baseline_entries=entries,
        )
        assert not report.ok
        assert report.baselined == 1
        assert codes_of(report) == ["MUT003"]
        assert "fresh.py" in report.diagnostics[0].path

    def test_stale_entries_fail_the_run(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "sim/fixed.py",
            "def stamp(sim):\n    return sim.now()\n",
            baseline_entries=[("sim/fixed.py", "MUT003", "gone finding")],
        )
        assert not report.ok
        assert not report.diagnostics
        assert report.stale_baseline == [("sim/fixed.py", "MUT003", "gone finding")]

    def test_multiset_semantics_one_entry_silences_one_instance(self):
        make = lambda line: Diagnostic(
            path="/x/repro/sim/twice.py",
            line=line,
            column=0,
            code="MUT003",
            message="same defect",
        )
        result = lint_baseline.apply(
            [make(3), make(9)], [("sim/twice.py", "MUT003", "same defect")]
        )
        assert len(result.matched) == 1
        assert len(result.new) == 1
        assert not result.stale

    def test_parse_rejects_bad_documents(self):
        with pytest.raises(BaselineError):
            lint_baseline.parse("not json")
        with pytest.raises(BaselineError):
            lint_baseline.parse('{"version": 99, "entries": []}')
        with pytest.raises(BaselineError):
            lint_baseline.parse('{"version": 1, "entries": [{"file": 3}]}')

    def test_shipped_baseline_is_empty(self):
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        with open(os.path.join(repo_root, "lint-baseline.json")) as handle:
            assert lint_baseline.parse(handle.read()) == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestLintCli:
    def seed(self, tmp_path):
        path = tmp_path / "repro" / "sim" / "clocky.py"
        path.parent.mkdir(parents=True)
        path.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        return path

    def test_findings_exit_1_and_name_code_file_line(self, tmp_path, capsys):
        path = self.seed(tmp_path)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "MUT003" in out
        assert f"{path}:4:" in out

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        path = tmp_path / "repro" / "controllers" / "fine.py"
        path.parent.mkdir(parents=True)
        path.write_text("def reconcile(client):\n    return client.list('Pod')\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format_parses_and_matches(self, tmp_path, capsys):
        self.seed(tmp_path)
        assert main(["lint", "--format", "json", str(tmp_path)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["findings"][0]["code"] == "MUT003"

    def test_codes_flag_filters(self, tmp_path, capsys):
        self.seed(tmp_path)
        assert main(["lint", "--codes", "MUT001,MUT005", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_unknown_code_exits_2(self, tmp_path, capsys):
        assert main(["lint", "--codes", "MUT731", str(tmp_path)]) == 2
        assert "MUT731" in capsys.readouterr().err

    def test_explain_every_known_code(self, capsys):
        for code in KNOWN_CODES:
            assert main(["lint", "--explain", code]) == 0
            out = capsys.readouterr().out
            assert out.startswith(f"{code}:")
            assert len(out) > 200

    def test_explain_unknown_code_exits_2(self, capsys):
        assert main(["lint", "--explain", "MUT731"]) == 2
        assert "MUT731" in capsys.readouterr().err

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nowhere")]) == 2
        capsys.readouterr()

    def test_write_baseline_then_default_run_passes(self, tmp_path, capsys):
        self.seed(tmp_path)
        baseline = tmp_path / "baseline.json"
        argv = ["lint", "--baseline", str(baseline), str(tmp_path)]
        assert main(["lint", "--write-baseline", "--baseline", str(baseline),
                     str(tmp_path)]) == 0
        assert "wrote 1 finding(s)" in capsys.readouterr().out
        assert main(argv) == 0
        assert "(1 baselined)" in capsys.readouterr().out
        # The ratchet: fixing the finding makes its entry stale — exit 1
        # until the shrunk baseline is committed.
        (tmp_path / "repro" / "sim" / "clocky.py").write_text(
            "def stamp(sim):\n    return sim.now()\n"
        )
        assert main(argv) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_no_baseline_reports_everything(self, tmp_path, capsys):
        self.seed(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--write-baseline", "--baseline", str(baseline),
                     str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["lint", "--no-baseline", str(tmp_path)]) == 1
        assert "MUT003" in capsys.readouterr().out

    def test_baseline_auto_pickup_from_cwd(self, tmp_path, capsys, monkeypatch):
        self.seed(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--write-baseline", "repro"]) == 0
        capsys.readouterr()
        assert os.path.isfile("lint-baseline.json")
        assert main(["lint", "repro"]) == 0
        assert "(1 baselined)" in capsys.readouterr().out

    def test_unreadable_baseline_exits_2(self, tmp_path, capsys):
        self.seed(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["lint", "--baseline", str(bad), str(tmp_path)]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_github_format_emits_error_annotations(self, tmp_path, capsys):
        path = self.seed(tmp_path)
        assert main(["lint", "--format", "github", "--no-baseline",
                     str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert f"::error file={path},line=4,col=" in out
        assert "title=MUT003::" in out
        assert "1 new finding(s), 0 stale baseline entr(ies)" in out

    def test_github_format_annotates_stale_entries(self, tmp_path, capsys):
        path = tmp_path / "repro" / "controllers" / "fine.py"
        path.parent.mkdir(parents=True)
        path.write_text("def reconcile(client):\n    return client.list('Pod')\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{"file": "controllers/fine.py", "code": "MUT001",
                         "message": "long gone"}],
        }))
        assert main(["lint", "--format", "github", "--baseline", str(baseline),
                     str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "::error title=stale lint baseline entry::" in out
        assert "ratchet" in out

    def test_github_escaping_of_workflow_command_data(self):
        assert _github_escape("50% done\r\nnext") == "50%25 done%0D%0Anext"

    def test_cache_flags_round_trip(self, tmp_path, capsys):
        self.seed(tmp_path)
        cache_dir = tmp_path / "cache"
        argv = ["lint", "--cache-dir", str(cache_dir), "--no-baseline",
                str(tmp_path)]
        assert main(argv) == 1
        assert cache_dir.is_dir() and any(cache_dir.iterdir())
        assert main(argv) == 1  # warm run reports identically
        capsys.readouterr()
        assert main(["lint", "--no-cache", "--no-baseline", str(tmp_path)]) == 1
        capsys.readouterr()


# ---------------------------------------------------------------------------
# The tentpole guarantee: the shipped tree lints clean.
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_the_repro_package_lints_clean(self):
        report = lint_paths([REPRO_PACKAGE])
        assert report.files_checked > 50
        assert report.ok, "\n".join(
            diagnostic.render() for diagnostic in report.diagnostics
        )
