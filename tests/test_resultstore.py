"""Tests for the streaming sharded result store.

The store's contract: every field of an :class:`ExperimentResult` survives
the gzip-JSONL round trip exactly; a truncated (partially written) shard
yields its readable prefix and resume re-runs only what was lost; a store
written by a different campaign configuration is rejected; and a store-backed
campaign produces results identical to the in-memory run at any worker
count while reading at most one shard at a time.
"""

from __future__ import annotations

import json

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.classification import (
    ClientFailure,
    ClientObservations,
    OrchestratorFailure,
    OrchestratorObservations,
)
from repro.core.experiment import ExperimentResult
from repro.core.injector import FaultSpec, FaultType, InjectionChannel
from repro.core.resultstore import (
    ResultStoreMismatchError,
    ShardedResultStore,
    StoredResults,
    result_from_dict,
    result_to_dict,
)
from repro.workloads.workload import WorkloadKind


def _tiny_config(**overrides) -> CampaignConfig:
    defaults = dict(
        workloads=(WorkloadKind.DEPLOY,),
        golden_runs=1,
        max_experiments_per_workload=4,
        seed=3,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def _full_result(index: int = 0) -> ExperimentResult:
    """An ExperimentResult with every field set to a non-default value."""
    fault = FaultSpec(
        channel=InjectionChannel.COMPONENT_TO_APISERVER,
        kind="Deployment",
        field_path="spec.replicas",
        name="webapp-1",
        namespace="default",
        component="kube-controller-manager",
        fault_type=FaultType.DATA_TYPE_SET,
        bit_index=4,
        set_value=0,
        occurrence=2,
    )
    return ExperimentResult(
        workload=WorkloadKind.FAILOVER,
        fault=fault,
        seed=1000 + index,
        injected=True,
        activated=True,
        dropped=True,
        orchestrator_failure=OrchestratorFailure.STA,
        client_failure=ClientFailure.SU,
        client_zscore=3.75,
        orchestrator_observations=OrchestratorObservations(
            final_ready_replicas=5,
            final_desired_replicas=6,
            final_endpoints=4,
            peak_total_pods=20,
            final_total_pods=18,
            pods_created=25,
            pod_count_growing=True,
            network_manager_ready=2,
            dns_ready=1,
            expected_network_manager=3,
            kcm_is_leader=False,
            scheduler_is_leader=False,
            etcd_alarm=True,
            scrape_failures=3,
            app_pod_restarts=2,
            settle_time=41.5,
            final_reachability=0.4,
            unreachable_running_pods=2,
        ),
        client_observations=ClientObservations(
            latency_series=[0.01, 0.0, 0.25],
            error_count=7,
            error_bursts=2,
            total_requests=30,
            unreachable_from_some_point=True,
        ),
        latency_series=[0.01, 0.0, 0.25],
        user_error_count=3,
        user_request_count=9,
        component_error_count=1,
        injection_time=105.25,
        pods_created=25,
        workload_started_at=45.0,
        finished_at=105.0,
    )


# ------------------------------------------------------------------- codec


def test_result_round_trips_every_field_through_json():
    original = _full_result()
    clone = result_from_dict(json.loads(json.dumps(result_to_dict(original))))
    assert clone == original
    assert clone.fault == original.fault
    assert clone.orchestrator_observations == original.orchestrator_observations
    assert clone.client_observations == original.client_observations


def test_golden_result_with_defaults_round_trips():
    # Golden runs have fault=None and unclassified failures.
    original = ExperimentResult(workload=WorkloadKind.DEPLOY, fault=None, seed=7)
    clone = result_from_dict(json.loads(json.dumps(result_to_dict(original))))
    assert clone == original


# ------------------------------------------------------------------- store


def test_store_round_trip_through_gzip_shards(tmp_path):
    store = ShardedResultStore(str(tmp_path / "store"))
    store.open("fp", total=4)
    records = [(index, _full_result(index)) for index in range(4)]
    store.write_shard(records[:2])
    store.write_shard(records[2:])
    assert store.record_count() == 4
    assert list(store.iter_all()) == [result for _, result in records]
    assert store.load_result(3) == records[3][1]
    assert store.compressed_bytes() > 0


def test_store_shard_bytes_are_deterministic(tmp_path):
    # Same results -> byte-identical shard (gzip mtime pinned to 0).
    a = ShardedResultStore(str(tmp_path / "a"))
    b = ShardedResultStore(str(tmp_path / "b"))
    a.open("fp", 2)
    b.open("fp", 2)
    records = [(index, _full_result(index)) for index in range(2)]
    path_a = a.write_shard(records)
    path_b = b.write_shard(records)
    with open(path_a, "rb") as ha, open(path_b, "rb") as hb:
        assert ha.read() == hb.read()
    assert a.results_digest() == b.results_digest()


def test_store_rejects_foreign_fingerprint(tmp_path):
    root = str(tmp_path / "store")
    store = ShardedResultStore(root)
    store.open("fingerprint-a", total=4)
    ShardedResultStore(root).open("fingerprint-a", total=4)  # same plan: fine
    with pytest.raises(ResultStoreMismatchError):
        ShardedResultStore(root).open("fingerprint-b", total=4)


def test_store_prep_round_trip_and_mismatch(tmp_path):
    store = ShardedResultStore(str(tmp_path / "store"))
    prepared = [("baseline-sentinel", ["field-sentinel"])]
    store.save_prep("prep-fp", prepared)
    assert store.load_prep("prep-fp") == prepared
    with pytest.raises(ResultStoreMismatchError):
        store.load_prep("other-fp")
    absent = ShardedResultStore(str(tmp_path / "absent"))
    assert absent.load_prep("prep-fp") is None


def test_truncated_shard_yields_readable_prefix(tmp_path):
    store = ShardedResultStore(str(tmp_path / "store"))
    store.open("fp", total=8)
    path = store.write_shard([(index, _full_result(index)) for index in range(8)])

    # Chop the gzip stream in half: the tail record(s) are lost, the prefix
    # must still parse, and nothing may raise.
    with open(path, "rb") as handle:
        payload = handle.read()
    with open(path, "wb") as handle:
        handle.write(payload[: len(payload) // 2])

    store.refresh()
    completed = set(store.completed_indexes())
    assert completed < set(range(8))  # strictly fewer than written
    for index in sorted(completed):
        assert store.load_result(index) == _full_result(index)


def test_plan_order_iteration_loads_each_shard_once(tmp_path, monkeypatch):
    store = ShardedResultStore(str(tmp_path / "store"))
    store.open("fp", total=6)
    for start in range(0, 6, 2):
        store.write_shard([(index, _full_result(index)) for index in range(start, start + 2)])

    loads: list[str] = []
    original = ShardedResultStore._load_shard

    def counting_load(self, path):
        loads.append(path)
        return original(self, path)

    monkeypatch.setattr(ShardedResultStore, "_load_shard", counting_load)
    view = StoredResults(store, list(range(6)))
    assert len(view) == 6
    assert [result.seed for result in view] == [1000 + index for index in range(6)]
    # Plan-order streaming decompresses each of the 3 shards exactly once:
    # peak memory is one shard, not the campaign.
    assert len(loads) == 3
    assert len(set(loads)) == 3


def test_refresh_only_parses_new_shards(tmp_path, monkeypatch):
    # Shards are immutable once renamed into place, so a refresh (the
    # distributed coordinator and workers poll the store continuously) must
    # decompress only shards it has never seen — not the whole store again.
    store = ShardedResultStore(str(tmp_path / "store"))
    store.open("fp", total=4)
    store.write_shard([(index, _full_result(index)) for index in range(0, 2)])

    parses: list[str] = []
    original = ShardedResultStore._iter_shard_records

    def counting(self, key):
        parses.append(key)
        return original(self, key)

    monkeypatch.setattr(ShardedResultStore, "_iter_shard_records", counting)
    assert set(store.completed_indexes()) == {0, 1}
    assert len(parses) == 1
    store.write_shard([(index, _full_result(index)) for index in range(2, 4)])
    store.refresh()
    assert set(store.completed_indexes()) == {0, 1, 2, 3}
    assert len(parses) == 2  # only the new shard was decompressed
    # The raw-record count rides the same cache: no further decompression.
    assert store.stored_record_count() == 4
    assert len(parses) == 2

    # A shard truncated in place (same path, smaller size) is re-parsed.
    victim = store.shard_paths()[0]
    with open(victim, "rb") as handle:
        payload = handle.read()
    with open(victim, "wb") as handle:
        handle.write(payload[: len(payload) // 2])
    store.refresh()
    assert set(store.completed_indexes()) < {0, 1, 2, 3}
    assert len(parses) == 3


def test_same_size_rewrite_invalidates_the_parse_cache(tmp_path):
    # Regression: the parse cache used to be keyed on file *size* alone, so
    # a same-named shard atomically replaced by equal-size different content
    # (e.g. a truncated shard whose readable prefix parsed, then rewritten)
    # was served stale.  The cache now keys on the full generation token
    # (size + mtime + identity).
    import os

    store = ShardedResultStore(str(tmp_path / "store"))
    store.open("fp", total=4)
    path = store.write_shard([(index, _full_result(index)) for index in range(4)])
    assert set(store.completed_indexes()) == {0, 1, 2, 3}

    # Equal-size, different content: corrupt one byte mid-stream, shortening
    # the readable prefix without changing the file size.
    with open(path, "rb") as handle:
        payload = bytearray(handle.read())
    payload[len(payload) // 2] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(payload)
    stat = os.stat(path)
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))

    store.refresh()
    assert set(store.completed_indexes()) < {0, 1, 2, 3}  # not served stale


def test_record_with_index_but_no_result_ends_the_readable_prefix(tmp_path):
    # Regression: a shard line holding an "index" but no "result" used to
    # yield an empty dict that exploded much later as a KeyError deep inside
    # result_from_dict during aggregation; it is a truncation like any
    # other — the shard ends at the last complete record before it.
    import gzip
    import io

    store = ShardedResultStore(str(tmp_path / "store"))
    store.open("fp", total=3)
    good = json.dumps({"index": 0, "result": result_to_dict(_full_result(0))})
    lost = json.dumps({"index": 1})  # the write died between the two fields
    after = json.dumps({"index": 2, "result": result_to_dict(_full_result(2))})
    buffer = io.BytesIO()
    with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as stream:
        for line in (good, lost, after):
            stream.write(line.encode("utf-8") + b"\n")
    store.transport.put("shards/shard-00000000-00000002.jsonl.gz", buffer.getvalue())

    assert set(store.completed_indexes()) == {0}
    assert store.load_result(0) == _full_result(0)
    assert len(store.results_digest()) == 64  # aggregation no longer explodes
    assert list(store.iter_all()) == [_full_result(0)]


def test_scan_leaves_fresh_shard_in_read_cache(tmp_path, monkeypatch):
    # The distributed coordinator's hot path: each poll scans the store and
    # immediately folds the indexes it just discovered.  The scan must hand
    # its decompressed records to the read cache so the fold doesn't gunzip
    # the same (typically single new) shard a second time.
    store = ShardedResultStore(str(tmp_path / "store"))
    store.open("fp", total=2)
    store.write_shard([(index, _full_result(index)) for index in range(2)])
    store.refresh()
    assert set(store.completed_indexes()) == {0, 1}

    def explode(self, path):
        raise AssertionError("freshly scanned shard was decompressed twice")

    monkeypatch.setattr(ShardedResultStore, "_load_shard", explode)
    assert store.load_result(1) == _full_result(1)


def test_streaming_pass_memory_is_bounded_by_one_shard(tmp_path):
    # 2,000 results across 100 shards: a full streaming pass (the tally all
    # aggregations fold from) must peak far below the materialized campaign,
    # i.e. peak memory tracks the shard size, not the experiment count.
    import tracemalloc

    from repro.core.campaign import CampaignResult

    store = ShardedResultStore(str(tmp_path / "store"))
    store.open("fp", total=2000)
    for start in range(0, 2000, 20):
        store.write_shard([(index, _full_result(index)) for index in range(start, start + 20)])

    tracemalloc.start()
    materialized = list(store.iter_all())
    _, materialized_peak = tracemalloc.get_traced_memory()
    assert len(materialized) == 2000
    del materialized
    tracemalloc.stop()

    store.refresh()
    tracemalloc.start()
    campaign = CampaignResult(results=store.all_results())
    assert campaign.total_experiments() == 2000
    assert campaign.activation_rate() == 1.0
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    # The streaming pass keeps the index map (a few dozen bytes per index)
    # and one decompressed shard; the result payloads — the part that grows
    # with experiment size — never accumulate.  5x headroom keeps the
    # assertion robust across allocator details.
    assert streaming_peak < materialized_peak / 5


# ------------------------------------------------- store-backed campaigns


def test_streaming_campaign_matches_in_memory_and_resumes(tmp_path):
    config = _tiny_config(workers=1, chunk_size=2)
    in_memory = Campaign(config).run()
    root = str(tmp_path / "results")
    streamed = Campaign(config).run(results_dir=root)
    assert list(streamed.results) == in_memory.results
    # StoredResults compares element-wise against plain lists too, so whole
    # CampaignResult comparisons work whether a campaign streamed or not.
    assert streamed.results == in_memory.results
    assert streamed.baselines == in_memory.baselines
    assert streamed.classification_counts() == in_memory.classification_counts()

    # Rerunning the same configuration replays zero completed experiments:
    # progress reports everything done immediately and no batch runs.
    import repro.core.parallel as parallel_module

    calls: list[tuple[int, int]] = []
    original_run_batch = parallel_module._run_batch

    def forbidden(*args, **kwargs):
        raise AssertionError("a completed experiment was re-executed on resume")

    parallel_module._run_batch = forbidden
    try:
        resumed = Campaign(config).run(
            results_dir=root, progress=lambda done, total: calls.append((done, total))
        )
    finally:
        parallel_module._run_batch = original_run_batch
    total = len(in_memory.results)
    assert calls == [(total, total)]
    assert list(resumed.results) == in_memory.results


def test_streaming_campaign_resumes_after_truncated_shard(tmp_path):
    config = _tiny_config(workers=1, chunk_size=2)
    root = str(tmp_path / "results")
    first = Campaign(config).run(results_dir=root)
    expected = list(first.results)

    # Truncate the last shard mid-record, as an interrupted run would.
    store = ShardedResultStore(root)
    victim = store.shard_paths()[-1]
    with open(victim, "rb") as handle:
        payload = handle.read()
    with open(victim, "wb") as handle:
        handle.write(payload[: len(payload) // 2])
    store.refresh()
    survivors = set(store.completed_indexes())
    lost = len(expected) - len(survivors)
    assert lost > 0

    calls: list[tuple[int, int]] = []
    resumed = Campaign(config).run(
        results_dir=root, progress=lambda done, total: calls.append((done, total))
    )
    assert list(resumed.results) == expected
    # The first progress call reports the surviving results; only the lost
    # ones are re-executed.
    assert calls[0] == (len(survivors), len(expected))
    assert calls[-1] == (len(expected), len(expected))


def test_streaming_campaign_rejects_changed_configuration(tmp_path):
    root = str(tmp_path / "results")
    Campaign(_tiny_config(workers=1)).run(results_dir=root)
    with pytest.raises(ResultStoreMismatchError):
        Campaign(_tiny_config(workers=1, golden_runs=2)).run(results_dir=root)


def test_mispointed_results_dir_is_left_untouched(tmp_path):
    # A foreign store whose prep.pkl is missing cannot be recognized as
    # foreign until the campaign fingerprint is computed; the run must still
    # be rejected *before* anything is written into the foreign store.
    import os

    root = str(tmp_path / "results")
    Campaign(_tiny_config(workers=1)).run(results_dir=root)
    os.remove(os.path.join(root, "prep.pkl"))
    shards_before = set(ShardedResultStore(root).shard_paths())
    with pytest.raises(ResultStoreMismatchError):
        Campaign(_tiny_config(workers=1, golden_runs=2)).run(results_dir=root)
    assert not os.path.exists(os.path.join(root, "prep.pkl"))
    assert set(ShardedResultStore(root).shard_paths()) == shards_before


def test_streaming_campaign_skips_prep_on_resume(tmp_path, monkeypatch):
    import repro.core.parallel as parallel_module

    config = _tiny_config(workers=1, max_experiments_per_workload=2)
    root = str(tmp_path / "results")
    first = Campaign(config).run(results_dir=root)

    def explode(*args, **kwargs):
        raise AssertionError("prep must come from the result store on resume")

    monkeypatch.setattr(parallel_module, "_run_golden_job", explode)
    resumed = Campaign(config).run(results_dir=root)
    assert list(resumed.results) == list(first.results)
    assert resumed.baselines == first.baselines
    assert resumed.recorded_fields == first.recorded_fields


# --------------------------------------------------------------------- CLI


def test_cli_campaign_results_dir_and_inspect(tmp_path, capsys):
    from repro.cli import main

    root = str(tmp_path / "results")
    exit_code = main(
        [
            "campaign",
            "--workloads",
            "deploy",
            "--golden-runs",
            "1",
            "--max-experiments",
            "2",
            "--seed",
            "3",
            "--workers",
            "1",
            "--quiet",
            "--results-dir",
            root,
        ]
    )
    assert exit_code == 0
    assert "Campaign summary" in capsys.readouterr().out

    json_path = str(tmp_path / "inspect.json")
    assert main(["inspect", root, "--json", json_path]) == 0
    out = capsys.readouterr().out
    assert "Result store summary" in out
    assert "shards" in out
    with open(json_path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["experiments"] == 2
    assert sum(payload["classification_counts"].values()) == 2
    assert payload["results_digest"] == ShardedResultStore(root).results_digest()


def test_cli_inspect_rejects_non_store_directory(tmp_path, capsys):
    from repro.cli import main

    assert main(["inspect", str(tmp_path)]) == 2
    assert "not a result store" in capsys.readouterr().err


def test_cli_rejects_conflicting_persistence_flags(tmp_path, capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(
            [
                "campaign",
                "--checkpoint",
                str(tmp_path / "x.ckpt"),
                "--results-dir",
                str(tmp_path / "store"),
            ]
        )
    assert "not allowed with argument" in capsys.readouterr().err


def test_cli_names_bad_count_values(capsys):
    from repro.cli import main

    for flags in (["--workers", "0"], ["--chunk-size", "-2"], ["--workers", "lots"]):
        with pytest.raises(SystemExit):
            main(["campaign", *flags])
        err = capsys.readouterr().err
        assert "invalid value" in err
        assert flags[1] in err


# ------------------------------------------------------ batched shard upload


def test_batched_writer_coalesces_batches_into_one_shard(tmp_path):
    store = ShardedResultStore(str(tmp_path))
    store.open("fp", total=8)
    writer = store.batched_writer(3)
    for start in (0, 2, 4):
        writer.write([(start, _full_result(start)), (start + 1, _full_result(start + 1))])
    assert len(store.shard_keys()) == 1  # three batches, one object
    # The fourth batch starts a fresh group.
    writer.write([(6, _full_result(6)), (7, _full_result(7))])
    assert len(store.shard_keys()) == 2

    # A fresh store instance (another process) reads every record exactly
    # once; concatenated gzip members decompress as one stream.
    again = ShardedResultStore(str(tmp_path))
    assert again.record_count() == 8
    assert again.stored_record_count() == 8
    for index in range(8):
        assert again.load_result(index) == _full_result(index)


def test_batched_and_per_batch_layouts_share_the_digest(tmp_path):
    records = [(index, _full_result(index)) for index in range(6)]
    per_batch = ShardedResultStore(str(tmp_path / "per-batch"))
    per_batch.open("fp", total=6)
    for index, result in records:
        per_batch.write_shard([(index, result)])
    batched = ShardedResultStore(str(tmp_path / "batched"))
    batched.open("fp", total=6)
    writer = batched.batched_writer(4)
    for index, result in records:
        writer.write([(index, result)])
    assert len(batched.shard_keys()) < len(per_batch.shard_keys())
    assert batched.results_digest() == per_batch.results_digest()


def test_batched_writer_truncated_tail_keeps_earlier_members(tmp_path):
    # A shard whose last appended member is torn (the worker died mid-append)
    # must still yield every earlier batch: members are self-contained.
    store = ShardedResultStore(str(tmp_path))
    store.open("fp", total=6)
    writer = store.batched_writer(3)
    for start in (0, 2, 4):
        writer.write([(start, _full_result(start)), (start + 1, _full_result(start + 1))])
    (key,) = store.shard_keys()
    payload = store.transport.get(key)
    store.transport.put(key, payload[:-20])  # tear into the last member
    fresh = ShardedResultStore(str(tmp_path))
    completed = set(fresh.completed_indexes())
    assert {0, 1, 2, 3} <= completed
    assert completed < set(range(6))
    for index in sorted(completed):
        assert fresh.load_result(index) == _full_result(index)


def test_batched_writer_never_destroys_a_predecessors_later_members(tmp_path):
    # A lease-losing worker may have appended *more* batches to the shard
    # this batch's name points at ("already written shards always survive").
    # A replaying successor that finds the key taken must keep every record
    # readable there — skipping its own write when the batch is already
    # covered — never overwrite the object down to its own batch.
    store = ShardedResultStore(str(tmp_path))
    store.open("fp", total=4)
    predecessor = store.batched_writer(4)
    predecessor.write([(0, _full_result(0)), (1, _full_result(1))])
    predecessor.write([(2, _full_result(2)), (3, _full_result(3))])  # appended

    replayer = ShardedResultStore(str(tmp_path)).batched_writer(4)
    replayer.write([(0, _full_result(0)), (1, _full_result(1))])  # stale pending

    fresh = ShardedResultStore(str(tmp_path))
    assert fresh.record_count() == 4  # records 2-3 survived the replay
    assert fresh.stored_record_count() == 4  # and nothing was duplicated
    for index in range(4):
        assert fresh.load_result(index) == _full_result(index)


def test_batched_writer_replaces_a_fully_torn_namesake(tmp_path):
    # The legitimate overwrite case: the existing object's readable prefix
    # does not cover this batch (a predecessor died mid-create), so the
    # readable records and the batch are rewritten together, each index once.
    store = ShardedResultStore(str(tmp_path))
    store.open("fp", total=2)
    writer = store.batched_writer(4)
    writer.write([(0, _full_result(0)), (1, _full_result(1))])
    (key,) = store.shard_keys()
    payload = store.transport.get(key)
    store.transport.put(key, payload[: len(payload) // 2])  # torn mid-create

    replayer = ShardedResultStore(str(tmp_path)).batched_writer(4)
    replayer.write([(0, _full_result(0)), (1, _full_result(1))])
    fresh = ShardedResultStore(str(tmp_path))
    assert fresh.record_count() == 2
    assert fresh.stored_record_count() == 2
    for index in range(2):
        assert fresh.load_result(index) == _full_result(index)


def test_batched_writer_abandons_a_replaced_shard_group(tmp_path):
    # If the open shard changes hands (a reclaimed slice re-ran the same
    # indexes), the writer must not append to the impostor — it starts a
    # fresh shard and no record is lost or duplicated.
    store = ShardedResultStore(str(tmp_path))
    store.open("fp", total=4)
    writer = store.batched_writer(10)
    writer.write([(0, _full_result(0)), (1, _full_result(1))])
    (key,) = store.shard_keys()
    store.transport.put(key, store.transport.get(key))  # replaced: new generation
    writer.write([(2, _full_result(2)), (3, _full_result(3))])
    fresh = ShardedResultStore(str(tmp_path))
    assert fresh.record_count() == 4
    assert fresh.stored_record_count() == 4
    assert len(fresh.shard_keys()) == 2
