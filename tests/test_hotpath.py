"""Regression tests for the profiled hot path.

Covers the optimizations of the profile-guided PR: the codec's decode cache
(aliasing and corrupted-bytes bypass), the apiserver's copy semantics under
its snapshot/blob caches, compiled field paths, the store's bucketed watch
dispatch, and the ``repro.cli profile`` subcommand.
"""

import pytest

from repro.apiserver.apiserver import APIServer
from repro.apiserver.client import APIClient
from repro.cli import main
from repro.etcd.store import EtcdStore
from repro.hotpath import COUNTERS
from repro.objects.kinds import make_node, make_pod
from repro.serialization import (
    DecodeError,
    clear_codec_caches,
    compile_path,
    decode,
    decode_shared,
    encode,
    get_path,
    set_path,
)
from repro.sim.engine import Simulation


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_codec_caches()
    yield
    clear_codec_caches()


def _apiserver() -> APIServer:
    return APIServer(Simulation(), EtcdStore())


# ------------------------------------------------------------- decode cache


def test_decode_cache_returns_equal_but_independent_trees():
    data = encode(make_pod("cached", labels={"app": "x"}))
    first = decode(data)
    second = decode(data)
    assert first == second
    assert first is not second
    # Mutating one reader's tree must not leak into the other, nor into any
    # future decode of the same bytes.
    first["metadata"]["labels"]["app"] = "mutated"
    first["spec"]["containers"].append({"name": "rogue"})
    assert second["metadata"]["labels"]["app"] == "x"
    third = decode(data)
    assert third["metadata"]["labels"]["app"] == "x"
    assert third == second


def test_decode_cache_hit_counted():
    COUNTERS.reset()
    data = encode(make_pod("counted"))
    decode(data)
    decode(data)
    decode(data)
    assert COUNTERS.decodes == 1
    assert COUNTERS.decode_cache_hits == 2


def test_corrupted_bytes_bypass_cache_and_raise_every_time():
    data = encode(make_pod("victim"))
    decode(data)  # prime the cache with the healthy bytes
    corrupted = bytearray(data)
    corrupted[1] ^= 0x80  # break the varint framing
    for _ in range(3):
        with pytest.raises(DecodeError):
            decode(bytes(corrupted))
    # The healthy bytes still decode, from cache, unaffected.
    assert decode(data)["metadata"]["name"] == "victim"


def test_decode_shared_returns_shared_tree_on_hit():
    data = encode(make_pod("shared"))
    first = decode_shared(data)
    second = decode_shared(data)
    assert first is second  # the informer-cache read path shares the tree
    # A plain decode of the same bytes still hands out an independent copy.
    copied = decode(data)
    assert copied == first
    assert copied is not first
    copied["metadata"]["name"] = "mutated"
    assert decode_shared(data)["metadata"]["name"] == "shared"


# --------------------------------------------------- apiserver copy semantics


def test_get_returns_independent_copies():
    api = _apiserver()
    api.create("Pod", make_pod("p", labels={"app": "web"}))
    a = api.get("Pod", "p")
    b = api.get("Pod", "p")
    assert a == b and a is not b
    a["metadata"]["labels"]["app"] = "defaced"
    assert api.get("Pod", "p")["metadata"]["labels"]["app"] == "web"


def test_list_returns_independent_copies_even_on_snapshot_hits():
    api = _apiserver()
    api.create("Pod", make_pod("p1", labels={"app": "web"}))
    api.create("Pod", make_pod("p2", labels={"app": "web"}))
    first = api.list("Pod")
    second = api.list("Pod")  # snapshot hit
    assert first == second
    first[0]["metadata"]["labels"]["app"] = "defaced"
    assert all(pod["metadata"]["labels"]["app"] == "web" for pod in api.list("Pod"))


def test_copy_false_reads_share_the_cache_entry():
    api = _apiserver()
    api.create("Pod", make_pod("p"))
    ref_a = api.get("Pod", "p", copy=False)
    ref_b = api.get("Pod", "p", copy=False)
    assert ref_a is ref_b  # informer contract: shared, read-only
    listed = api.list("Pod", copy=False)
    assert listed[0] is ref_a
    # A write replaces the entry wholesale; held refs keep the old snapshot.
    updated = api.get("Pod", "p")
    updated["metadata"]["labels"] = {"app": "v2"}
    api.update("Pod", updated)
    assert ref_a.get("metadata", {}).get("labels") != {"app": "v2"}
    assert api.get("Pod", "p", copy=False)["metadata"]["labels"] == {"app": "v2"}


def test_at_rest_corruption_still_raises_after_restart_with_caches():
    api = _apiserver()
    api.create("Pod", make_pod("p"))
    key = "/registry/pods/default/p"
    api.get("Pod", "p")  # warm every cache layer
    api.store._data[key].value = b"\xff\xff\xff\xff"
    # Masked by the watch cache until restart...
    assert api.get("Pod", "p")["metadata"]["name"] == "p"
    api.restart()
    # ...then the undecodable object is purged (paper §II-D).
    from repro.apiserver.errors import NotFoundError

    with pytest.raises(NotFoundError):
        api.get("Pod", "p")


# ------------------------------------------------------------ field selector


def test_field_selector_matches_bound_pods_only():
    api = _apiserver()
    bound = make_pod("bound", node_name="worker-1")
    api.create("Pod", bound)
    api.create("Pod", make_pod("pending"))
    client = APIClient(api, component="test")
    names = [
        pod["metadata"]["name"]
        for pod in client.list("Pod", field_selector={"spec.nodeName": "worker-1"})
    ]
    assert names == ["bound"]
    # A pod whose spec was corrupted into a scalar (at rest, the injector's
    # channel — validation never sees it) cannot match the selector.
    broken = api.get("Pod", "bound")
    broken["spec"] = "corrupted"
    api.store.put("/registry/pods/default/bound", encode(broken))
    assert client.list("Pod", field_selector={"spec.nodeName": "worker-1"}) == []


# ------------------------------------------------------------ compiled paths


def test_compiled_path_equivalent_to_interpreted_path():
    obj = make_pod("p", node_name="n1", labels={"app": "x"})
    for path in ("metadata.name", "metadata.labels.app", "spec.nodeName"):
        compiled = compile_path(path)
        assert compiled.get(obj) == get_path(obj, path)
        assert compiled.find(obj) == get_path(obj, path)
    missing = compile_path("spec.template.metadata.labels")
    sentinel = object()
    assert missing.find(obj, sentinel) is sentinel
    compile_path("metadata.labels.tier").set(obj, "backend")
    mirror = make_pod("p", node_name="n1", labels={"app": "x"})
    set_path(mirror, "metadata.labels.tier", "backend")
    assert obj["metadata"]["labels"] == mirror["metadata"]["labels"]


# -------------------------------------------------------- store watch buckets


def test_store_skips_event_construction_without_subscribers():
    COUNTERS.reset()
    store = EtcdStore()
    store.put("/registry/pods/default/p", b"x")
    assert COUNTERS.watch_events_skipped == 1
    assert COUNTERS.watch_dispatches == 0


def test_store_dispatches_to_matching_prefix_in_registration_order():
    store = EtcdStore()
    seen: list[tuple[str, str]] = []
    store.watch("/registry/", lambda event: seen.append(("broad", event.key)))
    store.watch("/registry/pods/", lambda event: seen.append(("pods", event.key)))
    store.put("/registry/pods/default/p", b"x")
    store.put("/registry/nodes/n", b"y")
    assert seen == [
        ("broad", "/registry/pods/default/p"),
        ("pods", "/registry/pods/default/p"),
        ("broad", "/registry/nodes/n"),
    ]


# ------------------------------------------------------------- profile smoke


def test_profile_subcommand_reports_counters(capsys, tmp_path):
    report_path = tmp_path / "profile.txt"
    rc = main(
        [
            "profile",
            "--workloads",
            "deploy",
            "--max-experiments",
            "1",
            "--golden-runs",
            "1",
            "--top",
            "5",
            "--quiet",
            "--output",
            str(report_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    for needle in (
        "hot-path counters",
        "encodes",
        "decodes",
        "validations",
        "watch dispatches",
        "cProfile top 5",
    ):
        assert needle in out
    assert report_path.read_text(encoding="utf-8").count("encodes") >= 1
