"""Unit tests for the data store and the Raft quorum layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.etcd.raft import QuorumLost, RaftGroup
from repro.etcd.store import EtcdStore, EventType, StoreQuotaExceeded

# -------------------------------------------------------------------- store


def test_put_get_roundtrip_and_revisions():
    store = EtcdStore()
    rev1 = store.put("/registry/pods/default/a", b"one")
    rev2 = store.put("/registry/pods/default/a", b"two")
    assert rev2 > rev1
    entry = store.get("/registry/pods/default/a")
    assert entry.value == b"two"
    assert entry.version == 2
    assert entry.create_revision == rev1
    assert entry.mod_revision == rev2


def test_get_missing_returns_none():
    assert EtcdStore().get("/missing") is None


def test_range_returns_sorted_prefix_matches():
    store = EtcdStore()
    store.put("/registry/pods/ns/b", b"2")
    store.put("/registry/pods/ns/a", b"1")
    store.put("/registry/nodes/x", b"3")
    keys = [entry.key for entry in store.range("/registry/pods/")]
    assert keys == ["/registry/pods/ns/a", "/registry/pods/ns/b"]


def test_delete_and_delete_prefix():
    store = EtcdStore()
    store.put("/a/1", b"x")
    store.put("/a/2", b"y")
    store.put("/b/1", b"z")
    assert store.delete("/a/1") is True
    assert store.delete("/a/1") is False
    assert store.delete_prefix("/a/") == 1
    assert len(store) == 1


def test_values_must_be_bytes():
    with pytest.raises(TypeError):
        EtcdStore().put("/k", "not-bytes")


def test_watch_receives_put_and_delete_events():
    store = EtcdStore()
    events = []
    store.watch("/registry/pods/", events.append)
    store.put("/registry/pods/ns/a", b"1")
    store.put("/registry/pods/ns/a", b"2")
    store.put("/registry/nodes/x", b"ignored")
    store.delete("/registry/pods/ns/a")
    assert [event.type for event in events] == [EventType.PUT, EventType.PUT, EventType.DELETE]
    assert events[1].prev_value == b"1"
    assert events[2].prev_value == b"2"


def test_cancel_watch():
    store = EtcdStore()
    events = []
    watch_id = store.watch("/", events.append)
    store.cancel_watch(watch_id)
    store.put("/k", b"v")
    assert events == []


def test_quota_exceeded_latches_alarm_and_blocks_writes():
    store = EtcdStore(quota_bytes=100)
    store.put("/a", b"x" * 60)
    with pytest.raises(StoreQuotaExceeded):
        store.put("/b", b"y" * 60)
    assert store.alarm_active
    # Even small writes are refused while the alarm is latched.
    with pytest.raises(StoreQuotaExceeded):
        store.put("/c", b"z")
    store.delete("/a")
    store.compact()
    assert not store.alarm_active
    store.put("/c", b"z")


def test_bytes_used_tracks_updates_and_deletes():
    store = EtcdStore()
    store.put("/a", b"12345")
    assert store.bytes_used == 5
    store.put("/a", b"123")
    assert store.bytes_used == 3
    store.delete("/a")
    assert store.bytes_used == 0


def test_stats_counters():
    store = EtcdStore()
    store.put("/a", b"1")
    store.get("/a")
    store.delete("/a")
    stats = store.stats()
    assert stats["writes"] == 1
    assert stats["deletes"] == 1
    assert stats["reads"] >= 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["put", "delete"]), st.integers(0, 5)), max_size=40))
def test_bytes_used_never_negative_and_matches_contents(operations):
    store = EtcdStore()
    for op, key_index in operations:
        key = f"/k/{key_index}"
        if op == "put":
            try:
                store.put(key, bytes(10 * (key_index + 1)))
            except StoreQuotaExceeded:
                pass
        else:
            store.delete(key)
    expected = sum(len(value) for value in store.snapshot_keys().values())
    assert store.bytes_used == expected
    assert store.bytes_used >= 0


# --------------------------------------------------------------------- raft


def test_raft_requires_members():
    with pytest.raises(ValueError):
        RaftGroup([])


def test_single_member_group_always_has_quorum():
    group = RaftGroup(["etcd-0"])
    assert group.has_quorum()
    assert group.leader == "etcd-0"
    assert group.propose() == 1


def test_three_member_group_tolerates_one_failure():
    group = RaftGroup(["etcd-0", "etcd-1", "etcd-2"])
    group.fail_member("etcd-0")
    assert group.has_quorum()
    assert group.leader == "etcd-1"
    group.propose()
    assert group.term == 2


def test_quorum_lost_with_two_failures():
    group = RaftGroup(["etcd-0", "etcd-1", "etcd-2"])
    group.fail_member("etcd-0")
    group.fail_member("etcd-1")
    assert not group.has_quorum()
    assert group.leader is None
    with pytest.raises(QuorumLost):
        group.propose()
    group.recover_member("etcd-0")
    assert group.has_quorum()
    group.propose()


def test_unknown_member_raises():
    group = RaftGroup(["a"])
    with pytest.raises(KeyError):
        group.fail_member("b")
    with pytest.raises(KeyError):
        group.recover_member("b")


def test_commits_acknowledged_by_healthy_members():
    group = RaftGroup(["a", "b", "c"])
    group.fail_member("c")
    group.propose()
    acks = {member.name: member.acked_proposals for member in group.members}
    assert acks == {"a": 1, "b": 1, "c": 0}
    stats = group.stats()
    assert stats["committed"] == 1
    assert stats["healthy"] == 2
