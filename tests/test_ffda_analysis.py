"""Tests for the FFDA dataset, the post-campaign analyses and the reports."""

from repro.core import ffda
from repro.core.analysis import (
    categorize_field,
    client_impact_analysis,
    critical_field_analysis,
    no_effect_fraction,
    system_wide_fraction,
    user_error_analysis,
)
from repro.core.classification import ClientFailure, OrchestratorFailure
from repro.core.experiment import ExperimentResult
from repro.core.injector import FaultSpec, FaultType, InjectionChannel
from repro.core.report import (
    render_critical_fields,
    render_figure5,
    render_figure6,
    render_figure7,
    render_table1,
    render_table6,
    render_table7,
)
from repro.workloads.workload import WorkloadKind

# -------------------------------------------------------------------- FFDA


def test_incident_dataset_matches_paper_marginals():
    assert ffda.incident_count() == 81
    assert ffda.misconfiguration_count() == 33
    assert ffda.outage_count() == 15
    by_fault = ffda.count_by_fault()
    assert by_fault["Bug"] == 13
    assert ffda.count_by_error()["Communication"] == 19


def test_replicable_majority():
    # The paper reports 54/81 incidents replicable by etcd-level alterations.
    assert ffda.replicable_count() > ffda.incident_count() / 2


def test_coverage_table_structure():
    coverage = ffda.coverage_table()
    assert set(coverage) == {"errors", "failures"}
    markers = {marker for rows in coverage["errors"].values() for _, marker in rows}
    assert "replicable" in markers and "not-replicable" in markers
    failure_markers = {marker for rows in coverage["failures"].values() for _, marker in rows}
    assert "mutiny-only" in failure_markers
    # Every taxonomy subcategory appears exactly once.
    error_rows = sum(len(rows) for rows in coverage["errors"].values())
    assert error_rows == sum(len(subs) for subs in ffda.ERROR_SUBCATEGORIES.values())


def test_incident_records_have_consistent_subcategories():
    for incident in ffda.INCIDENTS:
        assert incident.error_subcategory in ffda.ERROR_SUBCATEGORIES[incident.error]
        if incident.failure in ffda.FAILURE_SUBCATEGORIES:
            assert incident.failure_subcategory in ffda.FAILURE_SUBCATEGORIES[incident.failure]


# ------------------------------------------------------------ field analysis


def _result(of, cf, field_path, kind="Deployment", user_error=False, zscore=0.0):
    fault = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind=kind,
        field_path=field_path,
        fault_type=FaultType.BIT_FLIP,
    )
    result = ExperimentResult(workload=WorkloadKind.DEPLOY, fault=fault, seed=0)
    result.orchestrator_failure = of
    result.client_failure = cf
    result.client_zscore = zscore
    result.user_error_count = 1 if user_error else 0
    result.user_request_count = 3
    result.injected = True
    return result


def test_categorize_field_groups():
    assert categorize_field("metadata.labels.app") == "dependency"
    assert categorize_field("spec.selector.matchLabels.app") == "dependency"
    assert categorize_field("metadata.ownerReferences.0.uid") == "dependency"
    assert categorize_field("metadata.namespace") == "identity"
    assert categorize_field("metadata.uid") == "identity"
    assert categorize_field("status.podIP") == "networking"
    assert categorize_field("spec.ports.0.port") == "networking"
    assert categorize_field("spec.replicas") == "replicas"
    assert categorize_field("spec.template.spec.containers.0.image") == "image/command"
    assert categorize_field(None) == "serialization/message"
    assert categorize_field("spec.priority") == "other"


def test_critical_field_analysis_counts_dependency_share():
    results = [
        _result(OrchestratorFailure.STA, ClientFailure.NSI, "spec.selector.matchLabels.app"),
        _result(OrchestratorFailure.OUT, ClientFailure.SU, "metadata.labels.app", kind="Pod"),
        _result(OrchestratorFailure.NO, ClientFailure.SU, "metadata.namespace"),
        _result(OrchestratorFailure.LER, ClientFailure.NSI, "spec.replicas"),
    ]
    report = critical_field_analysis(results)
    assert report.critical_experiments == 3
    assert report.injections_per_category["dependency"] == 2
    assert report.injections_per_category["identity"] == 1
    assert 0.6 < report.dependency_share < 0.7
    assert len(report.critical_fields) == 3


def test_user_error_analysis_silent_fraction():
    results = [
        _result(OrchestratorFailure.STA, ClientFailure.NSI, "a", user_error=False),
        _result(OrchestratorFailure.STA, ClientFailure.NSI, "b", user_error=True),
        _result(OrchestratorFailure.NO, ClientFailure.NSI, "c", user_error=False),
    ]
    report = user_error_analysis(results)
    assert report.per_failure["Sta"] == (2, 1)
    assert report.per_failure["No"] == (1, 0)
    assert report.silent_failure_fraction == 0.5


def test_client_impact_and_fractions():
    results = [
        _result(OrchestratorFailure.NO, ClientFailure.NSI, "a", zscore=0.1),
        _result(OrchestratorFailure.MOR, ClientFailure.HRT, "b", zscore=4.0),
        _result(OrchestratorFailure.STA, ClientFailure.NSI, "c", zscore=1.0),
        _result(OrchestratorFailure.OUT, ClientFailure.SU, "d", zscore=12.0),
    ]
    impact = client_impact_analysis(results)
    assert impact.summary()["MoR"]["max"] == 4.0
    assert no_effect_fraction(results) == 0.25
    assert system_wide_fraction(results) == 0.5


# ----------------------------------------------------------------- renderers


def test_render_table1_mentions_counts():
    text = render_table1()
    assert "Total incidents: 81" in text
    assert "Human Mistake" in text


def test_render_table6_and_table7():
    rows = [
        {"workload": "deploy", "component": "kube-controller-manager", "injections": 10,
         "propagated": 4, "errors": 2},
    ]
    table6 = render_table6(rows)
    assert "kube-controller-manager" in table6
    table7 = render_table7()
    assert "Wrong label" in table7 and "replicable" in table7


def test_render_figures_and_critical_fields():
    results = [
        _result(OrchestratorFailure.STA, ClientFailure.NSI, "metadata.labels.app", zscore=1.5),
        _result(OrchestratorFailure.NO, ClientFailure.NSI, "spec.replicas", zscore=0.2),
    ]
    assert "Figure 6" in render_figure6(results)
    figure7 = render_figure7(results)
    assert "Figure 7" in figure7 and "silent failures" in figure7
    figure5 = render_figure5([0.05] * 10, [0.0] * 10, zscore=11.0)
    assert "z-score 11.0" in figure5
    critical = render_critical_fields(results)
    assert "dependency" in critical
