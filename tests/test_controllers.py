"""Unit tests for the individual controllers, driven by hand against a
minimal control plane (no other component loops running)."""


from repro.apiserver.client import APIClient
from repro.controllers.daemonset import DaemonSetController, tolerates_taints
from repro.controllers.deployment import DeploymentController, template_hash
from repro.controllers.endpoints import EndpointsController
from repro.controllers.garbage_collector import GarbageCollector
from repro.controllers.leaderelection import LeaderElector
from repro.controllers.namespace import NamespaceController
from repro.controllers.node_lifecycle import NodeLifecycleController
from repro.controllers.replicaset import ReplicaSetController, pod_is_active, pod_is_ready
from repro.controllers.workqueue import RateLimitedQueue
from repro.objects.kinds import (
    make_daemonset,
    make_deployment,
    make_lease,
    make_namespace,
    make_node,
    make_pod,
    make_replicaset,
    make_service,
)
from repro.objects.meta import make_owner_reference


def _client(control_plane, name="kube-controller-manager"):
    return APIClient(control_plane.apiserver, component=name)


def _mark_running(api, pod, ip="10.244.1.1"):
    pod["status"]["phase"] = "Running"
    pod["status"]["ready"] = True
    pod["status"]["podIP"] = ip
    api.update_status("Pod", pod)


def _write_corrupted(apiserver, kind, obj, mutate):
    """Create an object while corrupting it on the Apiserver→etcd channel.

    This is how Mutiny introduces values that the validation layer would
    otherwise reject: the corruption happens after validation, on the way to
    the store.
    """
    from repro.serialization import decode, encode

    def hook(context, data):
        decoded = decode(data)
        mutate(decoded)
        return encode(decoded)

    apiserver.set_etcd_write_hook(hook)
    try:
        return apiserver.create(kind, obj, actor="test")
    finally:
        apiserver.set_etcd_write_hook(None)


# ---------------------------------------------------------------- workqueue


def test_workqueue_dedup_and_fifo():
    queue = RateLimitedQueue()
    queue.add("a")
    queue.add("b")
    queue.add("a")
    assert len(queue) == 2
    assert queue.pop_ready(0.0) == "a"
    assert queue.pop_ready(0.0) == "b"
    assert queue.pop_ready(0.0) is None


def test_workqueue_backoff_grows_exponentially_and_resets():
    queue = RateLimitedQueue(base_delay=1.0, max_delay=8.0)
    observed = []
    for _ in range(5):
        observed.append(queue.add_after_failure("k", 0.0))
        queue.pop_ready(100.0)
    assert observed == [1.0, 2.0, 4.0, 8.0, 8.0]
    queue.forget("k")
    assert queue.failure_count("k") == 0
    assert queue.add_after_failure("k", 0.0) == 1.0


def test_workqueue_respects_not_before():
    queue = RateLimitedQueue(base_delay=5.0)
    queue.add_after_failure("k", now=10.0)
    assert queue.pop_ready(12.0) is None
    assert queue.pop_ready(15.0) == "k"
    assert queue.drain_ready(100.0) == []


# ---------------------------------------------------------- leader election


def test_leader_election_acquire_renew_release(control_plane):
    client = _client(control_plane)
    elector = LeaderElector(control_plane.sim, client, "kube-controller-manager", identity="kcm-a")
    assert elector.try_acquire_or_renew()
    assert elector.is_leader
    other = LeaderElector(control_plane.sim, client, "kube-controller-manager", identity="kcm-b")
    assert not other.try_acquire_or_renew()
    elector.release()
    assert other.try_acquire_or_renew()


def test_leader_election_takes_over_expired_lease(control_plane):
    client = _client(control_plane)
    first = LeaderElector(
        control_plane.sim, client, "kube-scheduler", identity="a", lease_duration=15.0
    )
    first.try_acquire_or_renew()
    control_plane.sim.run_for(20.0)
    second = LeaderElector(control_plane.sim, client, "kube-scheduler", identity="b")
    assert second.try_acquire_or_renew()


def test_leader_election_blocked_by_corrupted_lease(control_plane):
    client = _client(control_plane)
    elector = LeaderElector(control_plane.sim, client, "kube-controller-manager", identity="a")
    elector.try_acquire_or_renew()
    lease = client.get("Lease", "kube-controller-manager", namespace="kube-system")
    lease["spec"]["holderIdentity"] = "someone-else"
    lease["spec"]["renewTime"] = control_plane.sim.now + 10_000.0
    client.update("Lease", lease)
    # The lease now looks held by another identity far into the future:
    # leadership cannot be (re)acquired — a Stall cause in the paper.
    assert not elector.try_acquire_or_renew()


# --------------------------------------------------------------- replicaset


def test_replicaset_scales_up_to_desired(control_plane):
    client = _client(control_plane)
    controller = ReplicaSetController(control_plane.sim, client)
    client.create("ReplicaSet", make_replicaset("web", replicas=3, labels={"app": "web"}))
    controller.sync()
    pods = client.list("Pod")
    assert len(pods) == 3
    assert all(pod["metadata"]["labels"]["app"] == "web" for pod in pods)
    assert all(pod["metadata"]["ownerReferences"] for pod in pods)


def test_replicaset_scales_down_excess_pods(control_plane):
    client = _client(control_plane)
    controller = ReplicaSetController(control_plane.sim, client)
    replicaset = client.create("ReplicaSet", make_replicaset("web", replicas=1, labels={"app": "web"}))
    for index in range(3):
        pod = make_pod(
            f"web-extra-{index}",
            labels={"app": "web"},
            owner_references=[make_owner_reference(replicaset)],
        )
        client.create("Pod", pod)
    controller.sync()
    assert len(client.list("Pod")) == 1


def test_replicaset_adopts_matching_orphans(control_plane):
    client = _client(control_plane)
    controller = ReplicaSetController(control_plane.sim, client)
    client.create("ReplicaSet", make_replicaset("web", replicas=1, labels={"app": "web"}))
    client.create("Pod", make_pod("orphan", labels={"app": "web"}))
    controller.sync()
    pods = client.list("Pod")
    assert len(pods) == 1
    assert pods[0]["metadata"]["ownerReferences"]


def test_replicaset_corrupted_template_labels_spawn_unbounded(control_plane):
    # The uncontrolled-replication mechanism (finding F2): the selector no
    # longer matches the pods created from the template, so every sync
    # creates another batch.
    client = _client(control_plane)
    controller = ReplicaSetController(control_plane.sim, client)
    replicaset = make_replicaset("web", replicas=2, labels={"app": "web"})

    def corrupt(obj):
        obj["spec"]["template"]["metadata"]["labels"]["app"] = "wrong"

    _write_corrupted(control_plane.apiserver, "ReplicaSet", replicaset, corrupt)
    for _ in range(4):
        controller.sync()
    assert len(client.list("Pod")) >= 4 * 2
    assert controller.pods_created >= 8


def test_replicaset_corrupted_replica_value_treated_as_zero(control_plane):
    client = _client(control_plane)
    controller = ReplicaSetController(control_plane.sim, client)
    replicaset = make_replicaset("web", replicas=2, labels={"app": "web"})

    def corrupt(obj):
        obj["spec"]["replicas"] = "two"  # corrupted to a non-integer

    _write_corrupted(control_plane.apiserver, "ReplicaSet", replicaset, corrupt)
    controller.sync()
    # The controller does not crash and creates nothing for the unparseable value.
    assert client.list("Pod") == []
    assert controller.error_count == 0


def test_pod_readiness_helpers():
    pod = make_pod("p")
    assert pod_is_active(pod)
    assert not pod_is_ready(pod)
    pod["status"]["phase"] = "Running"
    pod["status"]["ready"] = True
    assert pod_is_ready(pod)
    pod["metadata"]["deletionTimestamp"] = 1.0
    assert not pod_is_active(pod)


# --------------------------------------------------------------- deployment


def test_deployment_creates_replicaset_and_status(control_plane):
    client = _client(control_plane)
    deploy_controller = DeploymentController(control_plane.sim, client)
    rs_controller = ReplicaSetController(control_plane.sim, client)
    client.create("Deployment", make_deployment("web", replicas=2, labels={"app": "web"}))
    deploy_controller.sync()
    replicasets = client.list("ReplicaSet")
    assert len(replicasets) == 1
    assert replicasets[0]["spec"]["replicas"] == 2
    rs_controller.sync()
    assert len(client.list("Pod")) == 2


def test_deployment_scale_up_propagates(control_plane):
    client = _client(control_plane)
    deploy_controller = DeploymentController(control_plane.sim, client)
    client.create("Deployment", make_deployment("web", replicas=2, labels={"app": "web"}))
    deploy_controller.sync()
    deployment = client.get("Deployment", "web")
    deployment["spec"]["replicas"] = 5
    client.update("Deployment", deployment)
    deploy_controller.sync()
    assert client.list("ReplicaSet")[0]["spec"]["replicas"] == 5


def test_deployment_rolling_update_creates_new_replicaset(control_plane):
    client = _client(control_plane)
    deploy_controller = DeploymentController(control_plane.sim, client)
    client.create("Deployment", make_deployment("web", replicas=2, labels={"app": "web"}))
    deploy_controller.sync()
    deployment = client.get("Deployment", "web")
    deployment["spec"]["template"]["spec"]["containers"][0]["image"] = "repro/flask-app:2.0"
    client.update("Deployment", deployment)
    deploy_controller.sync()
    replicasets = client.list("ReplicaSet")
    assert len(replicasets) == 2
    hashes = {rs["metadata"]["labels"].get("pod-template-hash") for rs in replicasets}
    assert template_hash(deployment["spec"]["template"]) in hashes


def test_template_hash_stable_and_sensitive():
    template = make_deployment("d")["spec"]["template"]
    assert template_hash(template) == template_hash(template)
    other = make_deployment("d")["spec"]["template"]
    other["spec"]["containers"][0]["image"] = "different"
    assert template_hash(template) != template_hash(other)


# ---------------------------------------------------------------- daemonset


def test_daemonset_creates_one_pod_per_node(control_plane):
    client = _client(control_plane)
    controller = DaemonSetController(control_plane.sim, client)
    for index in range(3):
        client.create("Node", make_node(f"worker-{index}"))
    client.create("DaemonSet", make_daemonset("net", labels={"app": "net"}))
    controller.sync()
    pods = client.list("Pod", namespace="kube-system")
    assert len(pods) == 3
    assert {pod["spec"]["nodeName"] for pod in pods} == {"worker-0", "worker-1", "worker-2"}


def test_daemonset_ignores_unschedulable_nodes(control_plane):
    client = _client(control_plane)
    controller = DaemonSetController(control_plane.sim, client)
    node = make_node("worker-0")
    node["spec"]["unschedulable"] = True
    client.create("Node", node)
    client.create("Node", make_node("worker-1"))
    client.create("DaemonSet", make_daemonset("net", labels={"app": "net"}))
    controller.sync()
    assert len(client.list("Pod", namespace="kube-system")) == 1


def test_daemonset_corrupted_selector_spawns_every_sync(control_plane):
    client = _client(control_plane)
    controller = DaemonSetController(control_plane.sim, client)
    client.create("Node", make_node("worker-0"))
    daemonset = make_daemonset("net", labels={"app": "net"})

    def corrupt(obj):
        obj["spec"]["selector"]["matchLabels"]["app"] = "wrong"

    _write_corrupted(control_plane.apiserver, "DaemonSet", daemonset, corrupt)
    for _ in range(3):
        controller.sync()
    assert len(client.list("Pod", namespace="kube-system")) == 3


def test_tolerations_matching():
    taint = {"key": "node.kubernetes.io/unreachable", "effect": "NoExecute"}
    assert tolerates_taints({"tolerations": [{"operator": "Exists"}]}, [taint])
    assert not tolerates_taints({"tolerations": []}, [taint])
    assert tolerates_taints({"tolerations": []}, [])


# ---------------------------------------------------------------- endpoints


def test_endpoints_follow_ready_pods(control_plane):
    client = _client(control_plane)
    controller = EndpointsController(control_plane.sim, client)
    client.create("Service", make_service("web", selector={"app": "web"}))
    ready = make_pod("ready", labels={"app": "web"})
    client.create("Pod", ready)
    _mark_running(control_plane.apiserver, client.get("Pod", "ready"), ip="10.244.1.5")
    client.create("Pod", make_pod("not-ready", labels={"app": "web"}))
    client.create("Pod", make_pod("other", labels={"app": "db"}))
    controller.sync()
    endpoints = client.get("Endpoints", "web")
    addresses = endpoints["subsets"][0]["addresses"]
    assert [entry["ip"] for entry in addresses] == ["10.244.1.5"]
    # A pod becoming ready later is added on the next sync.
    _mark_running(control_plane.apiserver, client.get("Pod", "not-ready"), ip="10.244.1.6")
    controller.sync()
    endpoints = client.get("Endpoints", "web")
    assert len(endpoints["subsets"][0]["addresses"]) == 2


def test_endpoints_left_stale_when_selector_corrupted(control_plane):
    client = _client(control_plane)
    controller = EndpointsController(control_plane.sim, client)
    client.create("Service", make_service("web", selector={"app": "web"}))
    client.create("Pod", make_pod("p", labels={"app": "web"}))
    _mark_running(control_plane.apiserver, client.get("Pod", "p"))
    controller.sync()
    assert client.get("Endpoints", "web")["subsets"][0]["addresses"]
    service = client.get("Service", "web")
    service["spec"]["selector"] = None
    client.update("Service", service)
    client.delete("Pod", "p")
    controller.sync()
    # The controller no longer manages the endpoints: the stale address stays.
    assert client.get("Endpoints", "web")["subsets"][0]["addresses"]


# ----------------------------------------------------------- node lifecycle


def _heartbeat(client, node_name, when):
    lease = make_lease(node_name, namespace="kube-node-lease", holder=node_name)
    lease["spec"]["renewTime"] = when
    try:
        existing = client.get("Lease", node_name, namespace="kube-node-lease")
        existing["spec"]["renewTime"] = when
        client.update("Lease", existing)
    except Exception:  # noqa: BLE001
        client.create("Lease", lease)


def test_node_marked_not_ready_without_heartbeat(control_plane):
    client = _client(control_plane)
    controller = NodeLifecycleController(control_plane.sim, client, grace_period=40.0)
    client.create("Node", make_node("worker-0"))
    _heartbeat(client, "worker-0", when=0.0)
    control_plane.sim.run_for(100.0)
    controller.sync()
    node = client.get("Node", "worker-0", namespace=None)
    ready = [c for c in node["status"]["conditions"] if c["type"] == "Ready"][0]
    assert ready["status"] == "False"


def test_pods_evicted_after_eviction_timeout(control_plane):
    client = _client(control_plane)
    controller = NodeLifecycleController(
        control_plane.sim, client, grace_period=10.0, eviction_timeout=20.0
    )
    client.create("Node", make_node("worker-0"))
    client.create("Node", make_node("worker-1"))
    _heartbeat(client, "worker-0", when=0.0)
    pod = make_pod("app", node_name="worker-0")
    client.create("Pod", pod)
    control_plane.sim.run_for(15.0)
    _heartbeat(client, "worker-1", when=control_plane.sim.now)
    controller.sync()  # worker-0 marked NotReady, not yet evicted
    assert client.list("Pod")
    control_plane.sim.run_for(25.0)
    _heartbeat(client, "worker-1", when=control_plane.sim.now)
    controller.sync()
    assert client.list("Pod") == []
    assert controller.evictions == 1


def test_full_disruption_mode_stops_evictions(control_plane):
    client = _client(control_plane)
    controller = NodeLifecycleController(
        control_plane.sim, client, grace_period=10.0, eviction_timeout=20.0
    )
    client.create("Node", make_node("worker-0"))
    client.create("Node", make_node("worker-1"))
    client.create("Pod", make_pod("app", node_name="worker-0"))
    control_plane.sim.run_for(60.0)
    controller.sync()
    controller.sync()
    # Every node is unhealthy (no heartbeats at all): evictions are suspended.
    assert controller.full_disruption_mode
    assert client.list("Pod")


def test_noexecute_taint_evicts_intolerant_pods(control_plane):
    client = _client(control_plane)
    controller = NodeLifecycleController(control_plane.sim, client)
    node = make_node("worker-0")
    node["spec"]["taints"] = [{"key": "failure", "effect": "NoExecute"}]
    client.create("Node", node)
    _heartbeat(client, "worker-0", when=control_plane.sim.now)
    client.create("Pod", make_pod("app", node_name="worker-0"))
    tolerant = make_pod("agent", node_name="worker-0", tolerations=[{"operator": "Exists"}])
    client.create("Pod", tolerant)
    controller.sync()
    remaining = [pod["metadata"]["name"] for pod in client.list("Pod")]
    assert remaining == ["agent"]


# ------------------------------------------------- namespace + garbage collection


def test_namespace_controller_deletes_contents_of_missing_namespace(control_plane):
    client = _client(control_plane)
    controller = NamespaceController(control_plane.sim, client)
    client.create("Namespace", make_namespace("team-a"))
    client.create("Pod", make_pod("p", namespace="team-a"))
    controller.sync()
    assert client.list("Pod", namespace="team-a")
    client.delete("Namespace", "team-a", namespace=None)
    controller.sync()
    assert client.list("Pod", namespace="team-a") == []
    assert controller.cascaded_deletes == 1


def test_namespace_controller_spares_system_namespaces(control_plane):
    client = _client(control_plane)
    controller = NamespaceController(control_plane.sim, client)
    client.create("Pod", make_pod("p", namespace="kube-system"))
    controller.sync()
    assert client.list("Pod", namespace="kube-system")


def test_garbage_collector_removes_orphans_of_deleted_owner(control_plane):
    client = _client(control_plane)
    collector = GarbageCollector(control_plane.sim, client)
    replicaset = client.create("ReplicaSet", make_replicaset("web", replicas=1, labels={"app": "web"}))
    pod = make_pod("web-1", labels={"app": "web"}, owner_references=[make_owner_reference(replicaset)])
    client.create("Pod", pod)
    collector.sync()
    assert client.list("Pod")
    client.delete("ReplicaSet", "web")
    collector.sync()
    assert client.list("Pod") == []
    assert collector.collected == 1


def test_garbage_collector_keeps_objects_with_live_owner_even_if_labels_corrupted(control_plane):
    client = _client(control_plane)
    collector = GarbageCollector(control_plane.sim, client)
    replicaset = client.create("ReplicaSet", make_replicaset("web", replicas=1, labels={"app": "web"}))
    pod = make_pod("web-1", labels={"app": "corrupted"}, owner_references=[make_owner_reference(replicaset)])
    client.create("Pod", pod)
    collector.sync()
    # Corrupted labels orphan the pod from the selector's point of view, but
    # the GC does not remove it because its owner still exists — the extra
    # resource consumption of the paper's MoR failures.
    assert client.list("Pod")
