"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import Simulation, SimulationError
from repro.sim.rng import DeterministicRNG


def test_events_run_in_time_order():
    sim = Simulation()
    order = []
    sim.call_at(2.0, lambda: order.append("b"))
    sim.call_at(1.0, lambda: order.append("a"))
    sim.call_at(3.0, lambda: order.append("c"))
    sim.run_until(10.0)
    assert order == ["a", "b", "c"]


def test_same_time_events_run_in_schedule_order():
    sim = Simulation()
    order = []
    sim.call_at(1.0, lambda: order.append(1))
    sim.call_at(1.0, lambda: order.append(2))
    sim.call_at(1.0, lambda: order.append(3))
    sim.run_until(1.0)
    assert order == [1, 2, 3]


def test_run_until_stops_at_deadline():
    sim = Simulation()
    fired = []
    sim.call_at(5.0, lambda: fired.append("early"))
    sim.call_at(15.0, lambda: fired.append("late"))
    sim.run_until(10.0)
    assert fired == ["early"]
    assert sim.now == 10.0


def test_run_for_advances_clock_even_without_events():
    sim = Simulation()
    sim.run_for(7.5)
    assert sim.now == 7.5


def test_call_after_relative_delay():
    sim = Simulation()
    times = []
    sim.call_after(3.0, lambda: times.append(sim.now))
    sim.run_for(5.0)
    assert times == [3.0]


def test_cannot_schedule_in_the_past():
    sim = Simulation()
    sim.run_for(10.0)
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_negative_delay_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.call_after(-1.0, lambda: None)


def test_cancelled_event_does_not_run():
    sim = Simulation()
    fired = []
    event = sim.call_at(1.0, lambda: fired.append(True))
    event.cancel()
    sim.run_until(5.0)
    assert fired == []


def test_recurring_task_fires_periodically():
    sim = Simulation()
    times = []
    sim.call_every(2.0, lambda: times.append(sim.now), delay=2.0)
    sim.run_until(9.0)
    assert times == [2.0, 4.0, 6.0, 8.0]


def test_recurring_task_stop():
    sim = Simulation()
    times = []
    task = sim.call_every(1.0, lambda: times.append(sim.now), delay=1.0)
    sim.run_until(3.0)
    task.stop()
    sim.run_until(10.0)
    assert times == [1.0, 2.0, 3.0]


def test_recurring_task_invalid_period():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.call_every(0.0, lambda: None)


def test_max_events_bounds_execution():
    sim = Simulation()
    count = []
    for _ in range(100):
        sim.call_at(1.0, lambda: count.append(1))
    sim.run_until(1.0, max_events=10)
    assert len(count) == 10
    assert sim.pending_events == 90


def test_events_scheduled_during_execution_run_same_pass():
    sim = Simulation()
    order = []

    def first():
        order.append("first")
        sim.call_after(1.0, lambda: order.append("second"))

    sim.call_at(1.0, first)
    sim.run_until(5.0)
    assert order == ["first", "second"]


def test_step_returns_false_when_empty():
    sim = Simulation()
    assert sim.step() is False
    sim.call_at(1.0, lambda: None)
    assert sim.step() is True
    assert sim.events_executed == 1


def test_rng_attached():
    sim = Simulation(rng=DeterministicRNG(5))
    assert sim.rng.seed == 5
