"""Unit tests for the virtual cluster network and the metrics collector."""


from repro.monitoring.metrics import MetricsCollector
from repro.network.network import NETWORK_CONFIGMAP, ClusterNetwork
from repro.objects.kinds import (
    make_configmap,
    make_deployment,
    make_endpoints,
    make_node,
    make_pod,
    make_replicaset,
    make_service,
)


def _running_pod(api, name, labels, node, ip, namespace="default"):
    pod = make_pod(name, namespace=namespace, labels=labels, node_name=node)
    pod["status"]["phase"] = "Running"
    pod["status"]["ready"] = True
    pod["status"]["podIP"] = ip
    return api.create("Pod", pod, actor="test")


def _network_fixture(control_plane, nodes=("worker-1",)):
    api = control_plane.apiserver
    api.create(
        "ConfigMap",
        make_configmap(NETWORK_CONFIGMAP, namespace="kube-system", data={"network": "10.244.0.0/16"}),
        actor="test",
    )
    for index, node in enumerate(nodes):
        api.create("Node", make_node(node), actor="test")
        _running_pod(
            api,
            f"net-{node}",
            {"app": "kube-network-manager"},
            node,
            f"10.244.{index}.2",
            namespace="kube-system",
        )
    network = ClusterNetwork(control_plane.sim, api)
    network.sync()
    return api, network


def test_pods_programmed_only_with_network_manager_present(control_plane):
    api, network = _network_fixture(control_plane, nodes=("worker-1", "worker-2"))
    _running_pod(api, "app-1", {"app": "web"}, "worker-1", "10.244.0.10")
    network.sync()
    assert network.pod_reachable(api.get("Pod", "app-1"))
    # A pod on a node with no network manager never gets routes.
    api.create("Node", make_node("worker-3"), actor="test")
    _running_pod(api, "app-2", {"app": "web"}, "worker-3", "10.244.3.10")
    network.sync()
    assert not network.pod_reachable(api.get("Pod", "app-2"))


def test_existing_routes_survive_network_manager_failure(control_plane):
    # Stall semantics: already-programmed pods keep working, new ones do not.
    api, network = _network_fixture(control_plane)
    _running_pod(api, "old", {"app": "web"}, "worker-1", "10.244.0.10")
    network.sync()
    api.delete("Pod", "net-worker-1", namespace="kube-system", actor="test")
    _running_pod(api, "new", {"app": "web"}, "worker-1", "10.244.0.11")
    network.sync()
    assert network.pod_reachable(api.get("Pod", "old"))
    assert not network.pod_reachable(api.get("Pod", "new"))


def test_configmap_corruption_tears_down_all_routes(control_plane):
    # Outage semantics: a corrupted network configuration drops every route.
    api, network = _network_fixture(control_plane)
    _running_pod(api, "app-1", {"app": "web"}, "worker-1", "10.244.0.10")
    network.sync()
    assert network.pod_reachable(api.get("Pod", "app-1"))
    config = api.get("ConfigMap", NETWORK_CONFIGMAP, namespace="kube-system")
    config["data"]["network"] = ""
    api.update("ConfigMap", config, actor="mutiny")
    network.sync()
    assert not network.pod_reachable(api.get("Pod", "app-1"))
    assert network.teardowns == 1


def test_dns_availability_follows_dns_pods(control_plane):
    api, network = _network_fixture(control_plane)
    assert not network.dns_available()
    _running_pod(
        api, "coredns-1", {"k8s-app": "kube-dns"}, "worker-1", "10.244.0.53", namespace="kube-system"
    )
    network.sync()
    assert network.dns_available()
    api.delete("Pod", "coredns-1", namespace="kube-system", actor="test")
    network.sync()
    assert not network.dns_available()


def test_service_requests_load_balance_over_reachable_backends(control_plane):
    api, network = _network_fixture(control_plane)
    api.create("Service", make_service("webapp", selector={"app": "web"}), actor="test")
    _running_pod(api, "w1", {"app": "web"}, "worker-1", "10.244.0.10")
    _running_pod(api, "w2", {"app": "web"}, "worker-1", "10.244.0.11")
    api.create(
        "Endpoints",
        make_endpoints("webapp", addresses=[{"ip": "10.244.0.10"}, {"ip": "10.244.0.11"}]),
        actor="test",
    )
    network.sync()
    outcomes = [network.request("webapp", expected_backends=2) for _ in range(4)]
    assert all(outcome.success for outcome in outcomes)
    assert {outcome.backend_ip for outcome in outcomes} == {"10.244.0.10", "10.244.0.11"}


def test_service_request_fails_without_endpoints_or_service(control_plane):
    api, network = _network_fixture(control_plane)
    assert network.request("missing").error == "service-not-found"
    api.create("Service", make_service("webapp", selector={"app": "web"}), actor="test")
    assert network.request("webapp").error == "no-endpoints"


def test_request_latency_grows_when_backends_are_missing(control_plane):
    api, network = _network_fixture(control_plane)
    api.create("Service", make_service("webapp", selector={"app": "web"}), actor="test")
    _running_pod(api, "w1", {"app": "web"}, "worker-1", "10.244.0.10")
    api.create("Endpoints", make_endpoints("webapp", addresses=[{"ip": "10.244.0.10"}]), actor="test")
    network.sync()
    normal = network.request("webapp", expected_backends=1)
    degraded = network.request("webapp", expected_backends=4)
    assert degraded.latency > normal.latency


def test_dns_requirement_fails_requests_when_dns_down(control_plane):
    api, network = _network_fixture(control_plane)
    api.create("Service", make_service("webapp", selector={"app": "web"}), actor="test")
    outcome = network.request("webapp", use_dns=True)
    assert not outcome.success
    assert outcome.error == "dns-resolution-failed"


# ------------------------------------------------------------------ metrics


def test_metrics_collector_scrapes_cluster_state(control_plane):
    api = control_plane.apiserver
    collector = MetricsCollector(control_plane.sim, api)
    api.create("Deployment", make_deployment("web", replicas=2), actor="test")
    replicaset = make_replicaset("web-1", replicas=2, labels={"app": "web"})
    replicaset["status"]["readyReplicas"] = 1
    api.create("ReplicaSet", replicaset, actor="test")
    api.create("Node", make_node("worker-1"), actor="test")
    _running_pod(api, "p1", {"app": "web"}, "worker-1", "10.244.0.10")
    api.create(
        "Endpoints", make_endpoints("web", addresses=[{"ip": "10.244.0.10"}]), actor="test"
    )
    sample = collector.scrape()
    assert sample.replicasets["default/web-1"] == (1, 2)
    assert sample.deployments["default/web"] == (0, 2)
    assert sample.endpoints["default/web"] == 1
    assert sample.total_pods == 1
    assert sample.nodes_ready == 1
    assert sample.pods_by_phase.get("Running") == 1


def test_metrics_collector_counts_cumulative_pod_creations(control_plane):
    api = control_plane.apiserver
    collector = MetricsCollector(control_plane.sim, api)
    api.create("Node", make_node("worker-1"), actor="test")
    _running_pod(api, "a", {"app": "web"}, "worker-1", "10.244.0.10")
    collector.scrape()
    api.delete("Pod", "a", actor="test")
    _running_pod(api, "b", {"app": "web"}, "worker-1", "10.244.0.11")
    sample = collector.scrape()
    assert sample.total_pods == 1
    assert sample.pods_created_cumulative == 2


def test_metrics_collector_marks_scrape_failure_when_apiserver_down(control_plane):
    api = control_plane.apiserver
    collector = MetricsCollector(control_plane.sim, api)
    api.healthy = False
    sample = collector.scrape()
    assert sample.scrape_failed
    api.healthy = True


def test_metrics_series_accessor(control_plane):
    api = control_plane.apiserver
    collector = MetricsCollector(control_plane.sim, api)
    replicaset = make_replicaset("web-1", replicas=2, labels={"app": "web"})
    api.create("ReplicaSet", replicaset, actor="test")
    collector.scrape()
    control_plane.sim.run_for(3.0)
    collector.scrape()
    series = collector.series_for_replicaset("default/web-1")
    assert len(series) == 2
    assert collector.last_sample() is collector.samples[-1]
