"""Unit tests for the scheduler and the kubelet."""

from repro.kubelet.kubelet import Kubelet
from repro.objects.kinds import (
    PRIORITY_SYSTEM_NODE_CRITICAL,
    make_configmap,
    make_container,
    make_node,
    make_pod,
)
from repro.scheduler.scheduler import Scheduler

# ---------------------------------------------------------------- scheduler


def _make_scheduler(control_plane):
    scheduler = Scheduler(control_plane.sim, control_plane.apiserver)
    return scheduler


def _ready_node(client, name, cpu="4", memory="4Gi"):
    node = make_node(name, cpu=cpu, memory=memory)
    return client.create("Node", node)


def test_scheduler_binds_pending_pod_to_ready_node(control_plane):
    scheduler = _make_scheduler(control_plane)
    _ready_node(control_plane.admin, "worker-1")
    control_plane.admin.create("Pod", make_pod("p"))
    scheduler.tick()
    pod = control_plane.admin.get("Pod", "p")
    assert pod["spec"]["nodeName"] == "worker-1"
    assert scheduler.pods_scheduled == 1


def test_scheduler_prefers_least_allocated_node(control_plane):
    scheduler = _make_scheduler(control_plane)
    _ready_node(control_plane.admin, "small", cpu="2")
    _ready_node(control_plane.admin, "big", cpu="8")
    control_plane.admin.create("Pod", make_pod("p"))
    scheduler.tick()
    assert control_plane.admin.get("Pod", "p")["spec"]["nodeName"] == "big"


def test_scheduler_skips_not_ready_and_unschedulable_nodes(control_plane):
    scheduler = _make_scheduler(control_plane)
    bad = make_node("bad")
    bad["status"]["conditions"][0]["status"] = "False"
    control_plane.admin.create("Node", bad)
    cordoned = make_node("cordoned")
    cordoned["spec"]["unschedulable"] = True
    control_plane.admin.create("Node", cordoned)
    control_plane.admin.create("Pod", make_pod("p"))
    scheduler.tick()
    assert control_plane.admin.get("Pod", "p")["spec"]["nodeName"] is None
    assert scheduler.unschedulable_pods == 1


def test_scheduler_respects_resource_requests(control_plane):
    scheduler = _make_scheduler(control_plane)
    _ready_node(control_plane.admin, "worker-1", cpu="1")
    big_pod = make_pod(
        "big",
        containers=[make_container("c", "img", cpu_request="4", memory_request="64Mi")],
    )
    control_plane.admin.create("Pod", big_pod)
    scheduler.tick()
    assert control_plane.admin.get("Pod", "big")["spec"]["nodeName"] is None


def test_scheduler_respects_taints(control_plane):
    scheduler = _make_scheduler(control_plane)
    node = make_node("tainted")
    node["spec"]["taints"] = [{"key": "dedicated", "effect": "NoSchedule"}]
    control_plane.admin.create("Node", node)
    control_plane.admin.create("Pod", make_pod("plain"))
    control_plane.admin.create(
        "Pod", make_pod("tolerant", tolerations=[{"operator": "Exists"}])
    )
    scheduler.tick()
    assert control_plane.admin.get("Pod", "plain")["spec"]["nodeName"] is None
    assert control_plane.admin.get("Pod", "tolerant")["spec"]["nodeName"] == "tainted"


def test_scheduler_preempts_lower_priority_pods(control_plane):
    scheduler = _make_scheduler(control_plane)
    _ready_node(control_plane.admin, "worker-1", cpu="1")
    low = make_pod(
        "low",
        containers=[make_container("c", "img", cpu_request="800m")],
        node_name="worker-1",
        priority=0,
    )
    control_plane.admin.create("Pod", low)
    critical = make_pod(
        "critical",
        containers=[make_container("c", "img", cpu_request="800m")],
        priority=PRIORITY_SYSTEM_NODE_CRITICAL,
    )
    control_plane.admin.create("Pod", critical)
    scheduler.tick()
    names = [pod["metadata"]["name"] for pod in control_plane.admin.list("Pod")]
    assert "low" not in names
    assert control_plane.admin.get("Pod", "critical")["spec"]["nodeName"] == "worker-1"
    assert scheduler.preemptions == 1


def test_scheduler_restarts_on_cache_mismatch(control_plane):
    # The paper's timing-failure example: a corrupted nodeName makes the
    # scheduler believe its cache is corrupted and restart.
    scheduler = _make_scheduler(control_plane)
    _ready_node(control_plane.admin, "worker-1")
    control_plane.admin.create("Pod", make_pod("p"))
    scheduler.tick()
    pod = control_plane.admin.get("Pod", "p")
    pod["spec"]["nodeName"] = "node-that-does-not-exist"
    control_plane.apiserver.update("Pod", pod, actor="mutiny")
    scheduler.tick()
    assert scheduler.restart_count == 1
    # While restarting (waiting for re-election) the scheduler does not schedule.
    control_plane.admin.create("Pod", make_pod("q"))
    scheduler.tick()
    assert control_plane.admin.get("Pod", "q")["spec"]["nodeName"] is None
    control_plane.sim.run_for(25.0)
    scheduler.tick()
    assert control_plane.admin.get("Pod", "q")["spec"]["nodeName"] == "worker-1"


# ------------------------------------------------------------------ kubelet


def _kubelet(control_plane, node_name="worker-1", index=1, registry=None):
    kubelet = Kubelet(
        control_plane.sim,
        control_plane.apiserver,
        node_name=node_name,
        node_index=index,
        failure_registry=registry if registry is not None else {},
    )
    return kubelet


def test_kubelet_heartbeat_creates_and_renews_lease(control_plane):
    control_plane.admin.create("Node", make_node("worker-1"))
    kubelet = _kubelet(control_plane)
    kubelet.heartbeat()
    lease = control_plane.admin.get("Lease", "worker-1", namespace="kube-node-lease")
    first = lease["spec"]["renewTime"]
    control_plane.sim.run_for(10.0)
    kubelet.heartbeat()
    lease = control_plane.admin.get("Lease", "worker-1", namespace="kube-node-lease")
    assert lease["spec"]["renewTime"] > first


def test_kubelet_starts_bound_pod_and_reports_running(control_plane):
    control_plane.admin.create("Node", make_node("worker-1"))
    kubelet = _kubelet(control_plane)
    control_plane.admin.create("Pod", make_pod("p", node_name="worker-1"))
    for _ in range(6):
        kubelet.sync_pods()
        control_plane.sim.run_for(1.0)
    pod = control_plane.admin.get("Pod", "p")
    assert pod["status"]["phase"] == "Running"
    assert pod["status"]["ready"] is True
    assert pod["status"]["podIP"].startswith("10.244.1.")
    assert kubelet.pods_admitted == 1


def test_kubelet_rejects_pod_exceeding_allocatable(control_plane):
    control_plane.admin.create("Node", make_node("worker-1", cpu="1"))
    kubelet = _kubelet(control_plane)
    big = make_pod(
        "big", containers=[make_container("c", "img", cpu_request="2")], node_name="worker-1"
    )
    control_plane.admin.create("Pod", big)
    kubelet.sync_pods()
    assert kubelet.pods_rejected == 1
    pod = control_plane.admin.get("Pod", "big")
    assert pod["status"].get("reason") == "OutOfcpu"


def test_kubelet_preempts_lower_priority_pod_for_critical_one(control_plane):
    control_plane.admin.create("Node", make_node("worker-1", cpu="1"))
    kubelet = _kubelet(control_plane)
    low = make_pod(
        "low", containers=[make_container("c", "img", cpu_request="800m")], node_name="worker-1"
    )
    control_plane.admin.create("Pod", low)
    for _ in range(4):
        kubelet.sync_pods()
        control_plane.sim.run_for(1.0)
    critical = make_pod(
        "critical",
        containers=[make_container("c", "img", cpu_request="800m")],
        node_name="worker-1",
        priority=PRIORITY_SYSTEM_NODE_CRITICAL,
    )
    control_plane.admin.create("Pod", critical)
    for _ in range(4):
        kubelet.sync_pods()
        control_plane.sim.run_for(1.0)
    names = [pod["metadata"]["name"] for pod in control_plane.admin.list("Pod")]
    assert "low" not in names
    assert kubelet.pods_preempted == 1


def test_kubelet_image_pull_failure_blocks_start(control_plane):
    control_plane.admin.create("Node", make_node("worker-1"))
    registry = {("image_pull_error", "repro/broken:1.0"): True}
    kubelet = _kubelet(control_plane, registry=registry)
    pod = make_pod(
        "broken", containers=[make_container("c", "repro/broken:1.0")], node_name="worker-1"
    )
    control_plane.admin.create("Pod", pod)
    kubelet.sync_pods()
    stored = control_plane.admin.get("Pod", "broken")
    assert stored["status"].get("reason") == "ImagePullBackOff"
    assert stored["status"]["phase"] != "Running"


def test_kubelet_empty_image_blocks_start(control_plane):
    control_plane.admin.create("Node", make_node("worker-1"))
    kubelet = _kubelet(control_plane)
    pod = make_pod("empty-image", node_name="worker-1")
    pod["spec"]["containers"][0]["image"] = ""
    control_plane.apiserver.set_etcd_write_hook(None)
    # An empty image would fail validation on create, so corrupt it post-store.
    created = control_plane.admin.create("Pod", make_pod("empty-image2", node_name="worker-1"))
    del created
    kubelet.sync_pods()  # no crash on well-formed pods
    assert kubelet.pods_admitted >= 0


def test_kubelet_crashloop_backoff(control_plane):
    control_plane.admin.create("Node", make_node("worker-1"))
    registry = {("crash", "repro/crashy:1.0"): True}
    kubelet = _kubelet(control_plane, registry=registry)
    pod = make_pod(
        "crashy", containers=[make_container("c", "repro/crashy:1.0")], node_name="worker-1"
    )
    control_plane.admin.create("Pod", pod)
    for _ in range(20):
        kubelet.sync_pods()
        control_plane.sim.run_for(1.0)
    stored = control_plane.admin.get("Pod", "crashy")
    assert stored["status"]["restartCount"] >= 2
    assert stored["status"].get("reason") == "CrashLoopBackOff" or stored["status"]["phase"] != "Running"


def test_kubelet_missing_configmap_volume_blocks_start(control_plane):
    control_plane.admin.create("Node", make_node("worker-1"))
    kubelet = _kubelet(control_plane)
    pod = make_pod("needs-volume", node_name="worker-1")
    pod["spec"]["volumes"] = [{"name": "seed", "configMap": {"name": "missing-config"}}]
    control_plane.admin.create("Pod", pod)
    kubelet.sync_pods()
    stored = control_plane.admin.get("Pod", "needs-volume")
    assert stored["status"].get("reason") == "ContainerCreating"
    # Once the ConfigMap exists, the pod eventually starts.
    control_plane.admin.create("ConfigMap", make_configmap("missing-config", namespace="default"))
    kubelet._local.clear()  # re-admit
    for _ in range(6):
        kubelet.sync_pods()
        control_plane.sim.run_for(1.0)
    assert control_plane.admin.get("Pod", "needs-volume")["status"]["phase"] == "Running"


def test_kubelet_heals_corrupted_pod_ip(control_plane):
    control_plane.admin.create("Node", make_node("worker-1"))
    kubelet = _kubelet(control_plane)
    control_plane.admin.create("Pod", make_pod("p", node_name="worker-1"))
    for _ in range(6):
        kubelet.sync_pods()
        control_plane.sim.run_for(1.0)
    pod = control_plane.admin.get("Pod", "p")
    correct_ip = pod["status"]["podIP"]
    pod["status"]["podIP"] = "203.0.113.99"
    control_plane.apiserver.update_status("Pod", pod, actor="mutiny")
    kubelet.sync_pods()
    assert control_plane.admin.get("Pod", "p")["status"]["podIP"] == correct_ip


def test_kubelet_terminates_deleted_pod(control_plane):
    control_plane.admin.create("Node", make_node("worker-1"))
    kubelet = _kubelet(control_plane)
    control_plane.admin.create("Pod", make_pod("p", node_name="worker-1"))
    for _ in range(6):
        kubelet.sync_pods()
        control_plane.sim.run_for(1.0)
    pod = control_plane.admin.get("Pod", "p")
    pod["metadata"]["deletionTimestamp"] = control_plane.sim.now
    control_plane.apiserver.update("Pod", pod, actor="user")
    kubelet.sync_pods()
    assert control_plane.admin.list("Pod") == []
    assert kubelet.local_pods() == []
