"""Tests for results-dir federation.

The contract: merging N stores of one campaign produces a store whose
digest is byte-identical to a single serial run (shard boundaries never
reach the digest), fingerprint mismatches are rejected before anything is
written, overlapping indexes deduplicate deterministically (later source
wins), and transports mix freely — POSIX halves federate into an
object-store destination and vice versa.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.distributed import DistributedTimeoutError
from repro.core.federate import autofederate_stores, federate_stores
from repro.core.objstore import LocalObjectStore
from repro.core.resultstore import ResultStoreMismatchError, ShardedResultStore
from repro.workloads.workload import WorkloadKind

from test_resultstore import _full_result  # noqa: E402 - shared result factory


def _tiny_config(**overrides) -> CampaignConfig:
    defaults = dict(
        workloads=(WorkloadKind.DEPLOY,),
        golden_runs=1,
        max_experiments_per_workload=6,
        seed=3,
        workers=1,
        chunk_size=2,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


@pytest.fixture(scope="module")
def serial_store(tmp_path_factory):
    """One complete serial campaign store every federation test splits up."""
    root = str(tmp_path_factory.mktemp("serial-store"))
    result = Campaign(_tiny_config()).run(results_dir=root)
    return root, result


def _split_store(serial_root: str, dest_root: str, indexes: set[int]) -> str:
    """A partial store holding only ``indexes`` of the serial campaign —
    what an interrupted or deliberately partial run leaves behind."""
    source = ShardedResultStore(serial_root)
    dest = ShardedResultStore(dest_root)
    dest.open(source.manifest()["fingerprint"], source.manifest()["total"])
    try:
        dest.transport.put("prep.pkl", source.transport.get("prep.pkl"))
    except KeyError:
        pass
    batch = [(index, source.load_record(index)) for index in sorted(indexes)]
    if batch:
        dest.write_shard_dicts(batch)
    return dest_root


# ----------------------------------------------------------------- merging


def test_federated_halves_match_the_serial_digest(serial_store, tmp_path):
    serial_root, result = serial_store
    total = result.total_experiments()
    assert total >= 4
    # Two halves with one overlapping index — as two partial campaigns of
    # the same plan would leave behind.
    half_a = _split_store(serial_root, str(tmp_path / "a"), set(range(0, total // 2 + 1)))
    half_b = _split_store(serial_root, str(tmp_path / "b"), set(range(total // 2, total)))

    dest = str(tmp_path / "merged")
    report = federate_stores(dest, [half_a, half_b])
    assert report.merged_records == total
    assert report.overlapping_records == 1
    assert report.skipped_records == 0

    merged = ShardedResultStore(dest)
    serial = ShardedResultStore(serial_root)
    assert merged.results_digest() == serial.results_digest()
    assert merged.record_count() == total
    assert merged.stored_record_count() == total  # the overlap deduplicated

    # Re-federating is a no-op: everything is already in the destination.
    again = federate_stores(dest, [half_a, half_b])
    assert again.merged_records == 0
    assert again.skipped_records == total
    assert ShardedResultStore(dest).stored_record_count() == total


def test_federated_store_resumes_without_re_preparing(serial_store, tmp_path, monkeypatch):
    # The merged store carries the workload prep and every record, so
    # rerunning the campaign against it replays zero experiments and zero
    # golden runs — it is a full-fledged store, not just an archive.
    import repro.core.parallel as parallel_module

    serial_root, result = serial_store
    total = result.total_experiments()
    half_a = _split_store(serial_root, str(tmp_path / "a"), set(range(0, total // 2)))
    half_b = _split_store(serial_root, str(tmp_path / "b"), set(range(total // 2, total)))
    dest = str(tmp_path / "merged")
    federate_stores(dest, [half_a, half_b])

    def forbidden(*args, **kwargs):
        raise AssertionError("a federated store re-ran work on resume")

    monkeypatch.setattr(parallel_module, "_run_batch_local", forbidden)
    monkeypatch.setattr(parallel_module, "_run_golden_job", forbidden)
    resumed = Campaign(_tiny_config()).run(results_dir=dest)
    assert resumed.classification_counts() == result.classification_counts()


def test_later_source_wins_overlapping_indexes(tmp_path):
    # Results are deterministic, so real overlaps are byte-identical; the
    # deterministic later-wins rule is what keeps the merge order-defined
    # when a store was hand-edited.  Give the same index different payloads
    # and check the later source's record lands in the destination.
    first = ShardedResultStore(str(tmp_path / "first"))
    second = ShardedResultStore(str(tmp_path / "second"))
    early = dict(result_to_dict_marked(seed=111))
    late = dict(result_to_dict_marked(seed=222))
    for store, record in ((first, early), (second, late)):
        store.open("fp", total=1)
        store.write_shard_dicts([(0, record)])

    dest = str(tmp_path / "merged")
    report = federate_stores(dest, [first.root, second.root])
    assert report.overlapping_records == 1
    assert ShardedResultStore(dest).load_record(0)["seed"] == 222


def result_to_dict_marked(seed: int) -> dict:
    from repro.core.resultstore import result_to_dict

    data = result_to_dict(_full_result())
    data["seed"] = seed
    return data


# --------------------------------------------------------------- rejection


def test_federate_rejects_fingerprint_mismatch(tmp_path):
    a = ShardedResultStore(str(tmp_path / "a"))
    b = ShardedResultStore(str(tmp_path / "b"))
    a.open("fingerprint-a", total=2)
    b.open("fingerprint-b", total=2)
    dest = str(tmp_path / "merged")
    with pytest.raises(ResultStoreMismatchError):
        federate_stores(dest, [a.root, b.root])
    # Nothing was created at the destination before the rejection.
    assert not ShardedResultStore(dest).has_manifest()


def test_federate_rejects_foreign_destination(tmp_path):
    source = ShardedResultStore(str(tmp_path / "src"))
    source.open("fingerprint-a", total=2)
    dest = ShardedResultStore(str(tmp_path / "dest"))
    dest.open("fingerprint-other", total=2)
    with pytest.raises(ResultStoreMismatchError):
        federate_stores(dest.root, [source.root])


def test_federate_rejects_non_store_source(tmp_path):
    with pytest.raises(ResultStoreMismatchError):
        federate_stores(str(tmp_path / "dest"), [str(tmp_path / "nothing")])
    with pytest.raises(ValueError):
        federate_stores(str(tmp_path / "dest"), [])


# ---------------------------------------------------------- cross-transport


def test_federation_mixes_transports(serial_store, tmp_path):
    serial_root, result = serial_store
    total = result.total_experiments()
    server = LocalObjectStore(("127.0.0.1", 0)).start()
    try:
        # One POSIX half, one object-store half, object-store destination.
        half_a = _split_store(serial_root, str(tmp_path / "a"), set(range(0, total // 2)))
        half_b = _split_store(
            serial_root, f"{server.url}/half-b", set(range(total // 2, total))
        )
        dest = f"{server.url}/merged"
        report = federate_stores(dest, [half_a, half_b])
        assert report.merged_records == total
        merged = ShardedResultStore(dest)
        assert merged.results_digest() == ShardedResultStore(serial_root).results_digest()

        # ... and back down into a POSIX destination.
        posix_dest = str(tmp_path / "merged-posix")
        federate_stores(posix_dest, [dest])
        assert (
            ShardedResultStore(posix_dest).results_digest()
            == ShardedResultStore(serial_root).results_digest()
        )
    finally:
        server.stop()


# ----------------------------------------------------------- auto-federation


def test_autofederate_watches_sources_into_existence(serial_store, tmp_path):
    # The coordinator mode: the watch starts before either source store
    # exists, the sources appear and fill incrementally (one POSIX, one
    # object store), and the destination ends byte-identical to the serial
    # run the moment the full plan is covered.
    serial_root, result = serial_store
    total = result.total_experiments()
    reference = ShardedResultStore(serial_root)
    server = LocalObjectStore(("127.0.0.1", 0), max_page=2).start()
    try:
        src_a = f"{server.url}/half-a"
        src_b = str(tmp_path / "half-b")
        dest = str(tmp_path / "merged")
        outcome: dict = {}

        def watch() -> None:
            try:
                outcome["report"] = autofederate_stores(
                    dest, [src_a, src_b], poll_interval=0.05, timeout=120
                )
            except BaseException as error:  # noqa: BLE001 - surfaced below
                outcome["error"] = error

        watcher = threading.Thread(target=watch)
        watcher.start()
        time.sleep(0.2)  # a few rounds of polling nothing
        manifest = reference.manifest()
        for root, low, high in ((src_a, 0, total // 2), (src_b, total // 2, total)):
            source = ShardedResultStore(root)
            source.open(manifest["fingerprint"], manifest["total"])
            source.transport.put("prep.pkl", reference.transport.get("prep.pkl"))
            for index in range(low, high):
                source.write_shard_dicts([(index, reference.load_record(index))])
                time.sleep(0.05)
        watcher.join(timeout=120)
        assert not watcher.is_alive(), "autofederate never finished"
        assert "error" not in outcome, f"autofederate failed: {outcome.get('error')}"

        report = outcome["report"]
        assert report.merged_records == total
        assert report.initial_records == 0
        assert report.rounds > 1  # genuinely incremental, not one big merge
        merged = ShardedResultStore(dest)
        assert merged.results_digest() == reference.results_digest()
        assert merged.record_count() == total
        assert merged.stored_record_count() == total  # nothing folded twice
        assert merged.transport.stat("prep.pkl") is not None  # prep carried over

        # Re-watching complete sources is an incremental no-op.
        again = autofederate_stores(dest, [src_a, src_b], poll_interval=0.05, timeout=60)
        assert again.merged_records == 0
        assert again.initial_records == total
        assert ShardedResultStore(dest).stored_record_count() == total
    finally:
        server.stop()


def test_autofederate_rejects_a_foreign_source(tmp_path):
    good = ShardedResultStore(str(tmp_path / "good"))
    good.open("fingerprint-a", total=2)
    bad = ShardedResultStore(str(tmp_path / "bad"))
    bad.open("fingerprint-b", total=2)
    with pytest.raises(ResultStoreMismatchError):
        autofederate_stores(
            str(tmp_path / "dest"),
            [good.root, bad.root],
            poll_interval=0.05,
            timeout=30,
        )


def test_autofederate_times_out_when_sources_never_complete(tmp_path):
    with pytest.raises(DistributedTimeoutError) as excinfo:
        autofederate_stores(
            str(tmp_path / "dest"),
            [str(tmp_path / "never-appears")],
            poll_interval=0.05,
            timeout=0.3,
        )
    assert "0 of 1 source store(s) seen" in str(excinfo.value)
    with pytest.raises(ValueError):
        autofederate_stores(str(tmp_path / "dest"), [])


def test_cli_autofederate_matches_serial_json(serial_store, tmp_path, capsys):
    from repro.cli import main

    serial_root, result = serial_store
    total = result.total_experiments()
    half_a = _split_store(serial_root, str(tmp_path / "a"), set(range(0, total // 2)))
    half_b = _split_store(serial_root, str(tmp_path / "b"), set(range(total // 2, total)))
    dest = str(tmp_path / "merged")

    assert main(["autofederate", dest, half_a, half_b, "--timeout", "120", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "Auto-federation complete" in out
    assert f"records folded     : {total}" in out

    serial_json = str(tmp_path / "serial.json")
    merged_json = str(tmp_path / "merged.json")
    assert main(["inspect", serial_root, "--json", serial_json]) == 0
    assert main(["inspect", dest, "--json", merged_json]) == 0
    with open(serial_json, encoding="utf-8") as handle:
        serial_payload = json.load(handle)
    with open(merged_json, encoding="utf-8") as handle:
        merged_payload = json.load(handle)
    assert merged_payload == serial_payload


def test_cli_autofederate_reports_timeout_as_error(tmp_path, capsys):
    from repro.cli import main

    code = main(
        [
            "autofederate",
            str(tmp_path / "dest"),
            str(tmp_path / "never"),
            "--poll-interval",
            "0.05",
            "--timeout",
            "0.3",
            "--quiet",
        ]
    )
    assert code == 2
    assert "autofederate incomplete" in capsys.readouterr().err


# --------------------------------------------------------------------- CLI


def test_cli_federate_and_inspect_match_serial_json(serial_store, tmp_path, capsys):
    from repro.cli import main

    serial_root, result = serial_store
    total = result.total_experiments()
    half_a = _split_store(serial_root, str(tmp_path / "a"), set(range(0, total // 2)))
    half_b = _split_store(serial_root, str(tmp_path / "b"), set(range(total // 2, total)))
    dest = str(tmp_path / "merged")

    assert main(["federate", dest, half_a, half_b, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "Federation merge" in out
    assert f"merged records     : {total}" in out

    serial_json = str(tmp_path / "serial.json")
    merged_json = str(tmp_path / "merged.json")
    assert main(["inspect", serial_root, "--json", serial_json]) == 0
    assert main(["inspect", dest, "--json", merged_json]) == 0
    with open(serial_json, encoding="utf-8") as handle:
        serial_payload = json.load(handle)
    with open(merged_json, encoding="utf-8") as handle:
        merged_payload = json.load(handle)
    # The acceptance bar: the federated inspect --json is byte-identical to
    # the serial run's (digest, counts, raw records — everything).
    assert merged_payload == serial_payload


def test_cli_federate_reports_mismatch_as_error(tmp_path, capsys):
    from repro.cli import main

    a = ShardedResultStore(str(tmp_path / "a"))
    b = ShardedResultStore(str(tmp_path / "b"))
    a.open("fingerprint-a", total=2)
    b.open("fingerprint-b", total=2)
    assert main(["federate", str(tmp_path / "dest"), a.root, b.root, "--quiet"]) == 2
    assert "different campaign" in capsys.readouterr().err
