"""Integration tests: a full booted cluster and the orchestration workloads."""


from repro.cluster.cluster import Cluster, ClusterConfig
from repro.controllers.replicaset import pod_is_ready
from repro.workloads.appclient import ApplicationClient
from repro.workloads.scenario import SERVICE_NAME, ServiceApplication
from repro.workloads.workload import KbenchDriver, WorkloadKind

# ----------------------------------------------------------------- boot


def test_boot_creates_nodes_and_system_namespaces(booted_cluster):
    nodes = booted_cluster.client.list("Node")
    assert len(nodes) == 5
    namespaces = {ns["metadata"]["name"] for ns in booted_cluster.client.list("Namespace")}
    assert {"default", "kube-system", "kube-node-lease"} <= namespaces
    assert booted_cluster.worker_node_names() == ["worker-1", "worker-2", "worker-3", "worker-4"]


def test_boot_runs_network_manager_on_every_node(booted_cluster):
    pods = booted_cluster.client.list("Pod", namespace="kube-system")
    manager_nodes = {
        pod["spec"]["nodeName"]
        for pod in pods
        if pod["metadata"]["labels"].get("app") == "kube-network-manager"
    }
    assert manager_nodes == set(booted_cluster.node_names)
    assert all(
        pod_is_ready(pod)
        for pod in pods
        if pod["metadata"]["labels"].get("app") == "kube-network-manager"
    )


def test_boot_runs_dns_and_dns_is_available(booted_cluster):
    dns_pods = [
        pod
        for pod in booted_cluster.client.list("Pod", namespace="kube-system")
        if pod["metadata"]["labels"].get("k8s-app") == "kube-dns"
    ]
    assert len(dns_pods) == 2
    assert booted_cluster.network.dns_available()


def test_boot_elects_leaders_and_heartbeats_nodes(booted_cluster):
    assert booted_cluster.kcm.is_leader
    assert booted_cluster.scheduler.elector.is_leader
    for node in booted_cluster.client.list("Node"):
        ready = [c for c in node["status"]["conditions"] if c["type"] == "Ready"][0]
        assert ready["status"] == "True"


def test_metrics_are_collected_during_boot(booted_cluster):
    assert booted_cluster.metrics.samples
    last = booted_cluster.metrics.last_sample()
    assert last.nodes_ready == 5
    assert last.network_manager_ready_pods == 5


def test_ha_cluster_uses_three_etcd_members():
    cluster = Cluster(ClusterConfig(seed=3, control_plane_nodes=3, worker_nodes=2))
    cluster.boot(stabilization_seconds=25.0)
    assert len(cluster.raft.members) == 3
    assert cluster.raft.has_quorum()
    assert len(cluster.client.list("Node")) == 5


# ------------------------------------------------------------- workloads


def _run_workload(kind: WorkloadKind, seed=11):
    cluster = Cluster(ClusterConfig(seed=seed))
    cluster.boot(stabilization_seconds=25.0)
    user = cluster.user_client("user")
    application = ServiceApplication(user)
    driver = KbenchDriver(cluster.sim, user, application, kind, taint_node="worker-2")
    driver.setup_scenario()
    cluster.run_for(20.0)
    client = ApplicationClient(cluster.sim, cluster.network, expected_backends=6)
    client.start()
    driver.start()
    cluster.run_for(60.0)
    return cluster, driver, client


def test_deploy_workload_reaches_steady_state():
    cluster, driver, client = _run_workload(WorkloadKind.DEPLOY)
    deployments = cluster.client.list("Deployment", namespace="default")
    assert len(deployments) == 3
    ready = sum(d["status"]["readyReplicas"] for d in deployments)
    assert ready == 6
    endpoints = cluster.client.get("Endpoints", SERVICE_NAME, namespace="default")
    assert len(endpoints["subsets"][0]["addresses"]) == 6
    assert not driver.failed_requests()
    assert client.availability() > 0.5


def test_scale_workload_reaches_ten_replicas():
    cluster, driver, client = _run_workload(WorkloadKind.SCALE_UP)
    deployments = cluster.client.list("Deployment", namespace="default")
    assert len(deployments) == 2
    assert sum(d["spec"]["replicas"] for d in deployments) == 10
    assert sum(d["status"]["readyReplicas"] for d in deployments) == 10
    assert client.availability() > 0.9


def test_failover_workload_respawns_pods_on_other_nodes():
    cluster, driver, client = _run_workload(WorkloadKind.FAILOVER)
    pods = cluster.client.list("Pod", namespace="default")
    nodes_used = {pod["spec"]["nodeName"] for pod in pods}
    assert "worker-2" not in nodes_used
    deployments = cluster.client.list("Deployment", namespace="default")
    assert sum(d["status"]["readyReplicas"] for d in deployments) == 6
    assert client.availability() > 0.8


def test_application_client_time_series_has_expected_length():
    _, _, client = _run_workload(WorkloadKind.FAILOVER, seed=12)
    assert len(client.samples) == 600
    assert len(client.time_series()) == 600
