"""Edge-case tests for the rate-limited work queue and leader election.

The basics (dedup/FIFO, backoff growth, acquire/renew/release) live in
``test_controllers.py``; these tests pin down the corner cases the
controllers rely on: re-adding a key while it is being processed, backoff
accounting for keys that are already queued, and leases that expire while
the holder believes it is still renewing.
"""

from __future__ import annotations

from repro.apiserver.client import APIClient
from repro.controllers.leaderelection import LeaderElector
from repro.controllers.workqueue import RateLimitedQueue


def _client(control_plane, name="kube-controller-manager"):
    return APIClient(control_plane.apiserver, component=name)


# ------------------------------------------------------------- work queue


def test_workqueue_readd_while_processing_requeues():
    # Popping removes the key from the dedup set, so a watch event arriving
    # while the key is being reconciled queues another round — the event is
    # not lost.
    queue = RateLimitedQueue()
    queue.add("deploy/webapp")
    assert queue.pop_ready(0.0) == "deploy/webapp"
    queue.add("deploy/webapp", now=1.0)
    assert len(queue) == 1
    assert queue.pop_ready(1.0) == "deploy/webapp"
    assert queue.pop_ready(1.0) is None


def test_workqueue_failure_while_queued_counts_but_does_not_duplicate():
    # A key can fail reconciliation while a retry of it is already queued;
    # the failure count (and therefore the next delay) grows, but no second
    # entry appears.
    queue = RateLimitedQueue(base_delay=1.0, max_delay=60.0)
    queue.add_after_failure("k", now=0.0)
    assert len(queue) == 1
    delay = queue.add_after_failure("k", now=0.0)
    assert len(queue) == 1
    assert delay == 2.0
    assert queue.failure_count("k") == 2
    # The queued entry keeps its original (earlier) deadline.
    assert queue.pop_ready(1.0) == "k"


def test_workqueue_pop_skips_backed_off_key_in_fifo_order():
    # A backed-off key at the head must not block ready keys behind it.
    queue = RateLimitedQueue(base_delay=10.0)
    queue.add_after_failure("slow", now=0.0)
    queue.add("fast", now=0.0)
    assert queue.pop_ready(1.0) == "fast"
    assert queue.pop_ready(1.0) is None
    assert queue.pop_ready(10.0) == "slow"


def test_workqueue_drain_ready_respects_limit_and_order():
    queue = RateLimitedQueue()
    for key in ("a", "b", "c", "d"):
        queue.add(key)
    assert queue.drain_ready(0.0, limit=2) == ["a", "b"]
    assert queue.drain_ready(0.0) == ["c", "d"]
    assert len(queue) == 0


def test_workqueue_forget_unknown_key_is_noop():
    queue = RateLimitedQueue()
    queue.forget("never-seen")
    assert queue.failure_count("never-seen") == 0


# -------------------------------------------------------- leader election


def test_lease_expires_during_renewal_gap(control_plane):
    # Holder A stops renewing (e.g. stalled); after the lease duration a
    # second candidate takes over, and A's late renewal must fail instead of
    # silently stealing leadership back.
    client = _client(control_plane)
    first = LeaderElector(
        control_plane.sim, client, "kcm-lease", identity="a", lease_duration=15.0
    )
    assert first.try_acquire_or_renew()
    control_plane.sim.run_for(16.0)

    second = LeaderElector(
        control_plane.sim, client, "kcm-lease", identity="b", lease_duration=15.0
    )
    assert second.try_acquire_or_renew()
    assert not first.try_acquire_or_renew()
    assert not first.is_leader
    assert second.is_leader


def test_lease_transitions_count_takeovers_but_not_renewals(control_plane):
    client = _client(control_plane)
    first = LeaderElector(
        control_plane.sim, client, "sched-lease", identity="a", lease_duration=10.0
    )
    first.try_acquire_or_renew()
    first.try_acquire_or_renew()  # plain renewal
    lease = client.get("Lease", "sched-lease", namespace="kube-system")
    transitions_after_renewal = lease["spec"]["leaseTransitions"]

    control_plane.sim.run_for(11.0)
    second = LeaderElector(
        control_plane.sim, client, "sched-lease", identity="b", lease_duration=10.0
    )
    second.try_acquire_or_renew()
    lease = client.get("Lease", "sched-lease", namespace="kube-system")
    assert lease["spec"]["leaseTransitions"] == transitions_after_renewal + 1
    assert lease["spec"]["holderIdentity"] == "b"
    assert lease["spec"]["acquireTime"] == control_plane.sim.now


def test_corrupted_renew_time_counts_as_expired(control_plane):
    # A renewTime corrupted into a non-number (a Mutiny value-set) makes the
    # lease look expired: another candidate can take over instead of the
    # control plane stalling forever.
    client = _client(control_plane)
    holder = LeaderElector(control_plane.sim, client, "corrupt-lease", identity="a")
    holder.try_acquire_or_renew()
    lease = client.get("Lease", "corrupt-lease", namespace="kube-system")
    lease["spec"]["renewTime"] = ""
    client.update("Lease", lease)

    challenger = LeaderElector(control_plane.sim, client, "corrupt-lease", identity="b")
    assert challenger.try_acquire_or_renew()


def test_invalid_lease_duration_falls_back_to_default(control_plane):
    # leaseDurationSeconds corrupted to True/zero must not make the lease
    # permanently un-expirable (or instantly expired in a boolean sense).
    client = _client(control_plane)
    holder = LeaderElector(
        control_plane.sim, client, "duration-lease", identity="a", lease_duration=15.0
    )
    holder.try_acquire_or_renew()
    lease = client.get("Lease", "duration-lease", namespace="kube-system")
    lease["spec"]["leaseDurationSeconds"] = True
    client.update("Lease", lease)

    control_plane.sim.run_for(5.0)
    challenger = LeaderElector(
        control_plane.sim, client, "duration-lease", identity="b", lease_duration=15.0
    )
    # 5 s < the 15 s fallback duration: the lease is still held.
    assert not challenger.try_acquire_or_renew()
    control_plane.sim.run_for(11.0)
    assert challenger.try_acquire_or_renew()


def test_release_by_non_holder_leaves_lease_untouched(control_plane):
    client = _client(control_plane)
    holder = LeaderElector(control_plane.sim, client, "rel-lease", identity="a")
    holder.try_acquire_or_renew()
    bystander = LeaderElector(control_plane.sim, client, "rel-lease", identity="b")
    bystander.release()
    lease = client.get("Lease", "rel-lease", namespace="kube-system")
    assert lease["spec"]["holderIdentity"] == "a"
    assert holder.try_acquire_or_renew()


def test_transitions_counter_tracks_leadership_regain(control_plane):
    # An elector that loses leadership and later regains it records both
    # transitions locally (the paper counts leadership changes as restarts).
    client = _client(control_plane)
    first = LeaderElector(
        control_plane.sim, client, "regain-lease", identity="a", lease_duration=10.0
    )
    assert first.try_acquire_or_renew()
    assert first.transitions == 1

    control_plane.sim.run_for(11.0)
    second = LeaderElector(
        control_plane.sim, client, "regain-lease", identity="b", lease_duration=10.0
    )
    assert second.try_acquire_or_renew()
    assert not first.try_acquire_or_renew()

    second.release()
    assert first.try_acquire_or_renew()
    assert first.transitions == 2
