"""Integration tests: end-to-end injection experiments reproducing the
failure mechanisms described in the paper's results section."""

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.classification import ClientFailure, OrchestratorFailure
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.injector import FaultSpec, FaultType, InjectionChannel
from repro.network.network import NETWORK_CONFIGMAP
from repro.workloads.workload import WorkloadKind


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(ExperimentConfig())


@pytest.fixture(scope="module")
def deploy_baseline(runner):
    return runner.build_baseline(WorkloadKind.DEPLOY, runs=2, base_seed=300)


def test_golden_run_classifies_as_no_failure(runner, deploy_baseline):
    result = runner.run_golden(WorkloadKind.DEPLOY, seed=333)
    runner.classify(result, deploy_baseline)
    assert result.orchestrator_failure == OrchestratorFailure.NO
    assert result.client_failure == ClientFailure.NSI


def test_uncontrolled_replication_from_template_label_corruption(runner, deploy_baseline):
    # Paper §V-C1, "Example of uncontrolled replication": one bit flipped in
    # the labels linking pods to their controller triggers an unbounded spawn.
    fault = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="ReplicaSet",
        field_path="spec.template.metadata.labels.app",
        fault_type=FaultType.BIT_FLIP,
        bit_index=0,
        occurrence=1,
    )
    result = runner.run_experiment(WorkloadKind.DEPLOY, fault, baseline=deploy_baseline, seed=301)
    assert result.injected
    assert result.orchestrator_failure in (OrchestratorFailure.STA, OrchestratorFailure.OUT)
    assert result.pods_created > deploy_baseline.pods_created_mean * 5


def test_message_drop_of_deployment_create_underprovisions(runner, deploy_baseline):
    # Dropping the transaction that persists one Deployment leaves the user
    # believing it was created: a Less-Resources failure with no user error.
    fault = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Deployment",
        fault_type=FaultType.MESSAGE_DROP,
        occurrence=1,
    )
    result = runner.run_experiment(WorkloadKind.DEPLOY, fault, baseline=deploy_baseline, seed=302)
    assert result.injected and result.dropped
    assert result.orchestrator_failure == OrchestratorFailure.LER
    assert not result.user_received_error


def test_network_configmap_corruption_causes_cluster_outage(runner, deploy_baseline):
    # Corrupting the network manager's configuration tears down every route:
    # the paper's cluster-wide networking outage.
    fault = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="ConfigMap",
        name=NETWORK_CONFIGMAP,
        namespace="kube-system",
        field_path="data.network",
        fault_type=FaultType.DATA_TYPE_SET,
        set_value="",
        occurrence=1,
    )
    result = runner.run_experiment(WorkloadKind.DEPLOY, fault, baseline=deploy_baseline, seed=303)
    if result.injected:
        assert result.orchestrator_failure in (OrchestratorFailure.STA, OrchestratorFailure.OUT)
    else:
        # The ConfigMap is only rewritten if something touches it during the
        # run; not firing is an acceptable outcome for this occurrence.
        assert result.orchestrator_failure == OrchestratorFailure.NO


def test_replica_count_corruption_changes_provisioning(runner):
    # Flipping a high-order bit of a Deployment's replica count during the
    # scale-up workload temporarily overprovisions the service (the paper's
    # "wrong replica value" → MoR pattern).
    baseline = runner.build_baseline(WorkloadKind.SCALE_UP, runs=2, base_seed=400)
    fault = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Deployment",
        name="webapp-1",
        namespace="default",
        field_path="spec.replicas",
        fault_type=FaultType.BIT_FLIP,
        bit_index=4,
        occurrence=1,
    )
    result = runner.run_experiment(WorkloadKind.SCALE_UP, fault, baseline=baseline, seed=401)
    assert result.injected
    assert result.orchestrator_failure in (
        OrchestratorFailure.LER,
        OrchestratorFailure.MOR,
        OrchestratorFailure.TIM,
        OrchestratorFailure.STA,
    )
    assert result.pods_created > baseline.pods_created_mean


def test_replicaset_replica_corruption_is_healed_by_deployment_controller(runner):
    # The same corruption on the ReplicaSet (owned by the Deployment) is
    # overwritten by the Deployment controller before it can take effect —
    # one of the paper's "no effect: value overwritten" recoveries.
    baseline = runner.build_baseline(WorkloadKind.SCALE_UP, runs=2, base_seed=400)
    fault = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="ReplicaSet",
        field_path="spec.replicas",
        fault_type=FaultType.BIT_FLIP,
        bit_index=4,
        occurrence=2,
    )
    result = runner.run_experiment(WorkloadKind.SCALE_UP, fault, baseline=baseline, seed=402)
    assert result.injected
    assert result.orchestrator_failure in (
        OrchestratorFailure.NO,
        OrchestratorFailure.MOR,
        OrchestratorFailure.TIM,
    )


def test_node_name_corruption_triggers_scheduler_restart(runner, deploy_baseline):
    # Paper's "Example of timing failure": a corrupted nodeName makes the
    # scheduler restart and pay the leader re-election delay.
    fault = FaultSpec(
        channel=InjectionChannel.APISERVER_TO_ETCD,
        kind="Pod",
        field_path="spec.nodeName",
        fault_type=FaultType.BIT_FLIP,
        bit_index=1,
        occurrence=2,
    )
    result = runner.run_experiment(WorkloadKind.DEPLOY, fault, baseline=deploy_baseline, seed=304)
    assert result.injected
    # The corrupted assignment is healed (the pod is recreated or rescheduled);
    # the cost is timing/classification noise, not a system-wide failure.
    assert result.orchestrator_failure in (
        OrchestratorFailure.NO,
        OrchestratorFailure.TIM,
        OrchestratorFailure.LER,
        OrchestratorFailure.MOR,
        OrchestratorFailure.STA,
    )


def test_most_injections_have_no_user_visible_error(runner, deploy_baseline):
    # Finding F4: the user is acknowledged and never told about the failure.
    faults = [
        FaultSpec(
            channel=InjectionChannel.APISERVER_TO_ETCD,
            kind="ReplicaSet",
            field_path="spec.template.metadata.labels.app",
            fault_type=FaultType.BIT_FLIP,
            occurrence=1,
        ),
        FaultSpec(
            channel=InjectionChannel.APISERVER_TO_ETCD,
            kind="Pod",
            field_path="metadata.labels.app",
            fault_type=FaultType.DATA_TYPE_SET,
            set_value="",
            occurrence=1,
        ),
    ]
    for index, fault in enumerate(faults):
        result = runner.run_experiment(
            WorkloadKind.DEPLOY, fault, baseline=deploy_baseline, seed=320 + index
        )
        assert result.injected
        assert not result.user_received_error


def test_propagation_experiments_report_per_component_rows():
    # Table VI: bit-flips on the component→Apiserver channel either propagate
    # to the store or are rejected by validation.
    campaign = Campaign(
        CampaignConfig(workloads=(WorkloadKind.DEPLOY,), golden_runs=1, max_experiments_per_workload=5)
    )
    rows = campaign.run_propagation(components=("kube-scheduler",), fields_per_component=2)
    assert len(rows) == 1
    row = rows[0]
    assert row["component"] == "kube-scheduler"
    assert row["injections"] == row["propagated"] + row["errors"]
    assert row["injections"] >= 1


# ------------------------------------------------------------------ campaign


def test_field_recorder_and_campaign_generation(runner):
    campaign = Campaign(CampaignConfig(golden_runs=1, max_experiments_per_workload=10))
    recorded = campaign.record_fields(WorkloadKind.DEPLOY, seed=77)
    kinds = {record.kind for record in recorded}
    assert "Deployment" in kinds and "Pod" in kinds and "ReplicaSet" in kinds
    paths = {record.path for record in recorded}
    assert any("labels" in path for path in paths)
    assert any(path.endswith("replicas") for path in paths)

    specs = campaign.generate(recorded)
    families = {spec.fault_type for spec in specs}
    assert families == {
        FaultType.BIT_FLIP,
        FaultType.DATA_TYPE_SET,
        FaultType.MESSAGE_DROP,
        FaultType.PROTO_BYTE_FLIP,
    }
    # §IV-C rules: ints get two bit positions + a zero set, strings get two
    # character flips + an empty set, each at occurrences 1..3; drops at 1..10.
    int_specs = [
        spec for spec in specs
        if spec.field_path and spec.field_path.endswith("spec.replicas") and spec.kind == "Deployment"
    ]
    assert len(int_specs) == 9
    drops = [spec for spec in specs if spec.fault_type is FaultType.MESSAGE_DROP]
    assert len(drops) == len(kinds) * 10

    planned = campaign.plan(WorkloadKind.DEPLOY, recorded)
    assert len(planned) == 10


def test_campaign_plan_is_deterministic():
    config = CampaignConfig(golden_runs=1, max_experiments_per_workload=12, seed=9)
    campaign_a = Campaign(config)
    campaign_b = Campaign(CampaignConfig(golden_runs=1, max_experiments_per_workload=12, seed=9))
    recorded_a = campaign_a.record_fields(WorkloadKind.SCALE_UP, seed=80)
    recorded_b = campaign_b.record_fields(WorkloadKind.SCALE_UP, seed=80)
    plan_a = [planned.fault.describe() for planned in campaign_a.plan(WorkloadKind.SCALE_UP, recorded_a)]
    plan_b = [planned.fault.describe() for planned in campaign_b.plan(WorkloadKind.SCALE_UP, recorded_b)]
    assert plan_a == plan_b
