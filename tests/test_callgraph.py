"""The whole-program analysis core: symbol table, call graph, dataflow, cache.

The checkers built on the graph are tested behaviorally in
``tests/test_lint.py``; here the machinery itself is pinned — conservative
resolution (inheritance, recursion, dynamic-call fallbacks that must
neither crash nor silently resolve), the parameter-mutation fixpoint, and
the incremental cache (hit on untouched files, invalidation on edit,
warm-run speedup on the real tree).
"""

from __future__ import annotations

import os
import textwrap
import time

import pytest

import repro
from repro.lint import KNOWN_CODES, lint_paths
from repro.lint.callgraph import EXTERNAL, PROJECT, UNKNOWN, build_graph
from repro.lint.dataflow import Reachability, mutated_param_set, render_chain
from repro.lint.framework import load_lint_file
from repro.lint.runner import _relparts
from repro.lint.symbols import index_module

REPRO_PACKAGE = os.path.dirname(os.path.abspath(repro.__file__))


def graph_of(tmp_path, files: dict[str, str]):
    """Write a fixture tree mirroring the package layout and build its graph."""
    summaries = []
    for relpath, source in files.items():
        path = tmp_path / "repro" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        lint_file, hygiene = load_lint_file(
            str(path), _relparts(str(path)), KNOWN_CODES
        )
        assert lint_file is not None, hygiene
        summaries.append(index_module(lint_file))
    return build_graph(summaries)


def resolve(graph, fid, index=0):
    """Resolution of the ``index``-th call recorded inside function ``fid``."""
    ref = graph.functions[fid]
    module = graph.modules[ref.module]
    return graph.resolve(module, ref.summary, ref.summary.calls[index])


class TestResolution:
    def test_local_function_and_import_alias(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "core/util.py": """\
                def helper():
                    return 1
                """,
                "core/main.py": """\
                from repro.core.util import helper as h

                def local():
                    return 2

                def caller():
                    local()
                    h()
                """,
            },
        )
        first = resolve(graph, "repro.core.main:caller", 0)
        second = resolve(graph, "repro.core.main:caller", 1)
        assert first.kind == PROJECT and first.target == "repro.core.main:local"
        assert second.kind == PROJECT and second.target == "repro.core.util:helper"

    def test_method_resolution_through_inheritance(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "core/base.py": """\
                class Base:
                    def ping(self):
                        return "base"
                """,
                "core/derived.py": """\
                from repro.core.base import Base

                class Middle(Base):
                    pass

                class Derived(Middle):
                    def call(self):
                        self.ping()
                """,
            },
        )
        resolution = resolve(graph, "repro.core.derived:Derived.call")
        assert resolution.kind == PROJECT
        assert resolution.target == "repro.core.base:Base.ping"

    def test_nearest_override_wins(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "core/one.py": """\
                class Base:
                    def ping(self):
                        return "base"

                class Derived(Base):
                    def ping(self):
                        return "derived"

                    def call(self):
                        self.ping()
                """,
            },
        )
        resolution = resolve(graph, "repro.core.one:Derived.call")
        assert resolution.target == "repro.core.one:Derived.ping"

    def test_constructor_resolves_to_init(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "core/ctor.py": """\
                class Widget:
                    def __init__(self, size):
                        self.size = size

                def make():
                    return Widget(3)
                """,
            },
        )
        resolution = resolve(graph, "repro.core.ctor:make")
        assert resolution.kind == PROJECT
        assert resolution.target == "repro.core.ctor:Widget.__init__"

    def test_builtin_is_external(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "core/ext.py": """\
                import os

                def f(path):
                    open(path)
                    os.remove(path)
                """,
            },
        )
        assert resolve(graph, "repro.core.ext:f", 0).kind == EXTERNAL
        second = resolve(graph, "repro.core.ext:f", 1)
        assert second.kind == EXTERNAL and second.target == "os.remove"

    def test_dynamic_receivers_are_unknown_not_crashes(self, tmp_path):
        """Calls through instance attributes, call results, subscripts, and
        unindexed project paths must resolve to UNKNOWN — never raise, and
        never claim a project edge that is not there."""
        graph = graph_of(
            tmp_path,
            {
                "core/dyn.py": """\
                import repro.core.missing as missing

                class Holder:
                    def use(self, table):
                        self.obj.method()
                        table["k"]()
                        missing.gone()
                """,
            },
        )
        kinds = [
            resolve(graph, "repro.core.dyn:Holder.use", index).kind
            for index in range(3)
        ]
        # instance attribute, subscript receiver, unindexed repro.* path:
        # all UNKNOWN — recorded for lexical heuristics, no edge followed.
        assert kinds == [UNKNOWN, UNKNOWN, UNKNOWN]

    def test_all_functions_is_deterministic(self, tmp_path):
        files = {
            "core/z.py": "def zf():\n    pass\n",
            "core/a.py": "def af():\n    pass\n",
        }
        first = [ref.fid for ref in graph_of(tmp_path / "x", files).all_functions()]
        second = [ref.fid for ref in graph_of(tmp_path / "y", files).all_functions()]
        assert first == second == sorted(first)


class TestReachability:
    def banned_open(self):
        def banned(ref, call, resolution):
            if resolution.kind == EXTERNAL and resolution.target == "open":
                return "open()"
            return None

        return banned

    def test_chain_spans_modules_and_prints_every_hop(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "core/io_helper.py": """\
                def dump(path):
                    open(path)
                """,
                "core/mid.py": """\
                from repro.core.io_helper import dump

                def persist(path):
                    dump(path)
                """,
            },
        )
        reach = Reachability(graph, banned=self.banned_open())
        chain = reach.chain_from("repro.core.mid:persist")
        assert chain is not None
        rendered = render_chain(chain)
        assert "io_helper.dump (core/mid.py:4)" in rendered
        assert "open() (core/io_helper.py:2)" in rendered

    def test_recursion_terminates_and_still_finds_the_primitive(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "core/rec.py": """\
                def spin(n):
                    if n:
                        spin(n - 1)
                    open("x")

                def clean(n):
                    if n:
                        clean(n - 1)
                """,
            },
        )
        reach = Reachability(graph, banned=self.banned_open())
        assert reach.chain_from("repro.core.rec:spin") is not None
        assert reach.chain_from("repro.core.rec:clean") is None

    def test_mutual_recursion_terminates(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "core/mutual.py": """\
                def ping(n):
                    pong(n)

                def pong(n):
                    ping(n)
                """,
            },
        )
        reach = Reachability(graph, banned=self.banned_open())
        assert reach.chain_from("repro.core.mutual:ping") is None


class TestMutatedParams:
    def test_direct_and_transitive_mutation(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "core/mut.py": """\
                def strip(obj):
                    obj["metadata"].pop("resourceVersion")

                def forward(thing):
                    strip(thing)

                def rebinds(p):
                    p = dict(p)
                    p["x"] = 1
                """,
            },
        )
        mutated = mutated_param_set(graph)
        assert ("repro.core.mut:strip", 0) in mutated
        assert ("repro.core.mut:forward", 0) in mutated  # via the fixpoint
        # Rebinding severs the alias: mutating the rebound name is local.
        assert ("repro.core.mut:rebinds", 0) not in mutated

    def test_method_argument_offset_accounts_for_self(self, tmp_path):
        graph = graph_of(
            tmp_path,
            {
                "core/meth.py": """\
                class Sink:
                    def absorb(self, item):
                        item.clear()
                """,
            },
        )
        mutated = mutated_param_set(graph)
        assert ("repro.core.meth:Sink.absorb", 1) in mutated
        assert ("repro.core.meth:Sink.absorb", 0) not in mutated


class TestIncrementalCache:
    SOURCE_BAD = "import time\n\ndef stamp():\n    return time.time()\n"
    SOURCE_GOOD = "def stamp(sim):\n    return sim.now()\n"

    def seed(self, tmp_path):
        path = tmp_path / "repro" / "sim" / "clocky.py"
        path.parent.mkdir(parents=True)
        path.write_text(self.SOURCE_BAD)
        return path

    def test_second_run_hits_and_first_misses(self, tmp_path):
        path = self.seed(tmp_path)
        cache_dir = str(tmp_path / "cache")
        cold = lint_paths([str(path)], cache_dir=cache_dir)
        warm = lint_paths([str(path)], cache_dir=cache_dir)
        assert cold.cache_hits == 0 and cold.cache_misses == 1
        assert warm.cache_hits == 1 and warm.cache_misses == 0
        assert [d.code for d in cold.diagnostics] == ["MUT003"]
        assert cold.diagnostics == warm.diagnostics

    def test_edit_invalidates_and_reflects_the_new_content(self, tmp_path):
        path = self.seed(tmp_path)
        cache_dir = str(tmp_path / "cache")
        first = lint_paths([str(path)], cache_dir=cache_dir)
        assert not first.ok
        path.write_text(self.SOURCE_GOOD)
        second = lint_paths([str(path)], cache_dir=cache_dir)
        assert second.ok, [d.render() for d in second.diagnostics]
        third = lint_paths([str(path)], cache_dir=cache_dir)
        assert third.ok and third.cache_hits == 1

    def test_touch_without_edit_still_hits_via_hash(self, tmp_path):
        path = self.seed(tmp_path)
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(path)], cache_dir=cache_dir)
        os.utime(path)  # mtime moves, content does not
        warm = lint_paths([str(path)], cache_dir=cache_dir)
        assert warm.cache_hits == 1 and warm.cache_misses == 0

    def test_corrupt_cache_entry_is_a_miss_not_an_error(self, tmp_path):
        path = self.seed(tmp_path)
        cache_dir = tmp_path / "cache"
        lint_paths([str(path)], cache_dir=str(cache_dir))
        for entry in cache_dir.iterdir():
            entry.write_bytes(b"\x80\x04not a pickle")
        report = lint_paths([str(path)], cache_dir=str(cache_dir))
        assert report.cache_misses == 1
        assert [d.code for d in report.diagnostics] == ["MUT003"]

    def test_warm_run_is_measurably_faster_on_the_full_tree(self, tmp_path):
        """The acceptance criterion: a warm ``.mutiny-lint-cache/`` run
        beats cold on the shipped tree.  Phase A (parse + file checkers)
        dominates a cold run, so skipping it must show up clearly; the
        0.75 factor keeps the assertion robust on noisy CI boxes (the
        locally observed ratio is ~0.2)."""
        cache_dir = str(tmp_path / "cache")
        started = time.perf_counter()
        cold = lint_paths([REPRO_PACKAGE], cache_dir=cache_dir)
        cold_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        warm = lint_paths([REPRO_PACKAGE], cache_dir=cache_dir)
        warm_elapsed = time.perf_counter() - started
        assert cold.ok and warm.ok
        assert warm.cache_hits == warm.files_checked > 50
        assert warm.diagnostics == cold.diagnostics
        assert warm_elapsed < cold_elapsed * 0.75, (
            f"warm {warm_elapsed:.3f}s vs cold {cold_elapsed:.3f}s"
        )


class TestDiscoverySymlinks:
    def test_symlinked_dirs_and_files_lint_once(self, tmp_path):
        """Regression: discovery used to traverse duplicate spellings of
        one tree (a symlinked subtree, a symlinked file) and report every
        finding once per spelling — and a link pointing back up the tree
        could loop.  Symlinked directories are pruned and files dedupe by
        resolved path."""
        package = tmp_path / "repro" / "sim"
        package.mkdir(parents=True)
        real = package / "clocky.py"
        real.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        os.symlink(tmp_path / "repro", package / "loop")  # would cycle
        os.symlink(real, package / "zz_alias.py")  # duplicate spelling
        report = lint_paths([str(tmp_path)])
        assert report.files_checked == 1
        assert [d.code for d in report.diagnostics] == ["MUT003"]

    def test_same_tree_via_two_arguments_dedupes(self, tmp_path):
        package = tmp_path / "repro" / "sim"
        package.mkdir(parents=True)
        real = package / "clocky.py"
        real.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        # "zlink" sorts after "repro", so the canonical spelling (the one
        # whose relparts carry package scoping) is the display path kept.
        link = tmp_path / "zlink"
        os.symlink(tmp_path / "repro", link)
        report = lint_paths([str(tmp_path), str(link)])
        assert report.files_checked == 1
        assert len(report.diagnostics) == 1


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
