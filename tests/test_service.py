"""Tests for the campaign service API redesign.

Three contracts under test:

* :class:`CampaignSpec` is the single submission surface — it round-trips
  through JSON without changing identity, rejects unknown/invalid fields
  naming them, represents every ``repro.cli campaign`` flag, and both the
  CLI and the HTTP service build the same spec from the same description.
* The ``/v1`` HTTP API: submission is idempotent on content identity,
  progress/tables/status are computed live from the shard store, quota
  overflow answers 429 + ``Retry-After``, and ``GET /v1/campaigns/{id}``
  serves the byte-identical document ``inspect --json`` writes.
* Statelessness: a service SIGKILLed mid-campaign and restarted against the
  same ``--state`` store rehydrates from the index, resumes the campaign
  with zero replays, and the final digest is byte-identical to serial.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time

import pytest

import repro
from repro.cli import build_parser, main
from repro.core.objstore import LocalObjectStore
from repro.core.report import STORE_DOCUMENT_SCHEMA
from repro.core.resultstore import ShardedResultStore
from repro.core.transport import StoreURLError, resolve_store_url
from repro.service import (
    CampaignHandle,
    CampaignService,
    CampaignServiceServer,
    CampaignSpec,
    ServiceClient,
    ServiceError,
    SpecError,
)

#: src/ directory, for PYTHONPATH of spawned service processes.
_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _tiny_spec(store_url: str, **overrides) -> CampaignSpec:
    """The 6-experiment campaign the distributed tests also use."""
    kwargs = dict(
        workloads=("deploy",),
        golden_runs=1,
        max_experiments=6,
        seed=3,
        workers=1,
        chunk_size=1,
        store_url=store_url,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """One serial run of the tiny campaign: (store root, digest)."""
    root = str(tmp_path_factory.mktemp("serial-ref") / "store")
    CampaignHandle(_tiny_spec(root)).run()
    return root, ShardedResultStore(root).results_digest()


@pytest.fixture()
def service_server(tmp_path):
    service = CampaignService(str(tmp_path / "state"), max_campaigns=4)
    server = CampaignServiceServer(("127.0.0.1", 0), service).start()
    client = ServiceClient(server.url)
    client.wait_ready(timeout=30)
    yield server, client
    server.stop()


# --------------------------------------------------------------------------
# CampaignSpec: round-trip, validation, CLI coverage
# --------------------------------------------------------------------------


class TestCampaignSpec:
    def test_json_roundtrip_preserves_fingerprint(self, tmp_path):
        spec = _tiny_spec(str(tmp_path / "store"), shard_batch=3, seed=11)
        restored = CampaignSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.fingerprint() == spec.fingerprint()
        assert restored.campaign_id() == spec.campaign_id()

    def test_fingerprint_depends_on_content_and_store(self, tmp_path):
        one = _tiny_spec(str(tmp_path / "a"))
        assert one.fingerprint() != _tiny_spec(str(tmp_path / "a"), seed=4).fingerprint()
        assert one.fingerprint() != _tiny_spec(str(tmp_path / "b")).fingerprint()

    def test_unknown_fields_rejected_by_name(self):
        with pytest.raises(SpecError, match="max_expermnts"):
            CampaignSpec.from_dict({"max_expermnts": 60})

    def test_not_an_object_rejected(self):
        with pytest.raises(SpecError, match="JSON object"):
            CampaignSpec.from_dict(["deploy"])
        with pytest.raises(SpecError, match="not valid JSON"):
            CampaignSpec.from_json("{nope")

    @pytest.mark.parametrize(
        ("kwargs", "named"),
        [
            (dict(workloads=("warp",)), "warp"),
            (dict(workloads=()), "workloads"),
            (dict(golden_runs=0), "golden_runs"),
            (dict(seed="7"), "seed"),
            (dict(workers=0), "workers"),
            (dict(shard_batch=0), "shard_batch"),
            (dict(backend="cloud"), "backend"),
            (dict(poll_interval=0), "poll_interval"),
            (dict(timeout=-1), "timeout"),
            (dict(store_url="s3://bucket/x"), "s3://bucket/x"),
            (dict(backend="distributed"), "store_url"),
            (dict(store_url="/tmp/x", checkpoint="/tmp/c.pkl"), "mutually exclusive"),
        ],
    )
    def test_invalid_fields_rejected_by_name(self, kwargs, named):
        with pytest.raises(SpecError, match=re.escape(named)):
            CampaignSpec(**kwargs)

    def test_max_experiments_zero_normalizes_to_none(self):
        assert CampaignSpec(max_experiments=0).max_experiments is None
        assert CampaignSpec(max_experiments=0) == CampaignSpec(max_experiments=None)

    def test_every_campaign_flag_is_representable(self, tmp_path):
        """Each CLI `campaign` flag that shapes execution lands in the spec."""
        store = str(tmp_path / "store")
        args = build_parser().parse_args(
            [
                "campaign",
                "--workloads", "deploy,scale",
                "--seed", "11",
                "--golden-runs", "3",
                "--max-experiments", "12",
                "--workers", "2",
                "--chunk-size", "4",
                "--shard-batch", "2",
                "--backend", "distributed",
                "--results-dir", store,
                "--slice-size", "5",
                "--poll-interval", "0.25",
                "--coordinator-timeout", "60",
            ]
        )
        spec = CampaignSpec.from_cli_args(args)
        assert spec == CampaignSpec(
            workloads=("deploy", "scale"),
            seed=11,
            golden_runs=3,
            max_experiments=12,
            workers=2,
            chunk_size=4,
            shard_batch=2,
            backend="distributed",
            store_url=store,
            slice_size=5,
            poll_interval=0.25,
            timeout=60.0,
        )
        config = spec.to_config()
        assert [kind.value for kind in config.workloads] == ["deploy", "scale"]
        assert (config.golden_runs, config.seed) == (3, 11)
        assert config.max_experiments_per_workload == 12
        assert (config.workers, config.chunk_size, config.shard_batch) == (2, 4, 2)
        settings = spec.distributed_settings()
        assert (settings.slice_size, settings.poll_interval, settings.timeout) == (
            5, 0.25, 60.0,
        )

    def test_campaign_and_submit_build_identical_specs(self, tmp_path):
        """The no-duplicated-parsing criterion: both subcommands produce the
        same spec from the same flag vocabulary."""
        store = str(tmp_path / "store")
        flags = ["--workloads", "deploy", "--seed", "5", "--results-dir", store]
        parser = build_parser()
        campaign_args = parser.parse_args(["campaign", *flags])
        submit_args = parser.parse_args(
            ["submit", "--server", "http://127.0.0.1:1", *flags]
        )
        assert CampaignSpec.from_cli_args(campaign_args) == CampaignSpec.from_cli_args(
            submit_args
        )

    def test_checkpoint_only_on_campaign(self, tmp_path):
        args = build_parser().parse_args(
            ["campaign", "--checkpoint", str(tmp_path / "c.pkl")]
        )
        spec = CampaignSpec.from_cli_args(args)
        assert spec.checkpoint == str(tmp_path / "c.pkl")
        assert spec.store_url is None


# --------------------------------------------------------------------------
# resolve_store_url: the one store-root parser
# --------------------------------------------------------------------------


class TestResolveStoreURL:
    def test_posix_and_objstore_roots_pass_through(self, tmp_path):
        assert resolve_store_url(str(tmp_path)) == str(tmp_path)
        assert (
            resolve_store_url("objstore://127.0.0.1:1/bucket")
            == "objstore://127.0.0.1:1/bucket"
        )

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "s3://bucket/key", "https://example.com/store", "objstore://host:1"],
    )
    def test_malformed_roots_rejected_naming_option(self, bad):
        with pytest.raises(StoreURLError, match=re.escape("--results-dir")):
            resolve_store_url(bad, option="--results-dir")

    def test_cli_paths_reject_bad_urls_naming_them(self, tmp_path, capsys):
        cases = [
            ["inspect", "s3://bucket/store"],
            ["worker", "--results-dir", "s3://bucket/store"],
            ["federate", "objstore://host:1", str(tmp_path / "src")],
            ["autofederate", str(tmp_path / "dest"), "s3://bucket/store",
             "--timeout", "1"],
            ["campaign", "--results-dir", "s3://bucket/store"],
        ]
        for argv in cases:
            assert main(argv) == 2
            err = capsys.readouterr().err
            assert "error:" in err
            assert "s3://bucket/store" in err or "objstore://host:1" in err

    def test_distributed_without_store_names_results_dir(self, capsys):
        assert main(["campaign", "--backend", "distributed"]) == 2
        assert "--results-dir" in capsys.readouterr().err


# --------------------------------------------------------------------------
# objstore --max-page validation (PR 5 idiom)
# --------------------------------------------------------------------------


class TestMaxPageValidation:
    @pytest.mark.parametrize("bad", ["0", "-3", "nope"])
    def test_cli_rejects_bad_max_page_naming_flag(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["objstore", "--max-page", bad])
        assert excinfo.value.code == 2
        assert "--max-page" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", [0, -1, 2.5, True])
    def test_server_rejects_bad_max_page(self, bad):
        with pytest.raises(ValueError, match=re.escape("--max-page")):
            LocalObjectStore(("127.0.0.1", 0), max_page=bad)

    def test_server_accepts_valid_cap(self):
        server = LocalObjectStore(("127.0.0.1", 0), max_page=2)
        try:
            assert server.max_page == 2
        finally:
            server.server_close()


# --------------------------------------------------------------------------
# The /v1 HTTP API
# --------------------------------------------------------------------------


class TestServiceAPI:
    def test_health_and_readiness(self, service_server):
        _, client = service_server
        assert client.healthy()
        assert client.ready()

    def test_submit_runs_and_serves_inspect_document(
        self, service_server, tmp_path, capsys
    ):
        server, client = service_server
        store = str(tmp_path / "store")
        spec = _tiny_spec(store)
        response = client.submit(spec)
        assert response["id"] == spec.campaign_id()
        assert response["fingerprint"] == spec.fingerprint()
        assert response["spec"] == spec.to_dict()
        status = client.wait(response["id"], timeout=300)
        assert status["state"] == "complete"
        assert status["completed"] == status["total"] == 6
        assert status["stored_records"] == 6

        # Byte-identity: GET /v1/campaigns/{id} == inspect --json (satellite 2).
        json_path = str(tmp_path / "inspect.json")
        assert main(["inspect", store, "--json", json_path]) == 0
        capsys.readouterr()
        with open(json_path, "rb") as handle:
            cli_bytes = handle.read()
        http_bytes = client.document(response["id"])
        assert http_bytes == cli_bytes
        document = json.loads(http_bytes)
        assert document["schema"] == STORE_DOCUMENT_SCHEMA
        assert document["experiments"] == 6

        # Resubmission of the same document is idempotent.
        again = client.submit(spec)
        assert again["id"] == response["id"]
        assert [c["id"] for c in client.campaigns()] == [response["id"]]

        # Paper tables as JSON.
        tables = client.tables(response["id"])
        assert tables["schema"] == STORE_DOCUMENT_SCHEMA
        assert "deploy" in tables["table4_orchestrator_failures"]
        assert set(tables) >= {"table3_of_cf_matrix", "table5_client_failures"}

        # A second service over the same state rehydrates the completed
        # campaign as a terminal record without starting a runner.
        rehydrated = CampaignService(server.service.state_root)
        assert rehydrated.rehydrate() == 1
        assert rehydrated.list_campaigns()["campaigns"][0]["state"] == "complete"
        assert rehydrated.document_bytes(response["id"]) == cli_bytes

    def test_unknown_campaign_is_404(self, service_server):
        _, client = service_server
        with pytest.raises(ServiceError) as excinfo:
            client.describe("deadbeef00000000")
        assert excinfo.value.status == 404

    def test_invalid_spec_is_400_naming_field(self, service_server):
        _, client = service_server
        status, raw, _ = client._request(
            "POST", "/v1/campaigns", {"workloads": ["deploy"], "max_expermnts": 9}
        )
        assert status == 400
        assert "max_expermnts" in json.loads(raw)["error"]

    def test_store_url_required_for_service_campaigns(self, service_server):
        _, client = service_server
        with pytest.raises(ServiceError) as excinfo:
            client.submit(CampaignSpec(workloads=("deploy",)))
        assert excinfo.value.status == 400
        assert "store_url" in str(excinfo.value)

    def test_document_before_results_is_503(self, service_server, tmp_path):
        _, client = service_server
        # A distributed campaign with no workers: admitted, but its store
        # stays empty, so the document endpoint must defer, not 500.
        spec = _tiny_spec(str(tmp_path / "store"), backend="distributed")
        response = client.submit(spec)
        with pytest.raises(ServiceError) as excinfo:
            client.document(response["id"])
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after is not None
        client.cancel(response["id"])

    def test_quota_answers_429_with_retry_after(self, tmp_path):
        service = CampaignService(str(tmp_path / "state"), max_campaigns=1)
        server = CampaignServiceServer(("127.0.0.1", 0), service).start()
        client = ServiceClient(server.url)
        try:
            client.wait_ready(timeout=30)
            # Occupies the only slot forever: distributed, no workers.
            first = client.submit(
                _tiny_spec(str(tmp_path / "store-a"), backend="distributed")
            )
            with pytest.raises(ServiceError) as excinfo:
                client.submit(
                    _tiny_spec(str(tmp_path / "store-b"), backend="distributed")
                )
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == service.retry_after
            # DELETE cancels cooperatively and frees the slot.
            client.cancel(first["id"])
            status = client.wait(first["id"], timeout=60)
            assert status["state"] == "cancelled"
            second = client.submit(
                _tiny_spec(str(tmp_path / "store-b"), backend="distributed")
            )
            client.cancel(second["id"])
        finally:
            server.stop()

    def test_status_reports_distributed_provenance_shape(
        self, service_server, tmp_path
    ):
        _, client = service_server
        spec = _tiny_spec(str(tmp_path / "store"), backend="distributed")
        response = client.submit(spec)
        status = client.describe(response["id"])
        assert status["backend"] == "distributed"
        assert "slices_done" in status and "outstanding_leases" in status
        client.cancel(response["id"])


# --------------------------------------------------------------------------
# Statelessness: SIGKILL the service mid-campaign, restart, digest == serial
# --------------------------------------------------------------------------


def _spawn_service(state_root: str) -> tuple[subprocess.Popen, ServiceClient]:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--state", state_root,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    banner = process.stdout.readline()
    match = re.search(r"http://[\d.]+:\d+", banner)
    assert match, f"no service URL in banner: {banner!r}"
    client = ServiceClient(match.group(0))
    client.wait_ready(timeout=60)
    return process, client


def test_service_restart_mid_campaign_digest_identical_to_serial(
    tmp_path, serial_reference
):
    """The tentpole proof: kill the service mid-campaign, restart it against
    the same state store, and the rehydrated service resumes the campaign to
    an ``inspect --json`` digest byte-identical to the serial run."""
    serial_store, serial_digest = serial_reference
    state = str(tmp_path / "state")
    store = str(tmp_path / "store")

    process, client = _spawn_service(state)
    try:
        response = client.submit(_tiny_spec(store))
        campaign_id = response["id"]
        # Let it run until at least one shard is durable, then SIGKILL the
        # service mid-campaign (experiments are still outstanding).
        deadline = time.monotonic() + 300
        reader = ShardedResultStore(store)
        while True:
            reader.refresh()
            if reader.has_manifest() and 0 < reader.record_count():
                break
            assert time.monotonic() < deadline, "no shard appeared before deadline"
            time.sleep(0.1)
    finally:
        process.kill()
        process.wait()

    process, client = _spawn_service(state)
    try:
        # /readyz recovery implies the index was listed and the campaign
        # rehydrated; the resumed run must finish with zero replays.
        status = client.wait(campaign_id, timeout=300)
        assert status["state"] == "complete"
        assert status["completed"] == status["total"] == 6
        assert status["stored_records"] == 6
        document = json.loads(client.document(campaign_id))
        assert document["results_digest"] == serial_digest
        assert document["stored_records"] == document["experiments"] == 6
    finally:
        process.kill()
        process.wait()
