"""Unit and property-based tests for the wire codec and field paths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects.kinds import make_deployment, make_node, make_pod
from repro.serialization import (
    DecodeError,
    decode,
    delete_path,
    encode,
    get_path,
    iter_field_paths,
    set_path,
)
from repro.serialization.codec import EncodeError

# --------------------------------------------------------------------------
# Codec round trips
# --------------------------------------------------------------------------


def test_roundtrip_simple_object():
    obj = {"name": "web", "replicas": 3, "ready": True, "weight": 0.5, "note": None}
    assert decode(encode(obj)) == obj


def test_roundtrip_nested_and_lists():
    obj = {
        "metadata": {"labels": {"app": "web", "tier": "frontend"}},
        "spec": {"containers": [{"name": "c1", "ports": [{"containerPort": 8080}]}]},
    }
    assert decode(encode(obj)) == obj


def test_roundtrip_real_manifests():
    for manifest in (make_pod("p"), make_deployment("d", replicas=3), make_node("n")):
        assert decode(encode(manifest)) == manifest


def test_negative_and_large_integers():
    obj = {"a": -1, "b": -(2**40), "c": 2**40, "d": 0}
    assert decode(encode(obj)) == obj


def test_unicode_strings():
    obj = {"name": "wébapp-日本語", "empty": ""}
    assert decode(encode(obj)) == obj


def test_encode_rejects_non_dict_top_level():
    with pytest.raises(EncodeError):
        encode([1, 2, 3])


def test_encode_rejects_unsupported_value():
    with pytest.raises(EncodeError):
        encode({"x": object()})


def test_decode_rejects_non_bytes():
    with pytest.raises(DecodeError):
        decode("not bytes")


def test_decode_truncated_payload_fails():
    data = encode({"name": "webapp", "replicas": 3})
    with pytest.raises(DecodeError):
        decode(data[: len(data) - 2])


def test_decode_unknown_type_tag_fails():
    data = bytearray(encode({"a": 1}))
    # The type tag of the value follows the one-byte key length and the key.
    data[2] = 0x7F
    with pytest.raises(DecodeError):
        decode(bytes(data))


def test_some_bitflips_keep_object_decodable_with_wrong_value():
    obj = {"namespace": "default", "replicas": 2}
    data = bytearray(encode(obj))
    # Flip the LSB of the last byte of the string payload ('default' -> 'defaulu').
    decoded = None
    for index in range(len(data)):
        corrupted = bytearray(data)
        corrupted[index] ^= 1
        try:
            decoded = decode(bytes(corrupted))
        except DecodeError:
            continue
        if decoded != obj:
            break
    assert decoded is not None and decoded != obj


@settings(max_examples=200, deadline=None)
@given(
    st.recursive(
        st.one_of(
            st.integers(min_value=-(2**50), max_value=2**50),
            st.booleans(),
            st.text(max_size=20),
            st.none(),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=10), children, max_size=4),
        ),
        max_leaves=20,
    )
)
def test_roundtrip_property(value):
    obj = {"value": value}
    assert decode(encode(obj)) == obj


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=0, max_size=200))
def test_decode_never_crashes_unexpectedly(data):
    # Arbitrary bytes either decode into a dict or raise DecodeError — never
    # any other exception (the apiserver relies on this to purge bad objects).
    try:
        result = decode(data)
    except DecodeError:
        return
    assert isinstance(result, dict)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_single_bitflip_is_contained(bit):
    obj = make_pod("prop-pod", labels={"app": "x"})
    data = bytearray(encode(obj))
    index = bit % (len(data) * 8)
    byte_index, bit_index = divmod(index, 8)
    data[byte_index] ^= 1 << bit_index
    try:
        decode(bytes(data))
    except DecodeError:
        pass  # undecodable is an acceptable outcome; anything else must be a dict


# --------------------------------------------------------------------------
# Field paths
# --------------------------------------------------------------------------


def test_iter_field_paths_covers_leaves():
    obj = {"a": 1, "b": {"c": "x", "d": [True, {"e": None}]}}
    paths = {record.path: record for record in iter_field_paths(obj)}
    assert set(paths) == {"a", "b.c", "b.d.0", "b.d.1.e"}
    assert paths["a"].value_type == "int"
    assert paths["b.c"].value_type == "str"
    assert paths["b.d.0"].value_type == "bool"
    assert paths["b.d.1.e"].value_type == "none"


def test_get_and_set_path():
    obj = {"spec": {"containers": [{"image": "a"}]}}
    assert get_path(obj, "spec.containers.0.image") == "a"
    set_path(obj, "spec.containers.0.image", "b")
    assert obj["spec"]["containers"][0]["image"] == "b"


def test_get_path_missing_raises():
    with pytest.raises(KeyError):
        get_path({"a": 1}, "a.b")
    with pytest.raises(KeyError):
        get_path({"a": [1]}, "a.5")


def test_set_path_missing_parent_raises():
    with pytest.raises(KeyError):
        set_path({"a": {}}, "a.b.c", 1)


def test_delete_path():
    obj = {"a": {"b": 1, "c": 2}, "d": [1, 2, 3]}
    delete_path(obj, "a.b")
    delete_path(obj, "d.1")
    assert obj == {"a": {"c": 2}, "d": [1, 3]}
    with pytest.raises(KeyError):
        delete_path(obj, "a.missing")


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(st.text(min_size=1, max_size=8).filter(lambda s: "." not in s),
                       st.one_of(st.integers(), st.text(max_size=5), st.booleans()),
                       min_size=1, max_size=6))
def test_every_enumerated_path_is_gettable(obj):
    for record in iter_field_paths(obj):
        assert get_path(obj, record.path) == record.value
