"""Post-campaign analyses.

Implements the analyses of paper §V-C:

* critical-field analysis (F2) — which fields caused the most severe
  failures, and what fraction of those fields track dependency relationships
  between resource instances;
* user-error analysis (F4 / Figure 7) — how often the cluster user received
  an error for experiments that ended in each orchestrator failure category;
* client-impact analysis (Figure 6) — the distribution of client latency
  z-scores per orchestrator failure category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.core.classification import ClientFailure, OrchestratorFailure
from repro.core.experiment import ExperimentResult

#: Field-path fragments that track dependency relationships among resource
#: instances (labels, selectors, owner references, target references).
DEPENDENCY_FIELD_MARKERS = (
    "labels",
    "selector",
    "ownerReferences",
    "targetRef",
    "managed-by",
    "matchLabels",
    "matchExpressions",
)

#: Field-path fragments used by Kubernetes to identify a resource instance.
IDENTITY_FIELD_MARKERS = ("name", "namespace", "uid")

#: Field-path fragments related to networking.
NETWORKING_FIELD_MARKERS = ("ip", "port", "protocol", "clusterip", "podcidr", "address", "host")

#: Field-path fragments related to replica counts and images/commands.
REPLICA_FIELD_MARKERS = ("replicas",)
IMAGE_FIELD_MARKERS = ("image", "command")


def categorize_field(path: Optional[str]) -> str:
    """Classify a field path into the groups of the critical-field analysis."""
    if not path:
        return "serialization/message"
    lowered = path.lower()
    if any(marker.lower() in lowered for marker in DEPENDENCY_FIELD_MARKERS):
        return "dependency"
    if any(lowered == marker or lowered.endswith("." + marker) for marker in IDENTITY_FIELD_MARKERS):
        return "identity"
    if any(marker in lowered for marker in NETWORKING_FIELD_MARKERS):
        return "networking"
    if any(marker in lowered for marker in REPLICA_FIELD_MARKERS):
        return "replicas"
    if any(marker in lowered for marker in IMAGE_FIELD_MARKERS):
        return "image/command"
    return "other"


@dataclass
class CriticalFieldReport:
    """Output of the critical-field analysis (finding F2)."""

    #: Experiments that ended in Sta, Out, or a service-unreachable client failure.
    critical_experiments: int = 0
    #: Distinct (kind, field path) pairs among those experiments.
    critical_fields: list[tuple[str, str]] = field(default_factory=list)
    #: Injection counts per field category.
    injections_per_category: dict[str, int] = field(default_factory=dict)
    #: Distinct fields per category.
    fields_per_category: dict[str, int] = field(default_factory=dict)

    @property
    def dependency_share(self) -> float:
        """Fraction of critical injections that targeted dependency-tracking fields."""
        total = sum(self.injections_per_category.values())
        if not total:
            return 0.0
        return self.injections_per_category.get("dependency", 0) / total


def is_critical(result: ExperimentResult) -> bool:
    """True if the experiment ended in Sta, Out, or SU (the paper's critical set)."""
    return (
        result.orchestrator_failure in (OrchestratorFailure.STA, OrchestratorFailure.OUT)
        or result.client_failure == ClientFailure.SU
    )


def critical_field_analysis(results: Iterable[ExperimentResult]) -> CriticalFieldReport:
    """Run the critical-field analysis over a set of experiment results."""
    report = CriticalFieldReport()
    seen_fields: set[tuple[str, str]] = set()
    fields_by_category: dict[str, set[tuple[str, str]]] = {}
    for result in results:
        if result.fault is None or not is_critical(result):
            continue
        report.critical_experiments += 1
        category = categorize_field(result.fault.field_path)
        report.injections_per_category[category] = (
            report.injections_per_category.get(category, 0) + 1
        )
        key = (result.fault.kind, result.fault.field_path or "<message>")
        seen_fields.add(key)
        fields_by_category.setdefault(category, set()).add(key)
    report.critical_fields = sorted(seen_fields)
    report.fields_per_category = {
        category: len(fields) for category, fields in fields_by_category.items()
    }
    return report


@dataclass
class UserErrorReport:
    """Output of the user-error analysis (finding F4 / Figure 7)."""

    #: Per orchestrator-failure category: (total experiments, experiments in
    #: which the cluster user received an error).
    per_failure: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def silent_failure_fraction(self) -> float:
        """Fraction of failed experiments (OF != No) with no user-visible error."""
        failed = 0
        silent = 0
        for failure, (total, errored) in self.per_failure.items():
            if failure == OrchestratorFailure.NO.value:
                continue
            failed += total
            silent += total - errored
        if not failed:
            return 0.0
        return silent / failed


def user_error_analysis(results: Iterable[ExperimentResult]) -> UserErrorReport:
    """Count user-visible errors per orchestrator failure category."""
    report = UserErrorReport()
    for result in results:
        if result.orchestrator_failure is None:
            continue
        key = result.orchestrator_failure.value
        total, errored = report.per_failure.get(key, (0, 0))
        report.per_failure[key] = (total + 1, errored + (1 if result.user_received_error else 0))
    return report


@dataclass
class ClientImpactReport:
    """Output of the client-impact analysis (Figure 6)."""

    #: Per orchestrator-failure category: list of client MAE z-scores.
    zscores: dict[str, list[float]] = field(default_factory=dict)

    def summary(self) -> dict[str, dict[str, float]]:
        """Median / p90 / max z-score per failure category."""
        out: dict[str, dict[str, float]] = {}
        for failure, scores in self.zscores.items():
            if not scores:
                continue
            array = np.array(scores, dtype=float)
            out[failure] = {
                "count": float(len(scores)),
                "median": float(np.median(array)),
                "p90": float(np.percentile(array, 90)),
                "max": float(np.max(array)),
            }
        return out


def client_impact_analysis(results: Iterable[ExperimentResult]) -> ClientImpactReport:
    """Collect client z-scores per orchestrator failure category."""
    report = ClientImpactReport()
    for result in results:
        if result.orchestrator_failure is None:
            continue
        report.zscores.setdefault(result.orchestrator_failure.value, []).append(
            result.client_zscore
        )
    return report


def no_effect_fraction(results: Iterable[ExperimentResult]) -> float:
    """Fraction of injection experiments classified No (paper: ~70%).

    Folds streamingly: a store-backed result iterator is consumed one
    result at a time, never materialized.
    """
    total = 0
    none = 0
    for result in results:
        total += 1
        if result.orchestrator_failure == OrchestratorFailure.NO:
            none += 1
    if not total:
        return 0.0
    return none / total


def system_wide_fraction(results: Iterable[ExperimentResult]) -> float:
    """Fraction of injections that caused a system-wide failure (Sta or Out)."""
    total = 0
    critical = 0
    for result in results:
        total += 1
        if result.orchestrator_failure in (OrchestratorFailure.STA, OrchestratorFailure.OUT):
            critical += 1
    if not total:
        return 0.0
    return critical / total
