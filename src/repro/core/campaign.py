"""Fault/error injection campaign manager.

The campaign follows paper §IV-C:

1. record the fields of the resource instances written to etcd during a
   golden run of each orchestration workload;
2. generate injection experiments — for every recorded integer field a
   low-order and a high-order bit-flip plus a zero value-set, for every
   string field a least-significant-bit flip of the first two characters
   plus an empty-string value-set, an inversion for every boolean, each at
   occurrence indexes 1–3; per resource kind a batch of random
   serialization-byte flips and message drops at occurrence indexes 1–10;
3. drive the experiments, one injected fault per experiment, and classify
   each run against the workload's golden baseline.

The full campaign of the paper is ~8,800 experiments; the default
configuration here subsamples the generated specs so the campaign fits in a
benchmark run, and ``CampaignConfig.max_experiments_per_workload`` scales it
back up.

Execution is plan-then-execute: the campaign first plans every experiment
(including its seed), then hands the task list to the
:class:`repro.core.parallel.CampaignExecutor`, which shards it across worker
processes (``CampaignConfig.workers``) and merges the results back in plan
order.  A parallel run is therefore result-identical to a serial run of the
same configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.core.classification import (
    CampaignTally,
    ClientFailure,
    GoldenBaseline,
    OrchestratorFailure,
)
from repro.core.experiment import ExperimentConfig, ExperimentResult, ExperimentRunner
from repro.core.injector import FaultSpec, FaultType, InjectionChannel
from repro.core.parallel import (
    CampaignExecutor,
    ExperimentTask,
    ProgressCallback,
    WorkloadPrep,
    campaign_fingerprint,
    load_checkpoint_prep,
    prep_fingerprint,
)
from repro.core.resultstore import ShardedResultStore
from repro.serialization import iter_field_paths
from repro.sim.rng import DeterministicRNG
from repro.workloads.workload import WorkloadKind

if TYPE_CHECKING:  # circular at runtime: distributed imports this module
    import threading

    from repro.core.distributed import DistributedSettings

class CampaignCancelledError(RuntimeError):
    """Raised out of :meth:`Campaign.run` when its ``cancel`` event is set.

    Cancellation is cooperative: the local backend checks at every finished
    batch, the distributed coordinator at every poll round, so completed
    shards stay durable and a later run (or service restart) of the same
    spec resumes instead of replaying.
    """


def _cancellable_progress(
    progress: Optional[ProgressCallback], cancel: Optional["threading.Event"]
) -> Optional[ProgressCallback]:
    """Wrap ``progress`` so a set ``cancel`` event aborts at the next batch."""
    if cancel is None:
        return progress

    def guarded(done: int, total: int) -> None:
        if cancel.is_set():
            raise CampaignCancelledError("campaign run cancelled")
        if progress is not None:
            progress(done, total)

    return guarded


#: Kinds whose instance names are stable across runs (user- or boot-created),
#: so a fault spec can pin the exact instance.  Names of generated objects
#: (Pods, ReplicaSets, …) vary, so their specs match any instance of the kind.
PINNED_KINDS = frozenset(
    {"Deployment", "Service", "Node", "ConfigMap", "Namespace", "DaemonSet"}
)

#: Fields that are pure bookkeeping and not injected (the paper injects the
#: data used by orchestration operations, not the write counters themselves).
EXCLUDED_FIELD_SUFFIXES = ("resourceVersion", "creationTimestamp", "generation")

#: Top-level fields excluded from recording: the kind tag is the message type,
#: not data used by orchestration operations.
EXCLUDED_FIELD_PATHS = frozenset({"kind"})


@dataclass
class RecordedField:
    """One field observed in a golden-run Apiserver→etcd message."""

    kind: str
    name: str
    namespace: Optional[str]
    path: str
    value_type: str
    example_value: Any


class FieldRecorder:
    """Observer hook that records fields written to etcd during a golden run."""

    def __init__(self):
        self.fields: dict[tuple[str, str], RecordedField] = {}
        self.kinds_seen: set[str] = set()
        self.messages_per_kind: dict[str, int] = {}

    def __call__(self, context, data: bytes) -> None:
        from repro.serialization import DecodeError, decode

        self.kinds_seen.add(context.kind)
        self.messages_per_kind[context.kind] = self.messages_per_kind.get(context.kind, 0) + 1
        try:
            obj = decode(data)
        except DecodeError:
            return
        for record in iter_field_paths(obj):
            if record.value_type not in ("int", "str", "bool"):
                continue
            if record.path.endswith(EXCLUDED_FIELD_SUFFIXES) or record.path in EXCLUDED_FIELD_PATHS:
                continue
            key = (context.kind, record.path)
            if key in self.fields:
                continue
            self.fields[key] = RecordedField(
                kind=context.kind,
                name=context.name,
                namespace=context.namespace,
                path=record.path,
                value_type=record.value_type,
                example_value=record.value,
            )

    def recorded(self) -> list[RecordedField]:
        """All recorded fields in a stable order."""
        return [self.fields[key] for key in sorted(self.fields)]


@dataclass
class CampaignConfig:
    """Sizing of the campaign."""

    #: Workloads to run (defaults to all three).
    workloads: tuple[WorkloadKind, ...] = (
        WorkloadKind.DEPLOY,
        WorkloadKind.SCALE_UP,
        WorkloadKind.FAILOVER,
    )
    #: Golden runs per workload used to build the classification baseline.
    golden_runs: int = 3
    #: Occurrence indexes for field-level injections (paper: 1, 2, 3).
    occurrences: tuple[int, ...] = (1, 2, 3)
    #: Occurrence indexes for message drops (paper: 1..10).
    drop_occurrences: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
    #: Random serialization-byte injections per resource kind.
    proto_byte_injections_per_kind: int = 2
    #: Cap on the number of experiments actually run per workload
    #: (None = run the full generated campaign, paper scale).
    max_experiments_per_workload: Optional[int] = 60
    #: Seed controlling subsampling and proto-byte positions.
    seed: int = 7
    #: Worker processes used to execute the experiments (None = one per CPU,
    #: 1 = serial in-process execution).  Serial and parallel runs of the
    #: same configuration produce identical results.
    workers: Optional[int] = None
    #: Experiments per batch handed to a worker (None = sized automatically).
    chunk_size: Optional[int] = None
    #: Finished batches coalesced per stored shard object when streaming
    #: into a --results-dir (1 = the historical one-shard-per-batch layout).
    #: A storage-layout knob only: results and digests are unchanged, but a
    #: paper-scale campaign stores 1/N as many shard objects.
    shard_batch: int = 1
    #: Experiment timing/sizing.
    experiment: ExperimentConfig = field(default_factory=ExperimentConfig)


@dataclass
class PlannedExperiment:
    """One (workload, fault) pair scheduled for execution."""

    workload: WorkloadKind
    fault: FaultSpec


@dataclass
class CampaignResult:
    """All results of a campaign, with the aggregations the tables need.

    ``results`` is any re-iterable sequence of experiment results: the
    in-memory list of a small campaign, or the lazy
    :class:`~repro.core.resultstore.StoredResults` view of a streamed one.
    Every aggregate folds from a single streaming pass (cached on first
    use), so tallying a paper-scale campaign never materializes it.
    """

    results: Sequence[ExperimentResult] = field(default_factory=list)
    baselines: dict[str, GoldenBaseline] = field(default_factory=dict)
    recorded_fields: dict[str, list[RecordedField]] = field(default_factory=dict)
    _tally: Optional[CampaignTally] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------ aggregates

    @staticmethod
    def injection_family(fault: Optional[FaultSpec]) -> str:
        """Map a fault spec onto the paper's three injection families."""
        if fault is None:
            return "golden"
        if fault.fault_type in (FaultType.BIT_FLIP, FaultType.PROTO_BYTE_FLIP):
            return "Bit-flip"
        if fault.fault_type is FaultType.DATA_TYPE_SET:
            return "Value set"
        return "Drop"

    def tally(self) -> CampaignTally:
        """All classification tallies, folded in one streaming pass."""
        if self._tally is None:
            tally = CampaignTally()
            for result in self.results:
                tally.update(result, self.injection_family(result.fault))
            self._tally = tally
        return self._tally

    def of_counts(self) -> dict[tuple[str, str], dict[str, int]]:
        """(workload, injection family) -> counts per orchestrator failure (Table IV)."""
        return self.tally().of_counts

    def cf_counts(self) -> dict[tuple[str, str], dict[str, int]]:
        """(workload, injection family) -> counts per client failure (Table V)."""
        return self.tally().cf_counts

    def of_cf_matrix(self, workload: Optional[WorkloadKind] = None) -> dict[str, dict[str, int]]:
        """OF -> CF counts (Table III), optionally restricted to one workload."""
        return self.tally().matrix(workload.value if workload is not None else None)

    def critical_results(self) -> list[ExperimentResult]:
        """Experiments that caused Out, Sta, or a service-unreachable client failure.

        This materializes the (small) critical subset; use
        :meth:`critical_count` when only the number is needed.
        """
        critical = []
        for result in self.results:
            if result.orchestrator_failure in (OrchestratorFailure.STA, OrchestratorFailure.OUT):
                critical.append(result)
            elif result.client_failure == ClientFailure.SU:
                critical.append(result)
        return critical

    def critical_count(self) -> int:
        """Number of critical experiments (streaming; no materialization)."""
        return self.tally().critical

    def classification_counts(self) -> dict[str, int]:
        """Failure-class counts keyed ``"OF/CF"``, for drift checks and CLI output."""
        return self.tally().classification_counts()

    def activation_rate(self) -> float:
        """Fraction of injected experiments whose target was used afterwards."""
        return self.tally().activation_rate()

    def total_experiments(self) -> int:
        """Number of injection experiments run."""
        return self.tally().total


class Campaign:
    """Generates and runs a fault/error injection campaign."""

    def __init__(self, config: Optional[CampaignConfig] = None):
        self.config = config if config is not None else CampaignConfig()
        self.runner = ExperimentRunner(self.config.experiment)
        self.rng = DeterministicRNG(self.config.seed)

    # -------------------------------------------------------------- recording

    def record_fields(self, workload: WorkloadKind, seed: int = 50) -> list[RecordedField]:
        """Record the fields written to etcd during a golden run of ``workload``."""
        recorder = FieldRecorder()
        self.runner.run_golden(workload, seed=seed, etcd_observer=recorder)
        return recorder.recorded()

    # ------------------------------------------------------------- generation

    def generate(self, recorded: list[RecordedField]) -> list[FaultSpec]:
        """Generate the full set of fault specs for one workload (§IV-C rules)."""
        specs: list[FaultSpec] = []
        kinds = sorted({record.kind for record in recorded})

        for record in recorded:
            name = record.name if record.kind in PINNED_KINDS else None
            namespace = record.namespace if record.kind in PINNED_KINDS else None
            for occurrence in self.config.occurrences:
                specs.extend(
                    self._field_specs(record, name, namespace, occurrence)
                )

        for kind in kinds:
            for index in range(self.config.proto_byte_injections_per_kind):
                specs.append(
                    FaultSpec(
                        channel=InjectionChannel.APISERVER_TO_ETCD,
                        kind=kind,
                        fault_type=FaultType.PROTO_BYTE_FLIP,
                        bit_index=self.rng.randint(f"proto-{kind}-{index}", 0, 4095),
                        occurrence=1,
                    )
                )
            for occurrence in self.config.drop_occurrences:
                specs.append(
                    FaultSpec(
                        channel=InjectionChannel.APISERVER_TO_ETCD,
                        kind=kind,
                        fault_type=FaultType.MESSAGE_DROP,
                        occurrence=occurrence,
                    )
                )
        return specs

    def _field_specs(
        self, record: RecordedField, name, namespace, occurrence: int
    ) -> list[FaultSpec]:
        common = {
            "channel": InjectionChannel.APISERVER_TO_ETCD,
            "kind": record.kind,
            "field_path": record.path,
            "name": name,
            "namespace": namespace,
            "occurrence": occurrence,
        }
        if record.value_type == "int":
            return [
                FaultSpec(fault_type=FaultType.BIT_FLIP, bit_index=0, **common),
                FaultSpec(fault_type=FaultType.BIT_FLIP, bit_index=4, **common),
                FaultSpec(fault_type=FaultType.DATA_TYPE_SET, set_value=0, **common),
            ]
        if record.value_type == "str":
            return [
                FaultSpec(fault_type=FaultType.BIT_FLIP, bit_index=0, **common),
                FaultSpec(fault_type=FaultType.BIT_FLIP, bit_index=1, **common),
                FaultSpec(fault_type=FaultType.DATA_TYPE_SET, set_value="", **common),
            ]
        if record.value_type == "bool":
            return [FaultSpec(fault_type=FaultType.BIT_FLIP, bit_index=0, **common)]
        return []

    def plan(self, workload: WorkloadKind, recorded: list[RecordedField]) -> list[PlannedExperiment]:
        """Generate and (if configured) subsample the experiments for one workload.

        Subsampling is stratified over the three injection families so that a
        small campaign still exercises bit-flips, value-sets and message drops
        in roughly the proportions of the full campaign.
        """
        specs = self.generate(recorded)
        limit = self.config.max_experiments_per_workload
        if limit is None or len(specs) <= limit:
            return [PlannedExperiment(workload=workload, fault=spec) for spec in specs]

        families: dict[str, list[FaultSpec]] = {}
        for spec in specs:
            families.setdefault(CampaignResult.injection_family(spec), []).append(spec)
        chosen: list[FaultSpec] = []
        family_names = sorted(families)
        # Guarantee a minimum presence of every family, then fill proportionally.
        minimum = min(2, limit // max(len(family_names), 1))
        for name in family_names:
            shuffled = self.rng.shuffle(f"subsample-{workload.value}-{name}", families[name])
            families[name] = shuffled
            chosen.extend(shuffled[:minimum])
        remaining = limit - len(chosen)
        if remaining > 0:
            pool = []
            for name in family_names:
                pool.extend(families[name][minimum:])
            pool = self.rng.shuffle(f"subsample-{workload.value}-rest", pool)
            chosen.extend(pool[:remaining])
        chosen = chosen[:limit]
        return [PlannedExperiment(workload=workload, fault=spec) for spec in chosen]

    # -------------------------------------------------------------- execution

    def _executor(
        self,
        progress: Optional[ProgressCallback] = None,
        checkpoint_path: Optional[str] = None,
        results_dir: Optional[str] = None,
    ) -> CampaignExecutor:
        """Build the executor this campaign's configuration asks for."""
        return CampaignExecutor(
            self.config.experiment,
            workers=self.config.workers,
            chunk_size=self.config.chunk_size,
            progress=progress,
            checkpoint_path=checkpoint_path,
            results_dir=results_dir,
            shard_batch=self.config.shard_batch,
        )

    def _preps(self) -> list[WorkloadPrep]:
        return [
            WorkloadPrep(workload=workload, golden_runs=self.config.golden_runs, record_seed=50)
            for workload in self.config.workloads
        ]

    def plan_campaign(
        self,
        executor: Optional[CampaignExecutor] = None,
        prepared: Optional[list] = None,
    ) -> tuple[
        list[ExperimentTask],
        dict[str, GoldenBaseline],
        dict[str, list[RecordedField]],
    ]:
        """Prepare every workload and plan the full campaign.

        Golden baselines and field recording fan out across the executor (one
        prep per workload); spec generation and subsampling stay in the parent
        because the campaign RNG streams are shared across workloads.  Every
        planned task carries its seed, fixed by plan position, so execution
        order cannot change any experiment's outcome.  ``prepared`` lets the
        caller reuse preparation results (e.g. reloaded from a checkpoint).
        """
        if executor is None:
            with self._executor() as owned:
                return self.plan_campaign(owned, prepared=prepared)
        if prepared is None:
            prepared = executor.prepare_workloads(self._preps())

        tasks: list[ExperimentTask] = []
        baselines: dict[str, GoldenBaseline] = {}
        recorded_fields: dict[str, list[RecordedField]] = {}
        experiment_seed = 1000
        for workload, (baseline, recorded) in zip(self.config.workloads, prepared):
            baselines[workload.value] = baseline
            recorded_fields[workload.value] = recorded
            for planned in self.plan(workload, recorded):
                experiment_seed += 1
                tasks.append(
                    ExperimentTask(
                        index=len(tasks),
                        workload=planned.workload,
                        fault=planned.fault,
                        seed=experiment_seed,
                    )
                )
        return tasks, baselines, recorded_fields

    def run(
        self,
        progress: Optional[ProgressCallback] = None,
        checkpoint_path: Optional[str] = None,
        results_dir: Optional[str] = None,
        backend: str = "local",
        distributed: Optional["DistributedSettings"] = None,
        cancel: Optional["threading.Event"] = None,
    ) -> CampaignResult:
        """Run the whole campaign and return its results.

        ``progress`` is called as ``progress(done, total)`` whenever a batch
        of experiments completes.  Two persistence layouts are supported:

        * ``results_dir`` — the streaming sharded result store, rooted at a
          directory path or an ``objstore://host:port/bucket`` URL (the
          store picks its shard transport from the root's shape).  Workers
          serialize every finished batch to a compressed shard, the returned
          :class:`CampaignResult` holds a lazy plan-order view, and a rerun
          of the same configuration resumes by scanning the completed shards
          (replaying zero finished experiments).  Peak memory stays bounded
          by one batch no matter how large the campaign is — use this for
          paper-scale runs.
        * ``checkpoint_path`` — the legacy monolithic pickle checkpoint,
          rewritten after every batch; fine for small campaigns.

        Two execution backends are supported:

        * ``backend="local"`` — the process-pool
          :class:`~repro.core.parallel.CampaignExecutor` (the default).
        * ``backend="distributed"`` — this process becomes the
          *coordinator*: it prepares the baselines, publishes the frozen
          plan into ``results_dir`` (which is required and must be a store
          the workers can reach — a shared directory or an object-store
          URL), and watches/folds worker shards until the campaign
          completes.  Experiments execute in
          separate ``python -m repro.cli worker --results-dir ...``
          processes on any number of hosts; ``distributed`` tunes slice
          size, poll interval, and the overall deadline.  The merged result
          (and its store digest) is identical to a local run of the same
          configuration.

        ``cancel`` is an optional :class:`threading.Event`: once set, the
        run raises :class:`CampaignCancelledError` at the next batch (local)
        or poll round (distributed).  Completed shards survive, so a rerun
        of the same configuration resumes.
        """
        if backend not in ("local", "distributed"):
            raise ValueError(f"unknown campaign backend {backend!r}")
        if backend == "distributed" and not results_dir:
            raise ValueError("the distributed backend requires results_dir")
        progress = _cancellable_progress(progress, cancel)
        with self._executor(
            progress=progress, checkpoint_path=checkpoint_path, results_dir=results_dir
        ) as executor:
            prepared = None
            prep_digest = None
            store = None
            if checkpoint_path or results_dir:
                prep_digest = prep_fingerprint(self.config.experiment, self._preps())
            if checkpoint_path:
                prepared = load_checkpoint_prep(checkpoint_path, prep_digest)
            elif results_dir:
                store = ShardedResultStore(results_dir)
                prepared = store.load_prep(prep_digest)
            prep_was_loaded = prepared is not None
            tasks, baselines, recorded_fields = self.plan_campaign(executor, prepared=prepared)
            prepared_pairs = [
                (baselines[workload.value], recorded_fields[workload.value])
                for workload in self.config.workloads
            ]
            if backend == "distributed":
                return self._run_distributed(
                    results_dir,
                    tasks,
                    baselines,
                    recorded_fields,
                    prepared_pairs if not prep_was_loaded else None,
                    prep_digest,
                    distributed,
                    progress,
                    cancel,
                )
            # In both layouts the prep is persisted through the executor.
            # The checkpoint re-attaches it on every write (resumed or not);
            # the store writes it once, and only after the store's campaign
            # fingerprint has been validated, so a mis-pointed --results-dir
            # is rejected before anything inside the foreign store is touched.
            if checkpoint_path or (results_dir and not prep_was_loaded):
                executor.set_checkpoint_prep(prep_digest, prepared_pairs)
            results = executor.run_experiments(tasks, baselines=baselines)
        return CampaignResult(
            results=results, baselines=baselines, recorded_fields=recorded_fields
        )

    def _run_distributed(
        self,
        results_dir: str,
        tasks: list[ExperimentTask],
        baselines: dict[str, GoldenBaseline],
        recorded_fields: dict[str, list[RecordedField]],
        fresh_prep: Optional[list],
        prep_digest: Optional[str],
        settings: Optional["DistributedSettings"],
        progress: Optional[ProgressCallback],
        cancel: Optional["threading.Event"] = None,
    ) -> CampaignResult:
        """The coordinator side of a distributed campaign.

        Publishes the frozen plan (idempotent on resume, hard error on a
        foreign store), persists freshly computed prep — only after the
        store's fingerprint check passed, preserving the mis-pointed
        ``--results-dir`` invariant — then watches the shared directory and
        folds worker shards into the streaming tally until every plan index
        is stored.
        """
        from repro.core.distributed import DistributedCoordinator

        fingerprint = campaign_fingerprint(tasks, self.config.experiment, baselines)
        coordinator = DistributedCoordinator(
            results_dir,
            tasks,
            baselines,
            self.config.experiment,
            fingerprint=fingerprint,
            settings=settings,
            progress=progress,
            # Published with the plan so every worker inherits the
            # coalescing factor (a worker's own --shard-batch overrides).
            shard_batch=self.config.shard_batch,
        )
        coordinator.publish()
        if fresh_prep is not None:
            ShardedResultStore(results_dir).save_prep(prep_digest, fresh_prep)
        results, tally = coordinator.watch(cancel=cancel)
        return CampaignResult(
            results=results,
            baselines=baselines,
            recorded_fields=recorded_fields,
            _tally=tally,
        )

    # ---------------------------------------------------- propagation (VI-C4)

    def run_propagation(
        self,
        components: tuple[str, ...] = ("kube-controller-manager", "kube-scheduler", "kubelet"),
        fields_per_component: int = 10,
        progress: Optional[ProgressCallback] = None,
    ) -> list[dict]:
        """Run the Table VI propagation experiments.

        Bit-flips are injected into the messages the given components send to
        the Apiserver; each row reports whether the corrupted value propagated
        to etcd (the request was accepted) or an error was logged.  Like
        :meth:`run`, the experiments are planned first and executed through
        the (possibly parallel) campaign executor.
        """
        with self._executor(progress=progress) as executor:
            return self._run_propagation(executor, components, fields_per_component)

    def _run_propagation(
        self,
        executor: CampaignExecutor,
        components: tuple[str, ...],
        fields_per_component: int,
    ) -> list[dict]:
        preps = [
            WorkloadPrep(workload=workload, golden_runs=0, record_seed=60)
            for workload in self.config.workloads
        ]
        prepared = executor.prepare_workloads(preps)

        tasks: list[ExperimentTask] = []
        groups: list[tuple[WorkloadKind, str, list[int]]] = []
        experiment_seed = 9000
        for workload, (_, recorded) in zip(self.config.workloads, prepared):
            for component in components:
                relevant = [
                    record
                    for record in recorded
                    if record.kind in self._component_kinds(component)
                ][:fields_per_component]
                indexes: list[int] = []
                for record in relevant:
                    experiment_seed += 1
                    spec = FaultSpec(
                        channel=InjectionChannel.COMPONENT_TO_APISERVER,
                        kind=record.kind,
                        field_path=record.path,
                        component=component,
                        fault_type=FaultType.BIT_FLIP,
                        bit_index=0,
                        occurrence=1,
                    )
                    indexes.append(len(tasks))
                    tasks.append(
                        ExperimentTask(
                            index=len(tasks),
                            workload=workload,
                            fault=spec,
                            seed=experiment_seed,
                        )
                    )
                groups.append((workload, component, indexes))

        results = executor.run_experiments(tasks)
        rows = []
        for workload, component, indexes in groups:
            injections = 0
            propagated = 0
            errors = 0
            for index in indexes:
                result = results[index]
                if not result.injected:
                    continue
                injections += 1
                if result.component_error_count > 0:
                    errors += 1
                else:
                    propagated += 1
            rows.append(
                {
                    "workload": workload.value,
                    "component": component,
                    "injections": injections,
                    "propagated": propagated,
                    "errors": errors,
                }
            )
        return rows

    @staticmethod
    def _component_kinds(component: str) -> set[str]:
        if component == "kube-controller-manager":
            return {"Pod", "ReplicaSet", "Deployment", "DaemonSet", "Endpoints", "Node"}
        if component == "kube-scheduler":
            return {"Pod"}
        return {"Pod", "Node", "Lease"}
