"""Streaming, sharded result store for paper-scale campaigns.

The paper's full campaign is ~8,800 experiments (§IV-C); materializing every
:class:`~repro.core.experiment.ExperimentResult` in the parent process and
rewriting a monolithic checkpoint after every batch caps campaign scale well
below that.  This module stores results the way the executor produces them:
each worker serializes its finished batch straight to one compressed JSONL
shard (written atomically, gzip with a fixed mtime so shard bytes are
reproducible), and the parent only ever tracks *indexes*.  Peak resident
memory is therefore bounded by one batch regardless of campaign size, and
resuming an interrupted campaign is a scan of the completed shards rather
than a deserialization of everything done so far.

The store talks to its bytes through a pluggable
:class:`~repro.core.transport.ShardTransport`, selected by the shape of the
root string: a filesystem path (the original shared-directory layout, byte
for byte) or an ``objstore://host:port/bucket`` URL for workers with no
common filesystem.  Layout of a store, in transport keys::

    <root>/MANIFEST.json             # {"version", "fingerprint", "total"}
    <root>/prep.pkl                  # golden baselines + field recordings
    <root>/shards/shard-<first>-<last>.jsonl.gz

Every shard line is ``{"index": <plan index>, "result": <result dict>}``.
A shard that was truncated mid-write (e.g. the machine died) is readable up
to its last complete record; the missing experiments are simply re-run into
a fresh shard on resume.

With batched upload (:class:`BatchedShardWriter`, ``--shard-batch N``) one
shard object holds up to N batches, each a self-contained gzip member
appended under a generation precondition; the shard's name keeps the index
span of its *first* batch (names are ordering hints — the records inside,
each carrying its own plan index, are the ground truth).  Readers are
unchanged: a gzip stream of concatenated members decompresses as one
stream, and a torn trailing member reads as an ordinary truncated shard.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import pickle
import threading
from dataclasses import fields as dataclass_fields
from typing import Any, Iterable, Iterator, Optional

from repro.core.classification import (
    ClientFailure,
    ClientObservations,
    OrchestratorFailure,
    OrchestratorObservations,
)
from repro.core.experiment import ExperimentResult
from repro.core.injector import FaultSpec, FaultType, InjectionChannel
from repro.core.transport import TransportKeyError, transport_for

# Re-exported: this module was the historical home of the POSIX atomic-write
# primitives, and the checkpoint writer and tests still import them here.
from repro.core.transport import atomic_write_bytes, fsync_directory  # noqa: F401
from repro.workloads.workload import WorkloadKind

#: Format version of the store layout (bumped on layout changes).
STORE_VERSION = 1

_MANIFEST_NAME = "MANIFEST.json"
_PREP_NAME = "prep.pkl"
_SHARD_DIR = "shards"


class ResultStoreMismatchError(RuntimeError):
    """A result store (or checkpoint) does not belong to this campaign."""


# --------------------------------------------------------------------------
# JSON codec for ExperimentResult (and the dataclasses it embeds)
# --------------------------------------------------------------------------


def fault_to_dict(fault: Optional[FaultSpec]) -> Optional[dict]:
    """JSON-serializable form of a fault spec (None stays None)."""
    if fault is None:
        return None
    return {
        "channel": fault.channel.value,
        "kind": fault.kind,
        "field_path": fault.field_path,
        "name": fault.name,
        "namespace": fault.namespace,
        "component": fault.component,
        "fault_type": fault.fault_type.value,
        "bit_index": fault.bit_index,
        "set_value": fault.set_value,
        "occurrence": fault.occurrence,
    }


def fault_from_dict(data: Optional[dict]) -> Optional[FaultSpec]:
    """Inverse of :func:`fault_to_dict`."""
    if data is None:
        return None
    return FaultSpec(
        channel=InjectionChannel(data["channel"]),
        kind=data["kind"],
        field_path=data["field_path"],
        name=data["name"],
        namespace=data["namespace"],
        component=data["component"],
        fault_type=FaultType(data["fault_type"]),
        bit_index=data["bit_index"],
        set_value=data["set_value"],
        occurrence=data["occurrence"],
    )


def _dataclass_to_dict(value: Any) -> dict:
    return {f.name: getattr(value, f.name) for f in dataclass_fields(value)}


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-serializable form of one experiment result (all fields)."""
    return {
        "workload": result.workload.value,
        "fault": fault_to_dict(result.fault),
        "seed": result.seed,
        "injected": result.injected,
        "activated": result.activated,
        "dropped": result.dropped,
        "orchestrator_failure": (
            result.orchestrator_failure.value if result.orchestrator_failure else None
        ),
        "client_failure": result.client_failure.value if result.client_failure else None,
        "client_zscore": result.client_zscore,
        "orchestrator_observations": _dataclass_to_dict(result.orchestrator_observations),
        "client_observations": _dataclass_to_dict(result.client_observations),
        "latency_series": result.latency_series,
        "user_error_count": result.user_error_count,
        "user_request_count": result.user_request_count,
        "component_error_count": result.component_error_count,
        "injection_time": result.injection_time,
        "pods_created": result.pods_created,
        "workload_started_at": result.workload_started_at,
        "finished_at": result.finished_at,
    }


def result_from_dict(data: dict) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`."""
    return ExperimentResult(
        workload=WorkloadKind(data["workload"]),
        fault=fault_from_dict(data["fault"]),
        seed=data["seed"],
        injected=data["injected"],
        activated=data["activated"],
        dropped=data["dropped"],
        orchestrator_failure=(
            OrchestratorFailure(data["orchestrator_failure"])
            if data["orchestrator_failure"]
            else None
        ),
        client_failure=(
            ClientFailure(data["client_failure"]) if data["client_failure"] else None
        ),
        client_zscore=data["client_zscore"],
        orchestrator_observations=OrchestratorObservations(
            **data["orchestrator_observations"]
        ),
        client_observations=ClientObservations(**data["client_observations"]),
        latency_series=data["latency_series"],
        user_error_count=data["user_error_count"],
        user_request_count=data["user_request_count"],
        component_error_count=data["component_error_count"],
        injection_time=data["injection_time"],
        pods_created=data["pods_created"],
        workload_started_at=data["workload_started_at"],
        finished_at=data["finished_at"],
    )


def _canonical_line(index: int, result_data: dict) -> str:
    """One canonical JSONL record (stable key order, compact separators)."""
    return json.dumps(
        {"index": index, "result": result_data}, sort_keys=True, separators=(",", ":")
    )


def _encode_member(records: list[tuple[int, dict]]) -> bytes:
    """One batch of records as a self-contained gzip member (fixed mtime, so
    identical records always produce identical bytes).  Gzip members
    concatenate into one valid stream, which is what lets the batched shard
    writer extend an existing shard object with a plain byte append."""
    buffer = io.BytesIO()
    with gzip.GzipFile(filename="", mode="wb", fileobj=buffer, mtime=0) as stream:
        for index, data in records:
            stream.write(_canonical_line(index, data).encode("utf-8") + b"\n")
    return buffer.getvalue()


def _shard_key_for(records: list[tuple[int, dict]]) -> str:
    """The shard key a batch lands under (named by the batch's index span;
    a batched shard keeps the name of its *first* batch as later batches
    are appended — the name is an ordering hint, never ground truth)."""
    indexes = [index for index, _ in records]
    return f"{_SHARD_DIR}/shard-{min(indexes):08d}-{max(indexes):08d}.jsonl.gz"


# --------------------------------------------------------------------------
# The store
# --------------------------------------------------------------------------


class ShardedResultStore:
    """A directory of gzip JSONL shards holding completed experiment results.

    The store is safe for the executor's access pattern: many writers each
    append *distinct* shards (one per completed batch, atomic rename), one
    reader scans/merges.  Readers never hold more than one decompressed
    shard in memory.
    """

    def __init__(self, root: str):
        self.root = root
        self.transport = transport_for(root)
        #: Lazily built map of completed plan index -> shard key.
        self._index_map: Optional[dict[int, str]] = None
        #: One-shard read cache: (key, {index: result dict}).
        self._cached_key: Optional[str] = None
        self._cached_shard: dict[int, dict] = {}
        #: Per-shard parse cache: key -> (generation token, record indexes).
        #: A shard's content is stable for a given generation, so a repeat
        #: scan (the distributed coordinator/workers poll the store every
        #: few hundred milliseconds) only decompresses keys whose generation
        #: it has never seen — not the whole store again.  The generation
        #: token (size + mtime + identity, not size alone) catches every way
        #: a same-named shard can change content: a truncated shard whose
        #: readable prefix parsed being atomically replaced by an equal-size
        #: rewrite, and — since batched upload — a live shard a worker is
        #: still extending with appended batches.
        self._shard_record_cache: dict[str, tuple[str, list[int]]] = {}

    # ------------------------------------------------------------- manifest

    def _manifest_path(self) -> str:
        return self.transport.locate(_MANIFEST_NAME)

    def has_manifest(self) -> bool:
        """Whether this root holds a result store at all (for the CLI)."""
        return self.transport.stat(_MANIFEST_NAME) is not None

    def open(self, fingerprint: str, total: int) -> None:
        """Create the store (or verify it belongs to this campaign).

        A store written by a different plan/configuration is rejected instead
        of being silently mixed in, exactly like the pickle checkpoints.
        """
        try:
            raw = self.transport.get(_MANIFEST_NAME)
        except TransportKeyError:
            raw = None
        if raw is not None:
            try:
                manifest = json.loads(raw)
            except ValueError as error:
                raise ResultStoreMismatchError(
                    f"result store {self.root!r} has an unreadable manifest ({error}); "
                    "delete the store (or point --results-dir elsewhere) to start fresh"
                ) from error
            if (
                manifest.get("version") != STORE_VERSION
                or manifest.get("fingerprint") != fingerprint
            ):
                raise ResultStoreMismatchError(
                    f"result store {self.root!r} was written by a different campaign "
                    "plan; delete the store (or point --results-dir elsewhere) "
                    "to start fresh"
                )
            return
        payload = {"version": STORE_VERSION, "fingerprint": fingerprint, "total": total}
        self.transport.put(
            _MANIFEST_NAME, (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        )

    def manifest(self) -> dict:
        """The manifest of an existing store (for `campaign inspect`).

        Raises :class:`~repro.core.transport.TransportKeyError` when the root
        holds no store at all.
        """
        return json.loads(self.transport.get(_MANIFEST_NAME))

    # ----------------------------------------------------------------- prep

    def save_prep(self, fingerprint: str, prepared: list) -> None:
        """Persist the golden baselines + field recordings (pickle, atomic)."""
        payload = {
            "version": STORE_VERSION,
            "fingerprint": fingerprint,
            "prepared": prepared,
        }
        buffer = io.BytesIO()
        pickle.dump(payload, buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self.transport.put(_PREP_NAME, buffer.getvalue())

    def load_prep(self, fingerprint: str) -> Optional[list]:
        """Load the prepared baselines/recordings (None = recompute).

        Prep written under a *different* configuration raises right away:
        its results could never be merged either, and failing before the
        expensive golden-baseline recomputation beats failing after it.
        """
        try:
            payload = pickle.loads(self.transport.get(_PREP_NAME))
            if payload.get("version") != STORE_VERSION:
                return None
            stored = payload.get("fingerprint")
        except TransportKeyError:
            return None
        # mutiny-lint: disable=MUT005 -- deliberate: unreadable prep degrades to recomputation; the fingerprint mismatch case still raises below
        except Exception:  # noqa: BLE001 - unreadable prep just means "recompute"
            return None
        if stored != fingerprint:
            raise ResultStoreMismatchError(
                f"result store {self.root!r} holds workload preparation from a "
                "different campaign configuration; delete the directory (or point "
                "--results-dir elsewhere) to start fresh"
            )
        return payload.get("prepared")

    # -------------------------------------------------------------- writing

    def write_shard(self, records: list[tuple[int, ExperimentResult]]) -> str:
        """Serialize one completed batch to a new shard, atomically.

        Called from worker processes; each batch covers a distinct set of
        plan indexes, so shard names never collide across workers.  The gzip
        stream is written with ``mtime=0`` so identical results produce
        byte-identical shards.
        """
        return self.write_shard_dicts(
            [(index, result_to_dict(result)) for index, result in records]
        )

    def write_shard_dicts(self, records: list[tuple[int, dict]]) -> str:
        """:meth:`write_shard` for records already in their canonical dict
        form — the federation merge streams raw records between stores
        without round-tripping them through result objects."""
        if not records:
            raise ValueError("refusing to write an empty shard")
        key = _shard_key_for(records)
        self.transport.put(key, _encode_member(records))
        self._index_map = None  # the completed set changed
        return self.transport.locate(key)

    def batched_writer(self, batches_per_shard: int) -> "BatchedShardWriter":
        """A writer coalescing N finished batches into one shard object."""
        return BatchedShardWriter(self, batches_per_shard)

    # ------------------------------------------------------------- scanning

    def iter_shard_keys(self) -> Iterator[str]:
        """Stream the shard keys in name (== first-index) order.

        Built on the transport's paginated/streamed listing, so scanning a
        store with hundreds of thousands of shards never materializes the
        full key set in this layer (the object store serves bounded pages,
        POSIX walks a directory scan).
        """
        for key in self.transport.list_iter(f"{_SHARD_DIR}/"):
            if key.rpartition("/")[2].startswith("shard-") and key.endswith(".jsonl.gz"):
                yield key

    def shard_keys(self) -> list[str]:
        """All shard keys, in name (== first-index) order."""
        return list(self.iter_shard_keys())

    def shard_paths(self) -> list[str]:
        """All shard addresses (paths/URLs), in name (== first-index) order."""
        return [self.transport.locate(key) for key in self.shard_keys()]

    def _iter_shard_records(self, key: str) -> Iterator[tuple[int, dict]]:
        """Yield the complete ``(index, result dict)`` records of one shard.

        A shard truncated mid-write yields its readable prefix: the gzip
        stream may end abruptly (EOFError), the last line may be cut short
        (json error), or a record may have been cut between its ``"index"``
        and its ``"result"``; each simply ends the shard.
        """
        try:
            payload = self.transport.get(key)
        except (TransportKeyError, OSError):
            # Absent (raced a reclaim) or transiently unreadable (networked
            # shared filesystem hiccup): skipped now, rescanned next poll —
            # the historical tolerance of the gzip.open path.
            return
        try:
            with gzip.GzipFile(fileobj=io.BytesIO(payload), mode="rb") as stream:
                for raw in stream:
                    if not raw.endswith(b"\n"):
                        return  # incomplete trailing record
                    try:
                        record = json.loads(raw)
                    except ValueError:
                        return
                    if not isinstance(record, dict) or "index" not in record:
                        return
                    result = record.get("result")
                    if not isinstance(result, dict) or not result:
                        # A record that kept its index but lost its result is
                        # as truncated as a cut line; yielding a placeholder
                        # here used to explode much later, as a KeyError deep
                        # inside result_from_dict during aggregation.
                        return
                    yield int(record["index"]), result
        except (EOFError, OSError, gzip.BadGzipFile):
            return

    def refresh(self) -> None:
        """Drop the cached index map (new shards may have appeared).

        Workers write shards through their own store instances, so a parent
        that scanned before execution must refresh before reading.  The
        per-shard parse cache survives: already-seen shards are immutable,
        so a refresh only costs parsing whatever is genuinely new.
        """
        self._index_map = None
        self._cached_key = None
        self._cached_shard = {}

    def _shard_indexes(self, key: str) -> list[int]:
        """The record indexes of one shard (cached; shards are immutable)."""
        stat = self.transport.stat(key)
        if stat is None:
            return []
        cached = self._shard_record_cache.get(key)
        if cached is not None and cached[0] == stat.generation:
            return cached[1]
        indexes: list[int] = []
        records: dict[int, dict] = {}
        for index, data in self._iter_shard_records(key):
            indexes.append(index)
            records[index] = data
        self._shard_record_cache[key] = (stat.generation, indexes)
        # Hand the decompressed records to the one-shard read cache: the
        # common next step (the coordinator folding the indexes this scan
        # just discovered) then reads them without gunzipping the shard a
        # second time.  Memory stays bounded by one shard as before.
        self._cached_key = key
        self._cached_shard = records
        return indexes

    def completed_indexes(self) -> dict[int, str]:
        """Map every completed plan index onto the shard key that holds it.

        This is the whole resume scan: O(completed shards) on first use and
        O(*new* shards) after a :meth:`refresh`, no result object is
        materialized.  Later shards win when a re-run rewrote an index.
        """
        if self._index_map is None:
            index_map: dict[int, str] = {}
            for key in self.iter_shard_keys():
                for index in self._shard_indexes(key):
                    index_map[index] = key
            self._index_map = index_map
        return self._index_map

    # -------------------------------------------------------------- reading

    def _load_shard(self, key: str) -> dict[int, dict]:
        """Decompress one shard into an index->dict map (the unit of caching)."""
        return {index: data for index, data in self._iter_shard_records(key)}

    def _shard_for(self, index: int) -> dict[int, dict]:
        key = self.completed_indexes().get(index)
        if key is None:
            raise KeyError(f"result index {index} is not in the store {self.root!r}")
        if key != self._cached_key:
            self._cached_shard = self._load_shard(key)
            self._cached_key = key
        return self._cached_shard

    def load_record(self, index: int) -> dict:
        """One result's canonical dict form (no object reconstruction) —
        what :meth:`results_digest` hashes and federation copies."""
        return self._shard_for(index)[index]

    def load_result(self, index: int) -> ExperimentResult:
        """Load one result by plan index (caches the containing shard)."""
        return result_from_dict(self._shard_for(index)[index])

    def iter_results(self, indexes: Iterable[int]) -> Iterator[ExperimentResult]:
        """Yield results for ``indexes`` in the given order.

        Because the executor writes plan-contiguous batches, iterating in
        plan order decompresses every shard exactly once and keeps at most
        one shard in memory.
        """
        for index in indexes:
            yield self.load_result(index)

    def iter_all(self) -> Iterator[ExperimentResult]:
        """Yield every stored result in plan-index order."""
        return self.iter_results(sorted(self.completed_indexes()))

    def all_results(self) -> "StoredResults":
        """A lazy, re-iterable view over every stored result (plan order)."""
        return StoredResults(self, sorted(self.completed_indexes()))

    # ------------------------------------------------------------ summaries

    def record_count(self) -> int:
        """Number of distinct completed experiments in the store."""
        return len(self.completed_indexes())

    def stored_record_count(self) -> int:
        """Raw record count across every shard, *counting duplicates*.

        Results are deterministic, so a replayed experiment rewrites an
        identical record and can never corrupt the merged digest — but it is
        wasted work.  A healthy campaign (local resume or distributed
        workers) therefore keeps this equal to :meth:`record_count`; CI
        asserts exactly that to prove a reclaimed worker slice replayed
        nothing that was already stored.  Served from the per-shard parse
        cache, so after a completed-index scan this costs one stat per
        shard, not a second decompression pass.
        """
        return sum(len(self._shard_indexes(key)) for key in self.iter_shard_keys())

    def compressed_bytes(self) -> int:
        """Total stored size of the shards."""
        total = 0
        for key in self.iter_shard_keys():
            stat = self.transport.stat(key)
            if stat is not None:
                total += stat.size
        return total

    def results_digest(self) -> str:
        """SHA-256 over the canonical records in plan-index order.

        Serial and parallel runs of the same campaign chunk the plan
        differently (different shard files) but must store identical result
        records, so their digests must match; CI diffs exactly this.
        """
        digest = hashlib.sha256()
        index_map = self.completed_indexes()
        for index in sorted(index_map):
            data = self._shard_for(index)[index]
            digest.update(_canonical_line(index, data).encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()


class BatchedShardWriter:
    """Coalesces N finished batches into one shard object via transport appends.

    A per-batch PUT makes very large campaigns pay one object (and one
    listing entry, and one store request) per batch; at paper scale that is
    the same single-choke-point failure mode the Mutiny paper documents for
    control planes.  The batched writer keeps the durability of per-batch
    uploads — every batch still hits the store the moment it completes — but
    *appends* batches 2..N of a group to the shard object batch 1 created
    (each batch is a self-contained gzip member; members concatenate into
    one valid shard stream), so a campaign with ``--shard-batch 8`` stores
    an eighth of the objects.

    Appends are generation-conditional: the writer extends only the exact
    object state it last produced.  If the precondition ever fails (the
    shard was replaced behind our back — e.g. a reclaimed slice re-ran the
    same indexes), the writer falls back to starting a fresh group with the
    current batch rather than guessing, and nothing is lost: records are
    keyed by plan index, and duplicate records are byte-identical by
    determinism.

    One writer serves one worker's batch loop; the open-group bookkeeping
    (``_key``/``_generation``/``_batches_in_group``) is nevertheless guarded
    by ``self._lock`` — a threaded executor that hands one writer to several
    submitters must not tear the group state, and the lock's cost is noise
    next to the store round-trip it wraps.

    Trade-off to know: every append gives the open shard a new generation,
    so a poller that scans between appends re-downloads and re-parses the
    *growing* object (the parse cache keys on generation).  That cost is
    bounded by N × one shard — keep ``batches_per_shard`` moderate (the
    4-16 range) and the object-count/listing win dwarfs it; a ranged-read
    tail parse is the upgrade path if a profile ever says otherwise.
    """

    # Guarded by self._lock (enforced by mutiny-lint MUT004).
    _lock_guarded = ("_key", "_generation", "_batches_in_group")

    def __init__(self, store: ShardedResultStore, batches_per_shard: int):
        if batches_per_shard < 1:
            raise ValueError(f"batches_per_shard must be >= 1, got {batches_per_shard}")
        self.store = store
        self.batches_per_shard = batches_per_shard
        self._lock = threading.Lock()
        self._key: Optional[str] = None
        self._generation: Optional[str] = None
        self._batches_in_group = 0

    def write(self, records: list[tuple[int, ExperimentResult]]) -> str:
        """Persist one finished batch (durable on return); returns the
        address of the shard object holding it."""
        return self.write_dicts(
            [(index, result_to_dict(result)) for index, result in records]
        )

    def write_dicts(self, records: list[tuple[int, dict]]) -> str:
        if not records:
            raise ValueError("refusing to write an empty batch")
        member = _encode_member(records)
        with self._lock:
            return self._write_member_locked(records, member)

    def _write_member_locked(self, records: list[tuple[int, dict]], member: bytes) -> str:
        transport = self.store.transport
        if (
            self._key is not None
            and self._generation is not None
            and self._batches_in_group < self.batches_per_shard
        ):
            # mutiny-lint: disable=MUT007 -- generation chaining *requires* serializing append round-trips under the group lock: a concurrent append would fork the open shard's generation (see class docstring)
            generation = transport.append(self._key, member, self._generation)
            if generation is not None:
                self._generation = generation
                self._batches_in_group += 1
                self.store._index_map = None  # the completed set changed
                return transport.locate(self._key)
            # The open shard changed hands (replaced or removed) — abandon
            # the group and land this batch in a fresh shard of its own.
        key = _shard_key_for(records)
        # mutiny-lint: disable=MUT007 -- opening a fresh shard group must publish the first member before any concurrent submitter can chain onto it; serialized by design
        generation = transport.append(key, member, None)
        if generation is None:
            # The key already exists: a predecessor (or a racing replay of
            # the same slice) stored bytes under this name.  Never blindly
            # overwrite — the object may hold *more* than this batch, e.g.
            # later members a lease-losing predecessor appended before it
            # noticed ("already written shards always survive").  Whatever
            # is readable there stays readable: if it already covers this
            # batch, skip the write outright (deterministic results make
            # the bytes interchangeable); otherwise rewrite the readable
            # records and this batch together, each index exactly once.
            existing = dict(self.store._iter_shard_records(key))
            ours = dict(records)
            self._key = None
            self._generation = None
            self._batches_in_group = 0
            if not set(ours) <= set(existing):
                merged = sorted({**existing, **ours}.items())
                # mutiny-lint: disable=MUT007 -- the read-merge-rewrite of a collided shard key must not interleave with another append to the same writer; serialized by design
                transport.put(key, _encode_member(merged))
            self.store._index_map = None  # the completed set changed
            return transport.locate(key)
        self._key = key
        self._generation = generation
        self._batches_in_group = 1
        self.store._index_map = None  # the completed set changed
        return transport.locate(key)


class StoredResults:
    """A lazy, re-iterable plan-order view over a :class:`ShardedResultStore`.

    Behaves like the result list the executor used to return — ``len``,
    indexing, repeated iteration — but materializes one shard at a time, so
    holding the view costs O(1) memory regardless of campaign size.
    """

    def __init__(self, store: ShardedResultStore, indexes: list[int]):
        self.store = store
        self.indexes = list(indexes)

    def __len__(self) -> int:
        return len(self.indexes)

    def __iter__(self) -> Iterator[ExperimentResult]:
        return self.store.iter_results(self.indexes)

    def __getitem__(self, position):
        if isinstance(position, slice):
            return [self.store.load_result(i) for i in self.indexes[position]]
        return self.store.load_result(self.indexes[position])

    def __eq__(self, other):
        """Element-wise equality against any result sequence (incl. lists).

        Lets ``CampaignResult`` comparisons work unchanged whether a campaign
        was streamed or held in memory; costs a full streaming pass.
        """
        if other is self:
            return True
        if not isinstance(other, (list, tuple, StoredResults)):
            return NotImplemented
        if len(other) != len(self):
            return False
        return all(mine == theirs for mine, theirs in zip(self, other))


# atomic_write_bytes / fsync_directory moved to repro.core.transport (the
# POSIX transport is their natural home); re-exported above so every
# historical `from repro.core.resultstore import atomic_write_bytes` holds.
