"""Distributed (multi-host) campaign execution over the sharded result store.

The shard store made gzip-JSONL shards the atomic, deterministic,
self-describing interchange format of a campaign; this module adds the only
piece multi-host scale still needed: a task-lease layer handing contiguous
plan slices to any number of worker processes that share one directory (NFS,
a bind mount, or plain local disk for same-host workers).

Protocol, in full:

* The **coordinator** prepares the golden baselines, plans the campaign, and
  publishes the frozen plan — tasks with their seeds, the baselines, the
  experiment configuration, and the campaign fingerprint — as ``PLAN.pkl``
  in the store root (atomic write).  Publishing into a store that already
  holds a plan is a no-op when the fingerprints match (coordinator resume)
  and a hard error when they don't (a mis-pointed directory).
* **Workers** (``python -m repro.cli worker --results-dir ...``) wait for the
  plan, then repeatedly claim one slice of contiguous plan indexes via an
  atomic lease object (``leases/slice-<id>.lease``, created with the
  transport's put-if-absent — an ``O_EXCL`` file on POSIX, a conditional PUT
  on an object store).  A claimed slice is executed through the same
  :meth:`~repro.core.parallel.CampaignExecutor.execute_slice` core the local
  pool backend uses — slice → batches → shards — and a heartbeat thread
  refreshes the lease's mtime/generation while batches run.
* A lease whose mtime is older than its **TTL** is expired: any worker may
  reclaim it (conditional delete of the exact generation it judged expired,
  then a new put-if-absent).  A crashed or SIGKILLed worker therefore loses
  its *slice* but never its completed *shards*; the new owner re-runs only
  the indexes the store doesn't already hold.  Pick a TTL comfortably above
  the duration of one batch — an owner that loses its lease mid-batch aborts
  the slice at the next batch boundary (results are deterministic, so even
  the pathological double-execution of one in-flight batch rewrites
  byte-identical records and cannot corrupt the digest).
* A finished slice is recorded as ``leases/slice-<id>.done`` (worker
  provenance for ``repro.cli inspect``) and its lease is released.  The
  ground truth of completion is always the store itself: the coordinator
  watches ``completed_indexes()``, folds newly finished experiments into a
  streaming :class:`~repro.core.classification.CampaignTally`, and finalizes
  once every plan index is stored — producing a merged digest identical to a
  serial run of the same configuration.

Lease mtimes are wall-clock: hosts sharing a store should run NTP, and the
TTL should dwarf any plausible clock skew (the default is 30 s).
"""

from __future__ import annotations

import io
import json
import os
import pickle
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.classification import CampaignTally, GoldenBaseline
from repro.core.experiment import ExperimentConfig
from repro.core.parallel import CampaignExecutor, ExperimentTask
from repro.core.resultstore import (
    ResultStoreMismatchError,
    ShardedResultStore,
    StoredResults,
)
from repro.core.transport import TransportError, TransportKeyError, transport_for

#: Format version of the published plan (bumped on layout changes).
PLAN_VERSION = 1

#: Default seconds of missed heartbeats after which a lease may be reclaimed.
DEFAULT_LEASE_TTL = 30.0

_PLAN_NAME = "PLAN.pkl"
_LEASE_DIR = "leases"

#: ``progress(message)`` callback for worker/coordinator narration lines.
LogCallback = Callable[[str], None]


class DistributedPlanError(ResultStoreMismatchError):
    """A published plan does not belong to (or exist for) this campaign."""


class DistributedTimeoutError(RuntimeError):
    """The coordinator (or a waiting worker) ran out of time."""


class LeaseLostError(RuntimeError):
    """A worker's slice lease was reclaimed out from under it."""


class _StallRequested(Exception):
    """Internal: the fault-injection stall knob fired (never escapes)."""


def default_slice_size(total: int) -> int:
    """Eight slices by default: coarse enough that lease traffic is noise,
    fine enough that a handful of workers load-balance."""
    return max(1, -(-total // 8))


# --------------------------------------------------------------------------
# The published plan
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanSlice:
    """One contiguous run of plan indexes: the unit of lease-based dispatch."""

    slice_id: int
    start: int  # first plan index
    stop: int  # one past the last plan index

    def indexes(self) -> range:
        return range(self.start, self.stop)


@dataclass
class DistributedPlan:
    """The frozen campaign a coordinator publishes and workers execute.

    Everything a worker needs is in here: the tasks carry their seeds (fixed
    at planning time, so outcomes cannot depend on which worker runs them),
    the baselines classify, and the fingerprint pins the store.
    """

    fingerprint: str
    experiment_config: ExperimentConfig
    tasks: list[ExperimentTask]
    baselines: dict[str, GoldenBaseline]
    slice_size: int
    #: Finished batches coalesced per stored shard object.  Published so the
    #: coordinator's ``--shard-batch`` reaches every worker; a worker's own
    #: flag overrides it.  Not part of the fingerprint — it is storage
    #: layout, never results.
    shard_batch: int = 1

    @property
    def total(self) -> int:
        return len(self.tasks)

    def slices(self) -> list[PlanSlice]:
        return [
            PlanSlice(slice_id, start, min(start + self.slice_size, self.total))
            for slice_id, start in enumerate(range(0, self.total, self.slice_size))
        ]

    def slice_tasks(self, plan_slice: PlanSlice) -> list[ExperimentTask]:
        return self.tasks[plan_slice.start : plan_slice.stop]


def plan_path(root: str) -> str:
    return transport_for(root).locate(_PLAN_NAME)


def load_plan(root: str, transport=None) -> Optional[DistributedPlan]:
    """The published plan, or ``None`` when no coordinator has published yet.

    An unreadable plan is an error, not "no plan": the write is atomic, so a
    corrupt object means the root is not (or no longer) a campaign store and
    executing against it would waste every worker's time.  Pollers pass
    their own ``transport`` so each probe reuses one connection instead of
    building (and abandoning) a transport per poll.
    """
    try:
        payload = pickle.loads((transport or transport_for(root)).get(_PLAN_NAME))
    except TransportKeyError:
        return None
    except Exception as error:  # noqa: BLE001 - corrupt plan = unusable store
        raise DistributedPlanError(
            f"result store {root!r} holds an unreadable campaign plan ({error}); "
            "delete the store (or point --results-dir elsewhere) to start fresh"
        ) from error
    if not isinstance(payload, dict) or payload.get("version") != PLAN_VERSION:
        raise DistributedPlanError(
            f"result store {root!r} holds a campaign plan of an unsupported "
            "version; coordinator and workers must run the same code"
        )
    return DistributedPlan(
        fingerprint=payload["fingerprint"],
        experiment_config=payload["experiment_config"],
        tasks=payload["tasks"],
        baselines=payload["baselines"],
        slice_size=payload["slice_size"],
        # Absent in plans published before batched upload existed: those
        # campaigns ran one shard per batch, which the default preserves.
        shard_batch=payload.get("shard_batch", 1),
    )


def publish_plan(root: str, plan: DistributedPlan) -> bool:
    """Publish the frozen plan (idempotent).

    Returns ``True`` when the plan was written, ``False`` when an identical
    plan is already published (coordinator resume after its own crash).  A
    store holding a plan with a *different* fingerprint raises: silently
    replacing it would strand the workers executing the old plan.
    """
    existing = load_plan(root)
    if existing is not None:
        if existing.fingerprint != plan.fingerprint:
            raise DistributedPlanError(
                f"result store {root!r} already holds a different campaign plan; "
                "delete the directory (or point --results-dir elsewhere) to start fresh"
            )
        return False
    payload = {
        "version": PLAN_VERSION,
        "fingerprint": plan.fingerprint,
        "experiment_config": plan.experiment_config,
        "tasks": plan.tasks,
        "baselines": plan.baselines,
        "slice_size": plan.slice_size,
        "shard_batch": plan.shard_batch,
    }
    buffer = io.BytesIO()
    pickle.dump(payload, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    transport_for(root).put(_PLAN_NAME, buffer.getvalue())
    return True


def wait_for_plan(
    root: str, timeout: Optional[float] = 60.0, poll_interval: float = 0.2
) -> DistributedPlan:
    """Block until a coordinator publishes the plan (workers start first)."""
    deadline = None if timeout is None else time.monotonic() + timeout
    transport = transport_for(root)
    while True:
        plan = load_plan(root, transport=transport)
        if plan is not None:
            manifest_fp = _manifest_fingerprint(root)
            if manifest_fp is not None and manifest_fp != plan.fingerprint:
                raise DistributedPlanError(
                    f"result store {root!r} plan and manifest disagree about the "
                    "campaign fingerprint; the directory is not a usable store"
                )
            return plan
        if deadline is not None and time.monotonic() > deadline:
            raise DistributedTimeoutError(
                f"no campaign plan appeared in {root!r} within {timeout:.0f}s; "
                "is the coordinator running with --backend distributed?"
            )
        time.sleep(poll_interval)


def _manifest_fingerprint(root: str) -> Optional[str]:
    try:
        return ShardedResultStore(root).manifest().get("fingerprint")
    except (TransportKeyError, OSError, ValueError):
        return None


# --------------------------------------------------------------------------
# Slice leases
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LeaseInfo:
    """Observed state of one outstanding slice lease."""

    slice_id: int
    worker: str
    age: float  # seconds since the last heartbeat (mtime)
    ttl: float  # the TTL the *owner* promised to heartbeat within

    @property
    def expired(self) -> bool:
        return self.age > self.ttl


class SliceLeases:
    """Atomic lease objects handing plan slices to workers.

    One object per leased slice under ``<root>/leases/``: claiming is the
    transport's put-if-absent (exactly one winner per key — ``O_EXCL`` on
    POSIX, conditional PUT on an object store), liveness is the object's
    mtime (the owner's heartbeat refreshes it under a generation
    precondition), and expiry is mtime age beyond the TTL *recorded in the
    lease by its owner* — so workers with different ``--lease-ttl`` settings
    interoperate.  A finished slice turns into a ``.done`` marker carrying
    worker provenance.
    """

    # Frozen after __init__ (enforced by mutiny-lint MUT004): one instance
    # is shared lock-free with the heartbeat thread, which is only sound
    # while nothing mutates after construction.
    _lock_guarded = ()

    def __init__(self, root: str, ttl: float = DEFAULT_LEASE_TTL):
        self.root = root
        self.transport = transport_for(root)
        self.lease_dir = self.transport.locate(_LEASE_DIR)
        self.ttl = ttl

    def _lease_key(self, slice_id: int) -> str:
        return f"{_LEASE_DIR}/slice-{slice_id:05d}.lease"

    def _done_key(self, slice_id: int) -> str:
        return f"{_LEASE_DIR}/slice-{slice_id:05d}.done"

    def _lease_path(self, slice_id: int) -> str:
        return self.transport.locate(self._lease_key(slice_id))

    def _done_path(self, slice_id: int) -> str:
        return self.transport.locate(self._done_key(slice_id))

    def _read_lease(self, slice_id: int) -> Optional[tuple[LeaseInfo, str]]:
        """The outstanding lease plus its generation token, or ``None``.

        A lease object that exists but holds no readable payload — a claimer
        died between creating the key and writing it (only possible on
        POSIX, where the two aren't one atomic operation) — still counts as
        a lease, judged against *our* TTL: treating it as absent would leave
        the slice permanently unclaimable (put-if-absent can never succeed
        against an existing key).
        """
        key = self._lease_key(slice_id)
        stat = self.transport.stat(key)
        if stat is None:
            return None
        worker = "?"
        ttl = self.ttl
        try:
            data = json.loads(self.transport.get(key))
            worker = str(data.get("worker", "?"))
            ttl = float(data.get("ttl", self.ttl))
        except (TransportKeyError, TransportError, OSError, ValueError, TypeError):
            pass  # unreadable payload: age decides, under the reader's TTL
        info = LeaseInfo(
            slice_id=slice_id,
            worker=worker,
            age=max(0.0, time.time() - stat.mtime),
            ttl=ttl,
        )
        return info, stat.generation

    # ------------------------------------------------------------- claiming

    def try_claim(self, slice_id: int, worker: str) -> bool:
        """Claim a slice: ``True`` and the caller owns it, or ``False``.

        An expired lease is reclaimed first — but only the exact generation
        that was judged expired (conditional delete), so a racing worker's
        *fresh* lease is never removed.  The microsecond stat-to-unlink
        window POSIX keeps is covered by the heartbeat ownership check: an
        owner whose lease vanishes or changes hands aborts its slice at the
        next batch boundary, and determinism makes even that overlap
        harmless.  On an object store the conditional delete is genuinely
        atomic and the window closes entirely.
        """
        if self.is_done(slice_id):
            return False
        key = self._lease_key(slice_id)
        existing = self._read_lease(slice_id)
        if existing is not None:
            info, generation = existing
            if not info.expired:
                return False
            # A lease heartbeated or replaced since we judged it has a new
            # generation and survives; we then lose the put-if-absent below.
            self.transport.delete_if_unchanged(key, generation)
        payload = json.dumps(
            {
                "worker": worker,
                "slice": slice_id,
                "ttl": self.ttl,
                "claimed_at": time.time(),
                "host": socket.gethostname(),
                "pid": os.getpid(),
            },
            sort_keys=True,
        ).encode("utf-8")
        return self.transport.put_if_absent(key, payload)

    def heartbeat(self, slice_id: int, worker: str) -> bool:
        """Refresh the lease's liveness; ``False`` means the lease was lost.

        The refresh is conditional on the generation the ownership check
        read: a lease reclaimed between the read and the refresh is left
        untouched (the new owner's clock, not ours).
        """
        key = self._lease_key(slice_id)
        try:
            data, stat = self.transport.get_with_stat(key)
            payload = json.loads(data)
        except (TransportKeyError, TransportError, OSError, ValueError):
            # A transient read failure (flaky shared filesystem, unreachable
            # object store) reports the lease as lost rather than killing
            # the heartbeat thread: the owner then aborts at the next batch
            # boundary, which determinism makes merely wasted work.
            return False
        if payload.get("worker") != worker:
            return False
        # Handing the transport the bytes we just verified lets it resolve
        # retried-request ambiguity: a refresh whose first attempt applied
        # before its response was lost re-reads the lease, and our payload
        # still being there proves the heartbeat landed — without it, one
        # dropped response made the owner wrongly surrender its slice.
        return self.transport.refresh(key, stat.generation, expected=data)

    def release(self, slice_id: int, worker: Optional[str] = None) -> None:
        """Drop the lease (idempotent).

        With ``worker`` given, the lease is removed only while that worker
        still owns it: a worker whose lease expired and was reclaimed must
        not remove the *new* owner's fresh lease on its way out — that would
        hand the slice to a third claimant while the second still runs it.
        ``worker=None`` is the unconditional administrative form.
        """
        key = self._lease_key(slice_id)
        if worker is not None:
            try:
                data, stat = self.transport.get_with_stat(key)
                if json.loads(data).get("worker") != worker:
                    return
            except (TransportKeyError, TransportError, OSError, ValueError):
                return  # absent or unreadable: nothing of ours to release
            self.transport.delete_if_unchanged(key, stat.generation)
            return
        self.transport.delete(key)

    # ------------------------------------------------------------ observing

    def lease_info(self, slice_id: int) -> Optional[LeaseInfo]:
        """The outstanding lease on a slice, or ``None``."""
        existing = self._read_lease(slice_id)
        return existing[0] if existing is not None else None

    def outstanding(self) -> list[LeaseInfo]:
        """Every lease currently outstanding, in slice order."""
        infos = []
        # list_iter: the lease directory of a huge campaign pages through
        # bounded listing requests instead of one unbounded response.
        for key in self.transport.list_iter(f"{_LEASE_DIR}/slice-"):
            name = key.rpartition("/")[2]
            if not name.endswith(".lease"):
                continue
            try:
                slice_id = int(name[len("slice-") : -len(".lease")])
            except ValueError:
                continue
            info = self.lease_info(slice_id)
            if info is not None:
                infos.append(info)
        return infos

    # ----------------------------------------------------------- completion

    def mark_done(self, slice_id: int, worker: str, start: int, stop: int, executed: int) -> None:
        """Record slice completion (+ provenance) and release the lease."""
        payload = {
            "worker": worker,
            "slice": slice_id,
            "start": start,
            "stop": stop,
            "executed": executed,
            "finished_at": time.time(),
        }
        self.transport.put(
            self._done_key(slice_id),
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
        )
        self.release(slice_id, worker)

    def is_done(self, slice_id: int) -> bool:
        return self.transport.stat(self._done_key(slice_id)) is not None

    def done_records(self) -> list[dict]:
        """Every completion marker, in slice order (inspect provenance)."""
        records = []
        for key in self.transport.list_iter(f"{_LEASE_DIR}/slice-"):
            if not key.endswith(".done"):
                continue
            try:
                records.append(json.loads(self.transport.get(key)))
            except (TransportKeyError, TransportError, OSError, ValueError):
                continue
        return records


# --------------------------------------------------------------------------
# Worker
# --------------------------------------------------------------------------


@dataclass
class WorkerReport:
    """What one worker loop accomplished before exiting."""

    worker_id: str
    slices_completed: int
    experiments_run: int


class DistributedWorker:
    """The claim-execute-heartbeat loop behind ``repro.cli worker``.

    Waits for the published plan, then claims slices until every plan index
    is in the store (or ``max_slices`` is reached).  Slices execute through
    the shared :meth:`CampaignExecutor.execute_slice` core — with
    ``workers > 1`` a single worker process additionally fans its slice out
    over a local process pool, so a big host can serve as N workers with one
    lease.  Already-stored indexes (a crashed predecessor's surviving
    shards) are never re-run.  ``shard_batch`` coalesces N finished batches
    into one shard object via generation-conditional appends
    (:class:`~repro.core.resultstore.BatchedShardWriter`): each batch is
    durable the moment it completes, but a very large campaign stores — and
    later lists — 1/N as many objects.

    ``stall_after_batches`` is a fault-injection knob in the spirit of the
    repository: after N completed batches the worker stops heartbeating and
    holds its lease forever (until SIGKILLed), which is exactly how a hung
    or dead worker looks to the rest of the fleet.  Tests and the CI
    ``distributed-smoke`` job use it to prove expired-lease reclamation
    loses and duplicates nothing.
    """

    def __init__(
        self,
        root: str,
        worker_id: Optional[str] = None,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        shard_batch: Optional[int] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        heartbeat_interval: Optional[float] = None,
        poll_interval: float = 0.5,
        wait_timeout: Optional[float] = 60.0,
        max_slices: Optional[int] = None,
        stall_after_batches: Optional[int] = None,
        progress: Optional[LogCallback] = None,
    ):
        self.root = root
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.workers = workers
        self.chunk_size = chunk_size
        self.shard_batch = shard_batch
        self.lease_ttl = lease_ttl
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None else max(lease_ttl / 4.0, 0.05)
        )
        self.poll_interval = poll_interval
        self.wait_timeout = wait_timeout
        self.max_slices = max_slices
        self.stall_after_batches = stall_after_batches
        self.progress = progress

    def _log(self, message: str) -> None:
        if self.progress is not None:
            self.progress(f"[worker {self.worker_id}] {message}")

    def run(self) -> WorkerReport:
        """Claim and execute slices until the campaign is complete."""
        plan = wait_for_plan(self.root, self.wait_timeout)
        store = ShardedResultStore(self.root)
        leases = SliceLeases(self.root, ttl=self.lease_ttl)
        slices = plan.slices()
        report = WorkerReport(self.worker_id, slices_completed=0, experiments_run=0)
        # None = inherit the coalescing factor the coordinator published;
        # an explicit per-worker --shard-batch overrides it.
        shard_batch = self.shard_batch if self.shard_batch is not None else plan.shard_batch
        self._log(f"plan loaded: {plan.total} experiments in {len(slices)} slice(s)")
        with CampaignExecutor(
            plan.experiment_config,
            workers=self.workers,
            chunk_size=self.chunk_size,
            shard_batch=shard_batch,
        ) as executor:
            while self.max_slices is None or report.slices_completed < self.max_slices:
                store.refresh()
                if len(store.completed_indexes()) >= plan.total:
                    break
                claimed = self._claim_next(slices, leases, store)
                if claimed is None:
                    time.sleep(self.poll_interval)
                    continue
                ran, completed = self._execute_slice(executor, plan, store, leases, claimed)
                report.experiments_run += ran
                if completed:
                    report.slices_completed += 1
        self._log(
            f"exiting: {report.slices_completed} slice(s), "
            f"{report.experiments_run} experiment(s) executed"
        )
        return report

    def _claim_next(
        self, slices: list[PlanSlice], leases: SliceLeases, store: ShardedResultStore
    ) -> Optional[PlanSlice]:
        for plan_slice in slices:
            if leases.is_done(plan_slice.slice_id):
                continue
            if leases.try_claim(plan_slice.slice_id, self.worker_id):
                return plan_slice
        return None

    def _execute_slice(
        self,
        executor: CampaignExecutor,
        plan: DistributedPlan,
        store: ShardedResultStore,
        leases: SliceLeases,
        plan_slice: PlanSlice,
    ) -> tuple[int, bool]:
        """Run one leased slice; returns (experiments run, slice completed)."""
        tasks = plan.slice_tasks(plan_slice)
        store.refresh()
        done = store.completed_indexes()
        pending = [task for task in tasks if task.index not in done]
        self._log(
            f"claimed slice {plan_slice.slice_id} "
            f"[{plan_slice.start}..{plan_slice.stop - 1}] ({len(pending)} pending)"
        )

        stop_beat = threading.Event()
        lease_lost = threading.Event()

        def beat() -> None:
            while not stop_beat.wait(self.heartbeat_interval):
                if not leases.heartbeat(plan_slice.slice_id, self.worker_id):
                    lease_lost.set()
                    return

        heartbeat_thread = threading.Thread(target=beat, daemon=True)
        heartbeat_thread.start()

        ran = 0
        batches = 0

        def finish(batch_indexes: list[int]) -> None:
            nonlocal ran, batches
            ran += len(batch_indexes)
            batches += 1
            if lease_lost.is_set():
                raise LeaseLostError(
                    f"lease on slice {plan_slice.slice_id} was reclaimed; abandoning it"
                )
            if self.stall_after_batches is not None and batches >= self.stall_after_batches:
                raise _StallRequested()

        try:
            if pending:
                executor.execute_slice(pending, plan.baselines, finish, store_root=self.root)
        except _StallRequested:
            stop_beat.set()
            heartbeat_thread.join()
            self._log(
                f"stalling after {batches} batch(es) on slice {plan_slice.slice_id} "
                "(fault injection: lease held, heartbeat stopped)"
            )
            while True:  # hold the lease until SIGKILLed; expiry frees the slice
                time.sleep(3600)
        except LeaseLostError as error:
            stop_beat.set()
            heartbeat_thread.join()
            self._log(f"{error}; {ran} completed experiment(s) stay in the store")
            return ran, False
        finally:
            stop_beat.set()
            heartbeat_thread.join()

        store.refresh()
        missing = [task.index for task in tasks if task.index not in store.completed_indexes()]
        if missing or lease_lost.is_set():
            leases.release(plan_slice.slice_id, self.worker_id)
            self._log(
                f"slice {plan_slice.slice_id} incomplete ({len(missing)} missing); released"
            )
            return ran, False
        leases.mark_done(
            plan_slice.slice_id,
            self.worker_id,
            start=plan_slice.start,
            stop=plan_slice.stop,
            executed=ran,
        )
        self._log(f"slice {plan_slice.slice_id} done ({ran} executed here)")
        return ran, True


# --------------------------------------------------------------------------
# Coordinator
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DistributedSettings:
    """Coordinator-side knobs of the distributed backend."""

    #: Plan indexes per leased slice (None = :func:`default_slice_size`).
    slice_size: Optional[int] = None
    #: Seconds between progress scans of the shared store.
    poll_interval: float = 0.5
    #: Overall deadline for the campaign (None = wait forever).
    timeout: Optional[float] = None


class DistributedCoordinator:
    """Publishes the frozen plan, watches progress, folds the merged result.

    The coordinator never executes experiments itself: it opens (or
    validates) the store, publishes the plan, then polls the shared
    directory — folding each newly completed experiment into a streaming
    :class:`CampaignTally` exactly once — until every plan index is stored.
    The finalized result is a lazy plan-order view plus that tally, so the
    merged digest is byte-identical to the serial run's by construction.
    """

    def __init__(
        self,
        root: str,
        tasks: list[ExperimentTask],
        baselines: dict[str, GoldenBaseline],
        experiment_config: ExperimentConfig,
        fingerprint: str,
        settings: Optional[DistributedSettings] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        shard_batch: int = 1,
    ):
        self.root = root
        self.tasks = tasks
        self.baselines = baselines
        self.experiment_config = experiment_config
        self.fingerprint = fingerprint
        self.settings = settings if settings is not None else DistributedSettings()
        self.progress = progress
        self.shard_batch = shard_batch

    def publish(self) -> DistributedPlan:
        """Open/validate the store and publish the plan (idempotent)."""
        store = ShardedResultStore(self.root)
        store.open(self.fingerprint, len(self.tasks))
        slice_size = self.settings.slice_size or default_slice_size(len(self.tasks))
        plan = DistributedPlan(
            fingerprint=self.fingerprint,
            experiment_config=self.experiment_config,
            tasks=self.tasks,
            baselines=self.baselines,
            slice_size=slice_size,
            shard_batch=self.shard_batch,
        )
        publish_plan(self.root, plan)
        return plan

    def watch(self, cancel=None) -> tuple[StoredResults, CampaignTally]:
        """Poll the store until the campaign completes; fold streaming-wise.

        Each poll folds only the *newly* completed experiments into the
        tally (one shard in memory at a time), so coordinator memory stays
        bounded no matter how many workers stream shards in, and the final
        tally needs no second pass over the store.

        ``cancel`` is an optional :class:`threading.Event` checked once per
        poll round: once set, the watch raises
        :class:`~repro.core.campaign.CampaignCancelledError` without waiting
        for workers (their completed shards stay durable for a resume).
        """
        from repro.core.campaign import (  # circular at import time
            CampaignCancelledError,
            CampaignResult,
        )

        store = ShardedResultStore(self.root)
        tally = CampaignTally()
        folded: set[int] = set()
        total = len(self.tasks)
        deadline = (
            None
            if self.settings.timeout is None
            else time.monotonic() + self.settings.timeout
        )
        while True:
            if cancel is not None and cancel.is_set():
                raise CampaignCancelledError("distributed campaign watch cancelled")
            store.refresh()
            completed = store.completed_indexes()
            fresh = sorted(index for index in completed if index not in folded)
            for index in fresh:
                result = store.load_result(index)
                tally.update(result, CampaignResult.injection_family(result.fault))
                folded.add(index)
            if fresh and self.progress is not None:
                self.progress(len(folded), total)
            if len(folded) >= total:
                return StoredResults(store, [task.index for task in self.tasks]), tally
            if deadline is not None and time.monotonic() > deadline:
                leases = SliceLeases(self.root)
                held = ", ".join(
                    f"slice {info.slice_id} by {info.worker} "
                    f"({'expired' if info.expired else 'fresh'}, age {info.age:.1f}s)"
                    for info in leases.outstanding()
                ) or "none"
                raise DistributedTimeoutError(
                    f"campaign incomplete after {self.settings.timeout:.0f}s: "
                    f"{total - len(folded)} of {total} experiments outstanding; "
                    f"leases: {held}"
                )
            time.sleep(self.settings.poll_interval)


# --------------------------------------------------------------------------
# Inspection
# --------------------------------------------------------------------------


def render_provenance(root: str) -> str:
    """Per-worker slice provenance + outstanding leases, for ``inspect``.

    Empty string when the store has no distributed state (plain local runs
    keep their inspect output unchanged).
    """
    try:
        plan = load_plan(root)
    except DistributedPlanError as error:
        return f"Distributed campaign\n  unreadable plan: {error}"
    leases = SliceLeases(root)
    done = leases.done_records()
    outstanding = leases.outstanding()
    if plan is None and not done and not outstanding:
        return ""
    lines = ["Distributed campaign"]
    if plan is not None:
        lines.append(
            f"plan               : {plan.total} experiments in "
            f"{len(plan.slices())} slice(s) of <= {plan.slice_size}"
        )
    if done:
        lines.append("slice provenance   :")
        for record in done:
            start, stop = record.get("start"), record.get("stop")
            span = f"[{start}..{stop - 1}]" if isinstance(stop, int) else "[?]"
            lines.append(
                f"  slice {record.get('slice', '?')} {span}  "
                f"done by {record.get('worker', '?')} "
                f"({record.get('executed', '?')} executed)"
            )
    if outstanding:
        lines.append("outstanding leases :")
        for info in outstanding:
            state = "expired" if info.expired else "fresh"
            lines.append(
                f"  slice {info.slice_id}  held by {info.worker} "
                f"(age {info.age:.1f}s / ttl {info.ttl:.1f}s, {state})"
            )
    return "\n".join(lines)
