"""Mutiny — the paper's contribution.

* :mod:`repro.core.injector` — the fault/error injector (where / what / when).
* :mod:`repro.core.campaign` — golden-run field recording and campaign
  generation / execution (§IV-C).
* :mod:`repro.core.experiment` — a single injection experiment end to end.
* :mod:`repro.core.parallel` — process-parallel campaign execution with
  chunked progress reporting and checkpoint/resume.
* :mod:`repro.core.resultstore` — the streaming sharded (gzip JSONL)
  result store backing paper-scale campaigns.
* :mod:`repro.core.classification` — orchestrator-level and client-level
  failure classification (§V-B).
* :mod:`repro.core.ffda` — the field-failure-data-analysis taxonomy and the
  coded real-world incident dataset (§III, Tables I and VII).
* :mod:`repro.core.analysis` — critical-field, user-error and propagation
  analyses (F2, F4, Table VI, Figures 6 and 7).
* :mod:`repro.core.report` — renderers for every table and figure.
"""

from repro.core.campaign import Campaign, CampaignConfig, CampaignResult
from repro.core.classification import ClientFailure, GoldenBaseline, OrchestratorFailure
from repro.core.experiment import ExperimentResult, ExperimentRunner
from repro.core.injector import FaultSpec, FaultType, InjectionChannel, MutinyInjector
from repro.core.parallel import CampaignExecutor, ExperimentTask
from repro.core.resultstore import ResultStoreMismatchError, ShardedResultStore, StoredResults

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignExecutor",
    "CampaignResult",
    "ClientFailure",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentTask",
    "FaultSpec",
    "FaultType",
    "GoldenBaseline",
    "InjectionChannel",
    "MutinyInjector",
    "OrchestratorFailure",
    "ResultStoreMismatchError",
    "ShardedResultStore",
    "StoredResults",
]
