"""Field Failure Data Analysis (FFDA) of real-world Kubernetes incidents.

Paper §III analyses 81 real-world failure reports and derives the
fault → error → failure chain of Table I.  The raw blog posts are not
redistributable, so this module encodes the *structured* dataset the paper
reports: the taxonomy (fault, error and failure categories with their
subcategories), one coded record per incident consistent with every count
the paper gives (33 misconfigurations, 15 outages, 13 incidents involving
bugs, 21 capacity-related failures, 19 communication errors, 10 bad resource
sizing incidents, …), and the Mutiny coverage map of Table VII.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class FaultCategory(Enum):
    """Fault categories of Table I(a)."""

    WRONG_AUTOSCALE_TRIGGER = "Wrong Autoscale Trigger"
    RACE_CONDITION = "Race Condition"
    UNVERIFIABLE_CERTIFICATE = "Unverifiable Certificate"
    BUG = "Bug"
    HUMAN_MISTAKE = "Human Mistake"
    UNMANAGED_UPGRADE = "Unmanaged Upgrade"
    OVERLOAD = "Overload"
    LOW_LEVEL_ISSUES = "Low-Level Issues"
    FAILING_APPLICATION = "Failing Application"


class ErrorCategory(Enum):
    """Error categories of Table I(b)."""

    STATE_RETRIEVAL = "State Retrieval"
    MISBEHAVING_LOGIC = "Misbehaving Logic"
    COMMUNICATION = "Communication"
    RESOURCE_EXHAUSTION = "Resource Exhaustion"
    CONTROL_PLANE_AVAILABILITY = "Control Plane Availability"
    LOCAL_TO_WORKER_NODES = "Local to Worker Nodes"


class FailureCategory(Enum):
    """Failure categories of Table I(c), in order of increasing severity."""

    NONE = "No"
    TIMING = "Tim"
    LESS_RESOURCES = "LeR"
    MORE_RESOURCES = "MoR"
    SERVICE_NETWORK = "Net"
    STALL = "Sta"
    CLUSTER_OUTAGE = "Out"


#: Error subcategories per category (Table VII, upper half).  Subcategories
#: in ``MUTINY_REPLICABLE_ERRORS`` are the ones the paper marks in bold
#: (Mutiny can replicate them); ``MUTINY_ONLY_ERRORS`` are italic (triggered
#: by Mutiny but not observed in the real-world reports).
ERROR_SUBCATEGORIES: dict[ErrorCategory, tuple[str, ...]] = {
    ErrorCategory.STATE_RETRIEVAL: (
        "State corrupted",
        "State erased",
        "State stale",
        "State unretrievable",
    ),
    ErrorCategory.MISBEHAVING_LOGIC: (
        "Wrong label",
        "Wrong replica value",
        "Request rejected",
        "Lost update",
        "Controller loop not executed",
        "Relationship broken",
    ),
    ErrorCategory.COMMUNICATION: (
        "Connection delay",
        "Wrong IP address",
        "DNS resolution delay",
        "DNS not resolving",
        "Uneven load balancing",
        "Endpoint delete after Pod kill",
        "Routes dropped",
        "New Nodes' routes not configured",
        "Routes not updated",
    ),
    ErrorCategory.RESOURCE_EXHAUSTION: (
        "Overcrowding",
        "Cluster out of resources",
        "Worker nodes cannot join",
        "Worker nodes unhealthy",
    ),
    ErrorCategory.CONTROL_PLANE_AVAILABILITY: (
        "CP Pods crash loop",
        "CP Pods hang",
        "CP Pods deleted",
        "CP overload",
    ),
    ErrorCategory.LOCAL_TO_WORKER_NODES: (
        "Kubelet delayed",
        "Container runtime failure",
        "Pods not ready",
        "Image Pull Error",
        "Slow/throttling",
    ),
}

#: Failure subcategories per category (Table VII, lower half).
FAILURE_SUBCATEGORIES: dict[FailureCategory, tuple[str, ...]] = {
    FailureCategory.CLUSTER_OUTAGE: (
        "Cluster-wide networking drop",
        "Cluster-wide networking intermittent",
        "Massive Service Deletion",
        "DNS resolution failure",
    ),
    FailureCategory.STALL: (
        "Control Plane stuck",
        "Control Plane slow",
        "Control Plane quorum unreachable",
        "New Services network not configurable",
        "New Nodes network not reconfigurable",
    ),
    FailureCategory.SERVICE_NETWORK: (
        "Service Networking Drop Permanent",
        "Service Networking Drop Intermittent",
        "Service Networking Delay",
    ),
    FailureCategory.MORE_RESOURCES: (
        "Pods not deleted",
        "Too many Pods created",
        "More Pods Transient",
        "More Resources Per Pod",
    ),
    FailureCategory.LESS_RESOURCES: (
        "Pods deleted",
        "Pods not created",
        "Pods crashloop",
        "Less Resources Per Pod",
    ),
    FailureCategory.TIMING: (
        "Pods' Creation Delayed",
        "Pods Restart",
    ),
}

#: Error subcategories Mutiny can replicate (bold in Table VII).
MUTINY_REPLICABLE_ERRORS: frozenset[str] = frozenset(
    {
        "State corrupted",
        "State erased",
        "State stale",
        "State unretrievable",
        "Wrong label",
        "Wrong replica value",
        "Request rejected",
        "Lost update",
        "Controller loop not executed",
        "Relationship broken",
        "Wrong IP address",
        "DNS not resolving",
        "Uneven load balancing",
        "Routes dropped",
        "New Nodes' routes not configured",
        "Routes not updated",
        "Overcrowding",
        "Cluster out of resources",
        "Worker nodes cannot join",
        "Worker nodes unhealthy",
        "CP Pods crash loop",
        "CP Pods hang",
        "CP Pods deleted",
        "CP overload",
        "Pods not ready",
        "Image Pull Error",
    }
)

#: Error subcategories Mutiny cannot trigger (plain text in Table VII):
#: they are due to local node configuration or underlying software.
MUTINY_NOT_REPLICABLE_ERRORS: frozenset[str] = frozenset(
    {
        "Connection delay",
        "DNS resolution delay",
        "Endpoint delete after Pod kill",
        "Kubelet delayed",
        "Container runtime failure",
        "Slow/throttling",
    }
)

#: Failure subcategories Mutiny can replicate (bold in Table VII).
MUTINY_REPLICABLE_FAILURES: frozenset[str] = frozenset(
    {
        "Cluster-wide networking drop",
        "Massive Service Deletion",
        "DNS resolution failure",
        "Control Plane stuck",
        "Control Plane slow",
        "New Services network not configurable",
        "New Nodes network not reconfigurable",
        "Service Networking Drop Permanent",
        "Service Networking Drop Intermittent",
        "Pods not deleted",
        "Too many Pods created",
        "More Pods Transient",
        "Pods deleted",
        "Pods not created",
        "Pods crashloop",
        "Pods' Creation Delayed",
        "Pods Restart",
    }
)

#: Failure subcategories triggered by Mutiny but not seen in the real-world
#: reports (italic in Table VII).
MUTINY_ONLY_FAILURES: frozenset[str] = frozenset(
    {
        "More Resources Per Pod",
        "Less Resources Per Pod",
    }
)


@dataclass
class Incident:
    """One coded real-world failure report."""

    identifier: str
    fault: FaultCategory
    error: ErrorCategory
    failure: FailureCategory
    error_subcategory: str = ""
    failure_subcategory: str = ""
    #: Which subsystem the fault originated in: "k8s", "plugin", "external",
    #: "custom" (used for the misconfiguration and bug breakdowns of §III-B).
    origin: str = "k8s"
    #: Free-text summary.
    summary: str = ""
    #: Whether an etcd-level state alteration can recreate the failure pattern
    #: (54 of the 81 incidents per §IV-A).
    replicable_by_mutiny: bool = True


def _build_incident_dataset() -> list[Incident]:
    """Build the 81-incident dataset with the marginal counts of §III.

    The individual blog reports are paraphrased; the categorical structure —
    33 human mistakes (19 of Kubernetes, 3 of plugins, 11 of external
    software; 10 of them bad resource sizing), 13 bug-related incidents
    (5 Kubernetes, 4 external, 1 plugin, 3 custom code), 21 capacity-related
    failures (11 from control-plane overload), 19 communication-error
    incidents, and 15 cluster outages — matches the counts the paper reports.
    """
    incidents: list[Incident] = []
    counter = 0

    def add(
        count: int,
        fault: FaultCategory,
        error: ErrorCategory,
        failure: FailureCategory,
        error_sub: str,
        failure_sub: str,
        origin: str,
        summary: str,
        replicable: bool = True,
    ) -> None:
        nonlocal counter
        for _ in range(count):
            counter += 1
            incidents.append(
                Incident(
                    identifier=f"incident-{counter:02d}",
                    fault=fault,
                    error=error,
                    failure=failure,
                    error_subcategory=error_sub,
                    failure_subcategory=failure_sub,
                    origin=origin,
                    summary=summary,
                    replicable_by_mutiny=replicable,
                )
            )

    # --- Human mistakes (33 incidents; 19 K8s / 3 plugin / 11 external). ----
    # Bad resource sizing (10): too few resources → app failed; too many →
    # node overload.
    add(5, FaultCategory.HUMAN_MISTAKE, ErrorCategory.RESOURCE_EXHAUSTION,
        FailureCategory.LESS_RESOURCES, "Cluster out of resources", "Less Resources Per Pod",
        "k8s", "Services sized with too few resources; applications failed")
    add(5, FaultCategory.HUMAN_MISTAKE, ErrorCategory.RESOURCE_EXHAUSTION,
        FailureCategory.MORE_RESOURCES, "Overcrowding", "More Resources Per Pod",
        "k8s", "Services sized with too many resources; nodes overloaded")
    # Erroneous commands deleting namespaces / clusters / etcd data.
    add(3, FaultCategory.HUMAN_MISTAKE, ErrorCategory.STATE_RETRIEVAL,
        FailureCategory.CLUSTER_OUTAGE, "State erased", "Massive Service Deletion",
        "k8s", "Namespace/cluster/etcd data deleted by mistake")
    # Misconfigured networking / DNS settings.
    add(4, FaultCategory.HUMAN_MISTAKE, ErrorCategory.COMMUNICATION,
        FailureCategory.SERVICE_NETWORK, "DNS not resolving", "Service Networking Drop Permanent",
        "external", "Misconfigured DNS or network settings")
    add(3, FaultCategory.HUMAN_MISTAKE, ErrorCategory.COMMUNICATION,
        FailureCategory.STALL, "Routes not updated", "New Services network not configurable",
        "plugin", "Misconfigured CNI plugin settings")
    # Misconfigured control plane / admission settings overloading the CP.
    add(5, FaultCategory.HUMAN_MISTAKE, ErrorCategory.CONTROL_PLANE_AVAILABILITY,
        FailureCategory.STALL, "CP overload", "Control Plane slow",
        "k8s", "Bad control-plane configuration caused reconciliation lag")
    # Misconfigured workloads (labels/selectors/quotas).
    add(4, FaultCategory.HUMAN_MISTAKE, ErrorCategory.MISBEHAVING_LOGIC,
        FailureCategory.LESS_RESOURCES, "Wrong label", "Pods not created",
        "k8s", "Wrong labels or selectors left services underprovisioned")
    add(2, FaultCategory.HUMAN_MISTAKE, ErrorCategory.MISBEHAVING_LOGIC,
        FailureCategory.MORE_RESOURCES, "Wrong replica value", "Too many Pods created",
        "k8s", "Wrong replica values overprovisioned services")
    add(2, FaultCategory.HUMAN_MISTAKE, ErrorCategory.STATE_RETRIEVAL,
        FailureCategory.STALL, "State stale", "Control Plane stuck",
        "external", "Stale state after misconfigured backup/restore")

    # --- Bugs (13 incidents: 5 K8s, 4 external, 1 plugin, 3 custom). --------
    add(3, FaultCategory.BUG, ErrorCategory.MISBEHAVING_LOGIC,
        FailureCategory.STALL, "Controller loop not executed", "Control Plane stuck",
        "k8s", "Kubernetes controller bug halted reconciliation")
    add(2, FaultCategory.BUG, ErrorCategory.STATE_RETRIEVAL,
        FailureCategory.TIMING, "State stale", "Pods' Creation Delayed",
        "k8s", "Stale cache served by a buggy component")
    add(4, FaultCategory.BUG, ErrorCategory.LOCAL_TO_WORKER_NODES,
        FailureCategory.LESS_RESOURCES, "Container runtime failure", "Pods crashloop",
        "external", "OS/runtime bug crashed containers", False)
    add(1, FaultCategory.BUG, ErrorCategory.COMMUNICATION,
        FailureCategory.SERVICE_NETWORK, "Uneven load balancing", "Service Networking Delay",
        "plugin", "CNI plugin bug skewed load balancing")
    add(3, FaultCategory.BUG, ErrorCategory.MISBEHAVING_LOGIC,
        FailureCategory.MORE_RESOURCES, "Relationship broken", "Pods not deleted",
        "custom", "Custom controller bug leaked pods")

    # --- Capacity / overload (part of the 21 capacity-related failures). ----
    add(6, FaultCategory.OVERLOAD, ErrorCategory.CONTROL_PLANE_AVAILABILITY,
        FailureCategory.STALL, "CP overload", "Control Plane slow",
        "k8s", "Too many objects/events overloaded the control plane")
    add(3, FaultCategory.FAILING_APPLICATION, ErrorCategory.CONTROL_PLANE_AVAILABILITY,
        FailureCategory.STALL, "CP overload", "Control Plane slow",
        "custom", "Failing application flooded the control plane with events")
    add(1, FaultCategory.WRONG_AUTOSCALE_TRIGGER, ErrorCategory.RESOURCE_EXHAUSTION,
        FailureCategory.CLUSTER_OUTAGE, "Worker nodes unhealthy", "Massive Service Deletion",
        "k8s", "Autoscaler deleted healthy nodes on misleading signals")
    add(2, FaultCategory.OVERLOAD, ErrorCategory.RESOURCE_EXHAUSTION,
        FailureCategory.CLUSTER_OUTAGE, "Cluster out of resources", "Massive Service Deletion",
        "k8s", "Preemption storm from runaway pod creation terminated the running services")
    add(5, FaultCategory.OVERLOAD, ErrorCategory.RESOURCE_EXHAUSTION,
        FailureCategory.STALL, "Overcrowding", "Control Plane stuck",
        "k8s", "Etcd filled up under object churn")

    # --- Communication-related incidents (19 in total with the ones above). -
    add(3, FaultCategory.RACE_CONDITION, ErrorCategory.COMMUNICATION,
        FailureCategory.CLUSTER_OUTAGE, "Routes dropped", "Cluster-wide networking drop",
        "external", "Race in the network manager dropped every route")
    add(2, FaultCategory.UNVERIFIABLE_CERTIFICATE, ErrorCategory.COMMUNICATION,
        FailureCategory.STALL, "Routes not updated", "New Nodes network not reconfigurable",
        "k8s", "Certificate rotation broke node-to-apiserver traffic")
    add(2, FaultCategory.UNMANAGED_UPGRADE, ErrorCategory.COMMUNICATION,
        FailureCategory.CLUSTER_OUTAGE, "Routes dropped", "Cluster-wide networking drop",
        "k8s", "Upgrade relabelled nodes and tore down the cluster network")
    add(2, FaultCategory.LOW_LEVEL_ISSUES, ErrorCategory.COMMUNICATION,
        FailureCategory.SERVICE_NETWORK, "Connection delay", "Service Networking Delay",
        "external", "Kernel/NIC issues delayed connections", False)
    add(2, FaultCategory.LOW_LEVEL_ISSUES, ErrorCategory.COMMUNICATION,
        FailureCategory.CLUSTER_OUTAGE, "DNS not resolving", "DNS resolution failure",
        "external", "DNS outage took down service discovery")

    # --- Remaining incidents: upgrades, certificates, node-local problems. --
    add(2, FaultCategory.UNMANAGED_UPGRADE, ErrorCategory.MISBEHAVING_LOGIC,
        FailureCategory.TIMING, "Lost update", "Pods Restart",
        "k8s", "Upgrade changed defaults and restarted workloads")
    add(2, FaultCategory.UNVERIFIABLE_CERTIFICATE, ErrorCategory.CONTROL_PLANE_AVAILABILITY,
        FailureCategory.CLUSTER_OUTAGE, "CP Pods hang", "Cluster-wide networking intermittent",
        "k8s", "Webhook with expired certificate hung admissions")
    add(2, FaultCategory.LOW_LEVEL_ISSUES, ErrorCategory.LOCAL_TO_WORKER_NODES,
        FailureCategory.LESS_RESOURCES, "Image Pull Error", "Pods not created",
        "external", "Registry/disk issues prevented image pulls", False)
    add(1, FaultCategory.FAILING_APPLICATION, ErrorCategory.LOCAL_TO_WORKER_NODES,
        FailureCategory.TIMING, "Pods not ready", "Pods Restart",
        "custom", "Leaking application churned through restarts")

    return incidents


#: The coded real-world incident dataset (81 records).
INCIDENTS: list[Incident] = _build_incident_dataset()


def incident_count() -> int:
    """Total number of coded incidents (81 in the paper)."""
    return len(INCIDENTS)


def count_by_fault() -> dict[str, int]:
    """Incident counts per fault category."""
    counts: dict[str, int] = {}
    for incident in INCIDENTS:
        counts[incident.fault.value] = counts.get(incident.fault.value, 0) + 1
    return counts


def count_by_error() -> dict[str, int]:
    """Incident counts per error category."""
    counts: dict[str, int] = {}
    for incident in INCIDENTS:
        counts[incident.error.value] = counts.get(incident.error.value, 0) + 1
    return counts


def count_by_failure() -> dict[str, int]:
    """Incident counts per failure category."""
    counts: dict[str, int] = {}
    for incident in INCIDENTS:
        counts[incident.failure.value] = counts.get(incident.failure.value, 0) + 1
    return counts


def outage_count() -> int:
    """Number of cluster outages in the dataset (15 in the paper)."""
    return count_by_failure().get(FailureCategory.CLUSTER_OUTAGE.value, 0)


def misconfiguration_count() -> int:
    """Number of human-mistake incidents (33 in the paper)."""
    return count_by_fault().get(FaultCategory.HUMAN_MISTAKE.value, 0)


def replicable_count() -> int:
    """Incidents whose failure pattern Mutiny's etcd alterations can recreate."""
    return sum(1 for incident in INCIDENTS if incident.replicable_by_mutiny)


def coverage_table() -> dict[str, dict[str, list[tuple[str, str]]]]:
    """Return the Table VII structure.

    The result maps ``"errors"``/``"failures"`` to a mapping from category
    name to a list of ``(subcategory, marker)`` pairs where the marker is
    ``"replicable"`` (bold in the paper), ``"not-replicable"`` (plain) or
    ``"mutiny-only"`` (italic).
    """
    errors: dict[str, list[tuple[str, str]]] = {}
    for category, subcategories in ERROR_SUBCATEGORIES.items():
        rows = []
        for subcategory in subcategories:
            if subcategory in MUTINY_REPLICABLE_ERRORS:
                marker = "replicable"
            elif subcategory in MUTINY_NOT_REPLICABLE_ERRORS:
                marker = "not-replicable"
            else:
                marker = "mutiny-only"
            rows.append((subcategory, marker))
        errors[category.value] = rows

    failures: dict[str, list[tuple[str, str]]] = {}
    for category, subcategories in FAILURE_SUBCATEGORIES.items():
        rows = []
        for subcategory in subcategories:
            if subcategory in MUTINY_ONLY_FAILURES:
                marker = "mutiny-only"
            elif subcategory in MUTINY_REPLICABLE_FAILURES:
                marker = "replicable"
            else:
                marker = "not-replicable"
            rows.append((subcategory, marker))
        failures[category.value] = rows
    return {"errors": errors, "failures": failures}
