"""A single fault/error injection experiment, end to end.

One experiment follows the workflow of paper §IV-C / Figure 4: build a fresh
cluster, set up the scenario objects the workload needs, start the
application client, arm the injector, execute the orchestration workload,
let the cluster settle, then collect and classify the observables.  Golden
runs are the same flow without arming the injector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.core.classification import (
    ClientFailure,
    ClientObservations,
    GoldenBaseline,
    OrchestratorFailure,
    OrchestratorObservations,
    classify_client,
    classify_orchestrator,
    detect_unreachable_tail,
)
from repro.core.injector import FaultSpec, InjectionChannel, MutinyInjector
from repro.hotpath import COUNTERS
from repro.workloads.appclient import ApplicationClient
from repro.workloads.scenario import SERVICE_NAME, ServiceApplication
from repro.workloads.workload import KbenchDriver, WorkloadKind


@dataclass
class ExperimentConfig:
    """Timing and sizing of one experiment."""

    #: Seconds the freshly booted cluster gets to reach steady state.
    boot_seconds: float = 25.0
    #: Seconds after scenario setup before the workload/injection starts.
    setup_seconds: float = 20.0
    #: Seconds of workload + settling after the injection is armed.
    run_seconds: float = 60.0
    #: Safety cap on simulation events per run (runaway replication guard).
    max_events: int = 400_000
    #: Node targeted by the failover workload's NoExecute taint.
    failover_node: str = "worker-2"
    #: Cluster parameters.
    cluster: ClusterConfig = field(default_factory=ClusterConfig)


@dataclass
class ExperimentResult:
    """Everything recorded about one experiment."""

    workload: WorkloadKind
    fault: Optional[FaultSpec]
    seed: int
    injected: bool = False
    activated: bool = False
    dropped: bool = False
    #: Orchestrator- and client-level verdicts (None for golden runs until
    #: they are classified against a baseline).
    orchestrator_failure: Optional[OrchestratorFailure] = None
    client_failure: Optional[ClientFailure] = None
    client_zscore: float = 0.0
    #: Raw observables.
    orchestrator_observations: OrchestratorObservations = field(
        default_factory=OrchestratorObservations
    )
    client_observations: ClientObservations = field(default_factory=ClientObservations)
    latency_series: list[float] = field(default_factory=list)
    #: Errors the cluster user received from the Apiserver during the run.
    user_error_count: int = 0
    user_request_count: int = 0
    #: For component→Apiserver injections: errors logged for the injected
    #: component's requests around the injection instant (Table VI "Err").
    component_error_count: int = 0
    #: Simulated time at which the fault fired (None if it never did).
    injection_time: Optional[float] = None
    #: Pods created during the whole run (proxy for control-plane load).
    pods_created: int = 0
    #: Duration bookkeeping.
    workload_started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def user_received_error(self) -> bool:
        """True if at least one user request returned an error (Figure 7)."""
        return self.user_error_count > 0


class ExperimentRunner:
    """Runs golden runs and injection experiments."""

    def __init__(self, config: Optional[ExperimentConfig] = None):
        self.config = config if config is not None else ExperimentConfig()

    # ------------------------------------------------------------------ runs

    def run_golden(
        self, workload: WorkloadKind, seed: int = 0, etcd_observer=None
    ) -> ExperimentResult:
        """Run one golden (fault-free) run of the given workload.

        ``etcd_observer`` is an optional callable ``(context, data) -> None``
        invoked for every Apiserver→etcd transaction; the campaign manager
        uses it to record the fields that appear in golden-run messages.
        """
        return self._run(workload, fault=None, seed=seed, etcd_observer=etcd_observer)

    def run_experiment(
        self,
        workload: WorkloadKind,
        fault: FaultSpec,
        baseline: Optional[GoldenBaseline] = None,
        seed: int = 0,
    ) -> ExperimentResult:
        """Run one injection experiment and classify it against ``baseline``."""
        result = self._run(workload, fault=fault, seed=seed)
        if baseline is not None:
            self.classify(result, baseline)
        return result

    def build_baseline(
        self, workload: WorkloadKind, runs: int = 3, base_seed: int = 100
    ) -> GoldenBaseline:
        """Run ``runs`` golden runs and build the classification baseline."""
        results = [self.run_golden(workload, seed=base_seed + index) for index in range(runs)]
        expected = self._expected_replicas(workload)
        settle_times = [
            result.orchestrator_observations.settle_time
            for result in results
            if result.orchestrator_observations.settle_time is not None
        ]
        return GoldenBaseline.from_golden_runs(
            workload=workload.value,
            series=[result.latency_series for result in results],
            expected_replicas=expected,
            expected_endpoints=expected,
            pods_created=[result.pods_created for result in results],
            settle_times=settle_times if settle_times else [self.config.run_seconds],
            client_errors=[result.client_observations.error_count for result in results],
        )

    @staticmethod
    def classify(result: ExperimentResult, baseline: GoldenBaseline) -> ExperimentResult:
        """Classify a result in place against the golden baseline."""
        result.orchestrator_failure = classify_orchestrator(
            result.orchestrator_observations, baseline
        )
        result.client_failure, result.client_zscore = classify_client(
            result.client_observations, baseline
        )
        return result

    @staticmethod
    def _expected_replicas(workload: WorkloadKind) -> int:
        if workload == WorkloadKind.SCALE_UP:
            return 2 * 5
        return 3 * 2

    # ------------------------------------------------------------------ guts

    def _run(
        self,
        workload: WorkloadKind,
        fault: Optional[FaultSpec],
        seed: int,
        etcd_observer=None,
    ) -> ExperimentResult:
        COUNTERS.experiments += 1
        config = self.config
        cluster_config = ClusterConfig(**vars(config.cluster))
        cluster_config.seed = seed
        cluster = Cluster(cluster_config)
        cluster.boot(stabilization_seconds=config.boot_seconds)

        user_client = cluster.user_client("user")
        application = ServiceApplication(user_client)
        driver = KbenchDriver(
            cluster.sim,
            user_client,
            application,
            workload,
            taint_node=config.failover_node,
        )
        driver.setup_scenario()
        cluster.run_for(config.setup_seconds, max_events=config.max_events)

        expected_replicas = self._expected_replicas(workload)
        client = ApplicationClient(
            cluster.sim, cluster.network, expected_backends=expected_replicas
        )

        injector: Optional[MutinyInjector] = None
        if fault is not None:
            injector = self._arm(cluster, fault)
        elif etcd_observer is not None:
            # Field recording observes the same channel, over the same window,
            # that the injector would tamper with: from the end of the scenario
            # setup until the end of the run.

            def observer_hook(context, data):
                etcd_observer(context, data)
                return data

            cluster.apiserver.set_etcd_write_hook(observer_hook)

        workload_start = cluster.sim.now
        client.start()
        driver.start()
        cluster.run_for(config.run_seconds, max_events=config.max_events)

        result = ExperimentResult(
            workload=workload,
            fault=fault,
            seed=seed,
            workload_started_at=workload_start,
            finished_at=cluster.sim.now,
        )
        if injector is not None:
            result.injected = injector.injected
            result.activated = injector.activated
            result.dropped = bool(injector.record and injector.record.dropped)
            if injector.record is not None:
                result.injection_time = injector.record.time

        self._collect(cluster, driver, client, workload_start, expected_replicas, result)

        if (
            fault is not None
            and fault.component
            and result.injection_time is not None
        ):
            result.component_error_count = sum(
                1
                for record in cluster.apiserver.request_log
                if record.error
                and record.actor.startswith(fault.component)
                and abs(record.time - result.injection_time) <= 1.0
            )
        return result

    def _arm(self, cluster: Cluster, fault: FaultSpec) -> MutinyInjector:
        injector = MutinyInjector()
        injector.arm(fault)
        sim = cluster.sim

        if fault.channel is InjectionChannel.APISERVER_TO_ETCD:

            def etcd_hook(context, data):
                injector.set_clock(sim.now)
                return injector.etcd_write_hook(context, data)

            cluster.apiserver.set_etcd_write_hook(etcd_hook)
            return injector

        # Component→Apiserver channel: install the hook on the component's client.
        def request_hook(context, data):
            injector.set_clock(sim.now)
            return injector.component_request_hook(context, data)

        component = fault.component or ""
        if component.startswith("kube-controller-manager"):
            cluster.kcm.client.set_request_hook(request_hook)
        elif component.startswith("kube-scheduler"):
            cluster.scheduler.client.set_request_hook(request_hook)
        elif component.startswith("kubelet"):
            for kubelet in cluster.kubelets:
                if kubelet.client.component.startswith(component) or component == "kubelet":
                    kubelet.client.set_request_hook(request_hook)
        else:
            # Unknown component: hook every control-plane client.
            cluster.kcm.client.set_request_hook(request_hook)
            cluster.scheduler.client.set_request_hook(request_hook)
        return injector

    # ------------------------------------------------------------ collection

    def _collect(
        self,
        cluster: Cluster,
        driver: KbenchDriver,
        client: ApplicationClient,
        workload_start: float,
        expected_replicas: int,
        result: ExperimentResult,
    ) -> None:
        observations = result.orchestrator_observations
        samples = [
            sample for sample in cluster.metrics.samples if sample.time >= workload_start - 1.0
        ]
        all_samples = cluster.metrics.samples

        # Application deployments live in the default namespace.
        def app_ready(sample) -> tuple[int, int]:
            ready = 0
            desired = 0
            for key, (sample_ready, sample_desired) in sample.deployments.items():
                if key.startswith("default/"):
                    ready += sample_ready
                    desired += sample_desired
            return ready, desired

        if samples:
            final = samples[-1]
            observations.final_ready_replicas, observations.final_desired_replicas = app_ready(
                final
            )
            observations.final_endpoints = final.endpoints.get(f"default/{SERVICE_NAME}", 0)
            observations.final_total_pods = final.total_pods
            observations.peak_total_pods = max(sample.total_pods for sample in samples)
            observations.network_manager_ready = final.network_manager_ready_pods
            observations.dns_ready = final.dns_ready_pods
            observations.etcd_alarm = any(sample.etcd_alarm for sample in samples)
            observations.scrape_failures = sum(1 for sample in samples if sample.scrape_failed)
            if all_samples:
                observations.pods_created = (
                    all_samples[-1].pods_created_cumulative
                    - (samples[0].pods_created_cumulative if samples else 0)
                )
            if len(samples) >= 3:
                tail = [sample.total_pods for sample in samples[-3:]]
                observations.pod_count_growing = tail[-1] > tail[0]
            for sample in samples:
                ready, _ = app_ready(sample)
                endpoints = sample.endpoints.get(f"default/{SERVICE_NAME}", 0)
                if ready >= expected_replicas and endpoints >= expected_replicas:
                    observations.settle_time = sample.time - workload_start
                    break

        observations.expected_network_manager = len(cluster.node_names)
        observations.kcm_is_leader = cluster.kcm.is_leader
        observations.scheduler_is_leader = cluster.scheduler.elector.is_leader
        result.pods_created = observations.pods_created

        # Final reachability probes and per-pod reachability.
        probes = [
            cluster.network.request(SERVICE_NAME, expected_backends=expected_replicas)
            for _ in range(5)
        ]
        successes = sum(1 for probe in probes if probe.success)
        observations.final_reachability = successes / len(probes)

        try:
            pods = cluster.client.list("Pod", namespace="default")
        # mutiny-lint: disable=MUT005 -- deliberate: observation collection is best-effort; a failed listing yields zero-valued observations rather than a failed experiment
        except Exception:  # noqa: BLE001 - collection must never fail the experiment
            pods = []
        restarts = 0
        unreachable_running = 0
        for pod in pods:
            status = pod.get("status", {})
            if not isinstance(status, dict):
                continue
            restart_count = status.get("restartCount", 0)
            if isinstance(restart_count, int) and not isinstance(restart_count, bool):
                restarts += 1 if restart_count > 0 else 0
            if status.get("phase") == "Running" and status.get("ready"):
                if not cluster.network.pod_reachable(pod):
                    unreachable_running += 1
        observations.app_pod_restarts = restarts
        observations.unreachable_running_pods = unreachable_running

        # Client-level observations.
        result.latency_series = client.time_series()
        client_observations = result.client_observations
        client_observations.latency_series = result.latency_series
        client_observations.error_count = len(client.error_samples())
        client_observations.error_bursts = client.error_burst_count()
        client_observations.total_requests = len(client.samples)
        ordered = sorted(client.samples, key=lambda sample: sample.time)
        client_observations.unreachable_from_some_point = detect_unreachable_tail(
            [sample.success for sample in ordered]
        )

        # User-visible errors (Figure 7): errors returned to the cluster user.
        result.user_request_count = len(driver.requests)
        result.user_error_count = len(driver.failed_requests())
