"""Table and figure renderers.

Every table and figure of the paper's evaluation has one renderer here that
turns campaign results (or the FFDA dataset) into the rows/series the paper
reports.  The benchmark harness calls these and prints their output, so a
benchmark run regenerates the paper's artifacts from the simulated campaign.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.core import ffda
from repro.core.analysis import (
    client_impact_analysis,
    critical_field_analysis,
    user_error_analysis,
)
from repro.core.campaign import CampaignResult
from repro.core.classification import ClientFailure, OrchestratorFailure
from repro.core.experiment import ExperimentResult
from repro.workloads.workload import WorkloadKind


def _format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a simple fixed-width text table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[index] for index in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Campaign summary (CLI header)
# --------------------------------------------------------------------------


def render_campaign_summary(campaign: CampaignResult) -> str:
    """A compact summary of a campaign run, printed by the CLI.

    Every figure here comes from the campaign's one-pass streaming tally, so
    summarizing a store-backed paper-scale campaign costs one shard at a
    time of memory.
    """
    lines = [
        f"experiments        : {campaign.total_experiments()}",
        f"activation rate    : {campaign.activation_rate() * 100:.1f}%",
        f"critical results   : {campaign.critical_count()}",
    ]
    counts = campaign.classification_counts()
    if counts:
        rows = [[key, str(value)] for key, value in counts.items()]
        lines.append("")
        lines.append(_format_table(["OF/CF", "count"], rows))
    return "Campaign summary\n" + "\n".join(lines)


def render_store_summary(
    store,
    include_layout: bool = False,
    campaign: Optional[CampaignResult] = None,
    digest: Optional[str] = None,
) -> str:
    """Summarize a sharded result store (the ``campaign inspect`` body).

    Folds the store in one streaming pass.  The default output depends only
    on the stored *results* — not on how they were chunked into shards — so
    serial and parallel runs of the same campaign render identically and CI
    can diff it.  ``include_layout`` appends the worker-count-dependent
    layout facts (shard count, compressed size) for humans.  Callers that
    already tallied the store (or computed its digest) pass ``campaign`` /
    ``digest`` to avoid decompressing the shards again.
    """
    if campaign is None:
        campaign = CampaignResult(results=store.all_results())
    text = render_campaign_summary(campaign).replace(
        "Campaign summary", "Result store summary", 1
    )
    if include_layout:
        # Raw vs distinct record counts differ only when an experiment was
        # replayed into a second shard (e.g. a mis-tuned distributed lease
        # TTL); surfacing both makes wasted work visible at a glance.
        text += (
            f"\n\nshards             : {len(store.shard_paths())}"
            f"\nshard records      : {store.stored_record_count()}"
            f" ({store.record_count()} distinct)"
            f"\ncompressed size    : {store.compressed_bytes()} bytes"
            f"\nresults digest     : {digest if digest else store.results_digest()}"
        )
    return text


# --------------------------------------------------------------------------
# Canonical machine-readable documents (inspect --json and GET /v1/…)
# --------------------------------------------------------------------------


#: Schema version of :func:`store_document` / :func:`tables_document`.  Bump
#: it whenever a field is renamed, removed, or changes meaning — consumers
#: (CI diffs, the HTTP API's clients) key on it.
STORE_DOCUMENT_SCHEMA = 1


def store_document(
    store,
    campaign: Optional[CampaignResult] = None,
    digest: Optional[str] = None,
) -> dict:
    """The canonical machine-readable summary of a sharded result store.

    One document, two surfaces: ``repro.cli inspect --json`` writes it and
    ``GET /v1/campaigns/{id}`` serves it — byte-identical for the same store
    (serialize with :func:`document_to_bytes`).  Every field is
    worker-count-independent except ``stored_records``, which equals
    ``experiments`` iff zero experiments were replayed into a second shard,
    so diffing this document against a serial run's proves a distributed
    campaign (even one with a SIGKILLed worker) lost and duplicated nothing.
    """
    if campaign is None:
        campaign = CampaignResult(results=store.all_results())
    return {
        "schema": STORE_DOCUMENT_SCHEMA,
        "experiments": campaign.total_experiments(),
        "activation_rate": campaign.activation_rate(),
        "critical_results": campaign.critical_count(),
        "classification_counts": campaign.classification_counts(),
        "results_digest": digest if digest is not None else store.results_digest(),
        "stored_records": store.stored_record_count(),
    }


def tables_document(campaign: CampaignResult) -> dict:
    """The paper's tables as one JSON-ready document (the ``/tables`` body).

    Tables IV and V arrive keyed ``(workload, family)`` from the tally;
    JSON objects need string keys, so they nest as
    ``{workload: {family: {label: count}}}``.
    """

    def nest(counts: dict) -> dict:
        nested: dict = {}
        for (workload, family), row_counts in sorted(counts.items()):
            nested.setdefault(workload, {})[family] = dict(row_counts)
        return nested

    return {
        "schema": STORE_DOCUMENT_SCHEMA,
        "experiments": campaign.total_experiments(),
        "activation_rate": campaign.activation_rate(),
        "critical_results": campaign.critical_count(),
        "classification_counts": campaign.classification_counts(),
        "table3_of_cf_matrix": campaign.of_cf_matrix(),
        "table4_orchestrator_failures": nest(campaign.of_counts()),
        "table5_client_failures": nest(campaign.cf_counts()),
    }


def document_to_bytes(document: dict) -> bytes:
    """Serialize a document to its canonical bytes.

    The one serialization both surfaces use — ``indent=2, sort_keys=True``,
    UTF-8, no trailing newline — so "CLI file and HTTP body are identical"
    is a byte-for-byte guarantee, not a semantic one.
    """
    return json.dumps(document, indent=2, sort_keys=True).encode("utf-8")


# --------------------------------------------------------------------------
# Table I — fault / error / failure taxonomy with real-world counts
# --------------------------------------------------------------------------


def render_table1() -> str:
    """Table I: the FFDA fault-error-failure chain with incident counts."""
    rows = []
    for name, count in sorted(ffda.count_by_fault().items(), key=lambda item: -item[1]):
        rows.append(["Fault", name, str(count)])
    for name, count in sorted(ffda.count_by_error().items(), key=lambda item: -item[1]):
        rows.append(["Error", name, str(count)])
    for name, count in sorted(ffda.count_by_failure().items(), key=lambda item: -item[1]):
        rows.append(["Failure", name, str(count)])
    table = _format_table(["Level", "Category", "Incidents"], rows)
    summary = (
        f"\nTotal incidents: {ffda.incident_count()} | outages: {ffda.outage_count()} | "
        f"misconfigurations: {ffda.misconfiguration_count()} | "
        f"replicable by Mutiny: {ffda.replicable_count()}"
    )
    return table + summary


# --------------------------------------------------------------------------
# Table III — OF → CF mapping
# --------------------------------------------------------------------------


def render_table3(campaign: CampaignResult, workload: Optional[WorkloadKind] = None) -> str:
    """Table III: propagation of orchestrator failures to client failures."""
    headers = ["OF \\ CF"] + [failure.value for failure in ClientFailure]
    rows = []
    matrix = campaign.of_cf_matrix(workload)
    for of_name in [failure.value for failure in OrchestratorFailure]:
        row = [of_name]
        for cf_name in [failure.value for failure in ClientFailure]:
            row.append(str(matrix[of_name][cf_name]))
        rows.append(row)
    title = f"workload={workload.value}" if workload else "all workloads"
    return f"Table III ({title})\n" + _format_table(headers, rows)


# --------------------------------------------------------------------------
# Table IV / Table V — OF and CF statistics per workload and injection type
# --------------------------------------------------------------------------


def render_table4(campaign: CampaignResult) -> str:
    """Table IV: orchestrator-level failures per workload and injection type."""
    headers = ["Workload", "Injection", "Perf."] + [f.value for f in OrchestratorFailure]
    rows = []
    counts = campaign.of_counts()
    for (workload, family), row_counts in sorted(counts.items()):
        total = sum(row_counts.values())
        row = [workload, family, str(total)]
        row += [str(row_counts[f.value]) for f in OrchestratorFailure]
        rows.append(row)
    totals = {f.value: 0 for f in OrchestratorFailure}
    grand_total = 0
    for row_counts in counts.values():
        for key, value in row_counts.items():
            totals[key] += value
            grand_total += value
    summary_row = ["TOTAL", "", str(grand_total)] + [
        str(totals[f.value]) for f in OrchestratorFailure
    ]
    percent_row = ["%", "", "100%"] + [
        f"{100.0 * totals[f.value] / grand_total:.1f}%" if grand_total else "0%"
        for f in OrchestratorFailure
    ]
    rows.append(summary_row)
    rows.append(percent_row)
    return "Table IV\n" + _format_table(headers, rows)


def render_table5(campaign: CampaignResult) -> str:
    """Table V: client-level failures per workload and injection type."""
    headers = ["Workload", "Injection", "Perf."] + [f.value for f in ClientFailure]
    rows = []
    counts = campaign.cf_counts()
    for (workload, family), row_counts in sorted(counts.items()):
        total = sum(row_counts.values())
        row = [workload, family, str(total)]
        row += [str(row_counts[f.value]) for f in ClientFailure]
        rows.append(row)
    totals = {f.value: 0 for f in ClientFailure}
    grand_total = 0
    for row_counts in counts.values():
        for key, value in row_counts.items():
            totals[key] += value
            grand_total += value
    rows.append(["TOTAL", "", str(grand_total)] + [str(totals[f.value]) for f in ClientFailure])
    rows.append(
        ["%", "", "100%"]
        + [
            f"{100.0 * totals[f.value] / grand_total:.1f}%" if grand_total else "0%"
            for f in ClientFailure
        ]
    )
    return "Table V\n" + _format_table(headers, rows)


# --------------------------------------------------------------------------
# Table VI — propagation through Apiserver validation
# --------------------------------------------------------------------------


def render_table6(rows: list[dict]) -> str:
    """Table VI: injections into component→Apiserver messages."""
    headers = ["Workload", "Component", "Inj.", "Prop", "Err."]
    body = [
        [
            row["workload"],
            row["component"],
            str(row["injections"]),
            str(row["propagated"]),
            str(row["errors"]),
        ]
        for row in rows
    ]
    return "Table VI\n" + _format_table(headers, body)


# --------------------------------------------------------------------------
# Table VII — real-world coverage
# --------------------------------------------------------------------------


def render_table7() -> str:
    """Table VII: comparison between Mutiny-triggered and real-world failures."""
    coverage = ffda.coverage_table()
    rows = []
    for level in ("errors", "failures"):
        for category, subcategories in coverage[level].items():
            for subcategory, marker in subcategories:
                rows.append([level, category, subcategory, marker])
    return "Table VII\n" + _format_table(["Level", "Category", "Subcategory", "Mutiny"], rows)


# --------------------------------------------------------------------------
# Figures
# --------------------------------------------------------------------------


def render_figure5(golden_series: list[float], injected_series: list[float], zscore: float) -> str:
    """Figure 5: a golden latency series next to an injected one."""

    def summarize(series: list[float]) -> str:
        if not series:
            return "no samples"
        failed = sum(1 for value in series if value == 0.0)
        nonzero = [value for value in series if value > 0.0]
        mean = sum(nonzero) / len(nonzero) if nonzero else 0.0
        return f"{len(series)} requests, {failed} failed, mean latency {mean * 1000:.1f} ms"

    return (
        "Figure 5\n"
        f"golden run   : {summarize(golden_series)}\n"
        f"injected run : {summarize(injected_series)} (z-score {zscore:.1f})"
    )


def render_figure6(results: Iterable[ExperimentResult]) -> str:
    """Figure 6: client z-score distribution per orchestrator failure category."""
    report = client_impact_analysis(results)
    headers = ["OF", "count", "median z", "p90 z", "max z"]
    rows = []
    for failure in OrchestratorFailure:
        stats = report.summary().get(failure.value)
        if stats is None:
            continue
        rows.append(
            [
                failure.value,
                str(int(stats["count"])),
                f"{stats['median']:.2f}",
                f"{stats['p90']:.2f}",
                f"{stats['max']:.2f}",
            ]
        )
    return "Figure 6\n" + _format_table(headers, rows)


def render_figure7(results: Iterable[ExperimentResult]) -> str:
    """Figure 7: user-visible errors per orchestrator failure category."""
    report = user_error_analysis(results)
    headers = ["OF", "experiments", "user saw error"]
    rows = []
    for failure in OrchestratorFailure:
        if failure.value not in report.per_failure:
            continue
        total, errored = report.per_failure[failure.value]
        rows.append([failure.value, str(total), str(errored)])
    silent = report.silent_failure_fraction
    return (
        "Figure 7\n"
        + _format_table(headers, rows)
        + f"\nsilent failures (no user-visible error among OF != No): {silent * 100:.1f}%"
    )


def render_critical_fields(results: Iterable[ExperimentResult]) -> str:
    """Finding F2: critical-field analysis summary."""
    report = critical_field_analysis(results)
    headers = ["Field category", "critical injections", "distinct fields"]
    rows = []
    for category in sorted(report.injections_per_category, key=lambda key: -report.injections_per_category[key]):
        rows.append(
            [
                category,
                str(report.injections_per_category[category]),
                str(report.fields_per_category.get(category, 0)),
            ]
        )
    return (
        "Critical-field analysis (F2)\n"
        + _format_table(headers, rows)
        + f"\ndependency-field share of critical injections: {report.dependency_share * 100:.1f}%"
    )
