"""Process-parallel campaign execution.

Every injection experiment is an independent, deterministically-seeded
simulation, which makes a campaign embarrassingly parallel: the paper's full
campaign is ~8,800 experiments (§IV-C) and nothing about one experiment
depends on another.  The :class:`CampaignExecutor` shards a planned task
list across a :class:`concurrent.futures.ProcessPoolExecutor`; every worker
process rebuilds its own :class:`ExperimentRunner` from the picklable
experiment configuration and runs batches of tasks, and the parent merges
the results back in plan order.  Because each experiment is fully determined
by its ``(workload, fault, seed, config)`` tuple, a parallel run produces a
result list identical to the serial run of the same plan.

The executor also provides chunked progress reporting and checkpointing:
after every completed batch the results so far can be written to a
checkpoint file, and a later run of the same plan resumes from it, only
executing the experiments that are still missing.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.classification import GoldenBaseline
from repro.core.experiment import ExperimentConfig, ExperimentResult, ExperimentRunner
from repro.core.injector import FaultSpec
from repro.core.resultstore import (
    BatchedShardWriter,
    ResultStoreMismatchError,
    ShardedResultStore,
    StoredResults,
    atomic_write_bytes,
)
from repro.workloads.workload import WorkloadKind

#: Format version of the checkpoint files (bumped on layout changes).
CHECKPOINT_VERSION = 1

#: Historical first seed of the baseline golden runs (run ``i`` uses
#: ``base_seed + i``), matching :meth:`ExperimentRunner.build_baseline`.
DEFAULT_BASE_SEED = 100

#: ``progress(done, total)`` callback invoked as batches complete.
ProgressCallback = Callable[[int, int], None]


class CheckpointMismatchError(ResultStoreMismatchError):
    """A checkpoint file does not belong to the campaign being executed."""


@dataclass(frozen=True)
class ExperimentTask:
    """One fully-specified experiment: the picklable unit of parallel work."""

    #: Position in the campaign plan; results are merged back in this order.
    index: int
    workload: WorkloadKind
    fault: FaultSpec
    #: The experiment's simulation seed, fixed at planning time so the
    #: outcome does not depend on which worker executes the task.
    seed: int


@dataclass(frozen=True)
class WorkloadPrep:
    """A golden-baseline + field-recording job for one workload."""

    workload: WorkloadKind
    #: Golden runs used to build the classification baseline (0 = skip the
    #: baseline and only record fields, as the propagation experiments do).
    golden_runs: int
    #: Seed of the extra golden run that records the fields written to etcd.
    record_seed: int
    #: Seed of the first baseline golden run (run ``i`` uses ``base_seed+i``,
    #: matching :meth:`ExperimentRunner.build_baseline`).
    base_seed: int = DEFAULT_BASE_SEED


@dataclass(frozen=True)
class GoldenRunJob:
    """One golden run: the picklable unit of parallel workload preparation.

    Workload preparation used to fan out one job per *workload*, which made
    the golden baselines the serial fraction of a campaign; preparation now
    fans out one job per golden *run*, so ``golden_runs`` baseline runs and
    the field-recording run of every workload all execute concurrently.
    """

    workload: WorkloadKind
    seed: int
    #: Record the fields written to etcd during this run (the extra run the
    #: campaign uses for fault generation).
    record_fields: bool = False


@dataclass(frozen=True)
class GoldenRunStats:
    """The per-run observables a golden baseline is assembled from."""

    latency_series: tuple
    pods_created: int
    settle_time: Optional[float]
    client_errors: int


def resolve_workers(workers: Optional[int]) -> int:
    """Map a configured worker count onto an effective one (None = all CPUs)."""
    if workers is None or workers <= 0:
        return os.cpu_count() or 1
    return workers


# --------------------------------------------------------------------------
# Worker-process functions (module-level so they pickle by reference under
# both fork and spawn start methods).
# --------------------------------------------------------------------------

_WORKER_STATE: dict = {}


def _init_worker(experiment_config: ExperimentConfig) -> None:
    """Build the per-process runner once instead of once per task."""
    _WORKER_STATE["runner"] = ExperimentRunner(experiment_config)


def _worker_runner(experiment_config: ExperimentConfig) -> ExperimentRunner:
    """The pool-initialized runner, or a fresh one on the serial path."""
    runner = _WORKER_STATE.get("runner")
    if runner is None:
        runner = ExperimentRunner(experiment_config)
    return runner


def _run_batch_local(
    runner: ExperimentRunner,
    tasks: list[ExperimentTask],
    baselines: dict[str, GoldenBaseline],
    store_root: Optional[str] = None,
    shard_writer: Optional[BatchedShardWriter] = None,
):
    """Run one batch of tasks against an explicit runner.

    Without a store the batch results travel back to the caller in memory
    (the original behaviour).  With ``store_root`` the batch is serialized
    to one compressed shard and only the completed plan indexes travel back,
    so the parent's memory stays bounded by its own bookkeeping no matter
    how large the campaign is.  With a ``shard_writer`` the batch still
    becomes durable immediately but is appended into the writer's open
    shard group instead of creating a new object (``--shard-batch``).

    This is the slice-execution core both backends share: process-pool
    workers reach it through :func:`_run_batch` (pool-initialized runner),
    while the serial path and the distributed ``repro.cli worker`` loop call
    it with their own runner — no process-global state, so several worker
    loops may run inside one process (e.g. threads in tests).
    """
    results = [
        (
            task.index,
            runner.run_experiment(
                task.workload,
                task.fault,
                baseline=baselines.get(task.workload.value),
                seed=task.seed,
            ),
        )
        for task in tasks
    ]
    if shard_writer is not None:
        shard_writer.write(results)
    elif store_root is None:
        return results
    else:
        ShardedResultStore(store_root).write_shard(results)
    return [index for index, _ in results]


def _cached_shard_writer(
    cache: dict, store_root: Optional[str], shard_batch: int
) -> Optional[BatchedShardWriter]:
    """Get-or-create the persistent batched writer for one store root.

    One memoization for both execution paths: pool workers cache in the
    process-global ``_WORKER_STATE``, the serial path caches on its
    executor — either way the writer (and with it the open shard group)
    carries across batches and slices.  No flush is ever needed: appends
    are durable as they happen, and a group cut short by shutdown is simply
    a shard with fewer members.
    """
    if store_root is None or shard_batch <= 1:
        return None
    key = ("shard_writer", store_root, shard_batch)
    writer = cache.get(key)
    if writer is None:
        writer = ShardedResultStore(store_root).batched_writer(shard_batch)
        cache[key] = writer
    return writer


def _run_batch(
    tasks: list[ExperimentTask],
    baselines: dict[str, GoldenBaseline],
    store_root: Optional[str] = None,
    shard_batch: int = 1,
):
    """Run one batch of tasks in a pool worker process."""
    shard_writer = _cached_shard_writer(_WORKER_STATE, store_root, shard_batch)
    return _run_batch_local(
        _WORKER_STATE["runner"], tasks, baselines, store_root, shard_writer
    )


def _run_golden_job(
    experiment_config: ExperimentConfig, job: GoldenRunJob
) -> tuple[GoldenRunStats, Optional[list]]:
    """Run one golden run and return its baseline stats (and recordings)."""
    # Imported lazily: campaign.py imports this module for the executor.
    from repro.core.campaign import FieldRecorder

    runner = _worker_runner(experiment_config)
    recorder = FieldRecorder() if job.record_fields else None
    result = runner.run_golden(job.workload, seed=job.seed, etcd_observer=recorder)
    stats = GoldenRunStats(
        latency_series=tuple(result.latency_series),
        pods_created=result.pods_created,
        settle_time=result.orchestrator_observations.settle_time,
        client_errors=result.client_observations.error_count,
    )
    return stats, (recorder.recorded() if recorder is not None else None)


def _assemble_baseline(
    experiment_config: ExperimentConfig,
    prep: WorkloadPrep,
    stats: list[GoldenRunStats],
) -> GoldenBaseline:
    """Fold per-run golden stats into the workload's classification baseline.

    Mirrors :meth:`ExperimentRunner.build_baseline` exactly, so fanning the
    golden runs out across workers changes nothing about the baseline.
    """
    expected = ExperimentRunner._expected_replicas(prep.workload)
    settle_times = [s.settle_time for s in stats if s.settle_time is not None]
    return GoldenBaseline.from_golden_runs(
        workload=prep.workload.value,
        series=[list(s.latency_series) for s in stats],
        expected_replicas=expected,
        expected_endpoints=expected,
        pods_created=[s.pods_created for s in stats],
        settle_times=settle_times if settle_times else [experiment_config.run_seconds],
        client_errors=[s.client_errors for s in stats],
    )


# --------------------------------------------------------------------------
# Checkpointing
# --------------------------------------------------------------------------


def tasks_fingerprint(tasks: list[ExperimentTask]) -> str:
    """A stable digest of a plan, used to match checkpoints to campaigns."""
    digest = hashlib.sha256()
    for task in tasks:
        digest.update(
            f"{task.index}|{task.workload.value}|{task.seed}|{task.fault!r}\n".encode("utf-8")
        )
    return digest.hexdigest()


def campaign_fingerprint(
    tasks: list[ExperimentTask],
    experiment_config: ExperimentConfig,
    baselines: Optional[dict[str, GoldenBaseline]] = None,
) -> str:
    """Digest of everything that determines a campaign's results.

    Covers the plan *and* the experiment configuration and golden baselines:
    two campaigns with the same fault plan but different baselines (e.g. a
    different ``golden_runs``) classify results differently, so their
    checkpoints must not be mixed.
    """
    digest = hashlib.sha256(tasks_fingerprint(tasks).encode("utf-8"))
    digest.update(repr(experiment_config).encode("utf-8"))
    for key in sorted(baselines or {}):
        digest.update(f"{key}|{baselines[key]!r}\n".encode("utf-8"))
    return digest.hexdigest()


def prep_fingerprint(
    experiment_config: ExperimentConfig, preps: list[WorkloadPrep]
) -> str:
    """Digest of everything that determines workload preparation results."""
    digest = hashlib.sha256(repr(experiment_config).encode("utf-8"))
    for prep in preps:
        # base_seed joins the digest only when it differs from the historical
        # default, so checkpoints written before the field existed (same
        # semantics, seeds 100+i) still resume.
        suffix = f"|{prep.base_seed}" if prep.base_seed != DEFAULT_BASE_SEED else ""
        digest.update(
            f"{prep.workload.value}|{prep.golden_runs}|{prep.record_seed}"
            f"{suffix}\n".encode("utf-8")
        )
    return digest.hexdigest()


def load_checkpoint_prep(path: str, fingerprint: str) -> Optional[list]:
    """Load the prepared baselines/recordings of a matching checkpoint.

    Returns ``None`` (recompute) when the file is absent, unreadable, or has
    no prep section.  A checkpoint whose prep was built under a *different*
    configuration raises :class:`CheckpointMismatchError` right away: its
    results could never be resumed either, and failing before the expensive
    baseline recomputation beats failing after it.
    """
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        prep = payload.get("prep")
        if payload.get("version") != CHECKPOINT_VERSION or not isinstance(prep, dict):
            return None
        stored = prep.get("fingerprint")
    # mutiny-lint: disable=MUT005 -- deliberate: an unreadable checkpoint degrades to recomputation; the plan-mismatch case still raises below
    except Exception:  # noqa: BLE001 - any unreadable file just means "recompute"
        return None
    if stored != fingerprint:
        raise CheckpointMismatchError(
            f"checkpoint {path!r} was written by a different campaign plan; "
            "delete it (or point --checkpoint elsewhere) to start fresh"
        )
    return prep.get("prepared")


def load_checkpoint(path: str, fingerprint: str) -> dict[int, ExperimentResult]:
    """Load the completed results of a matching checkpoint (empty if absent).

    Raises :class:`CheckpointMismatchError` when the file belongs to a
    different plan (or is not a readable checkpoint at all) — resuming it
    would silently mix incompatible results.
    """
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except Exception as error:  # noqa: BLE001 - any unreadable file is a mismatch
        raise CheckpointMismatchError(
            f"checkpoint {path!r} is not a readable checkpoint file ({error}); "
            "delete it (or point --checkpoint elsewhere) to start fresh"
        ) from error
    if (
        not isinstance(payload, dict)
        or payload.get("version") != CHECKPOINT_VERSION
        or payload.get("fingerprint") != fingerprint
    ):
        raise CheckpointMismatchError(
            f"checkpoint {path!r} was written by a different campaign plan; "
            "delete it (or point --checkpoint elsewhere) to start fresh"
        )
    return dict(payload.get("results", {}))


def write_checkpoint(
    path: str,
    fingerprint: str,
    results: dict[int, ExperimentResult],
    prep: Optional[dict] = None,
) -> None:
    """Atomically persist the results (and optionally the prep) so far."""
    payload = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "results": results,
    }
    if prep is not None:
        payload["prep"] = prep
    buffer = io.BytesIO()
    pickle.dump(payload, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    atomic_write_bytes(path, buffer.getvalue())


# --------------------------------------------------------------------------
# The executor
# --------------------------------------------------------------------------


class CampaignExecutor:
    """Runs planned experiments, in-process or across a process pool.

    With ``workers <= 1`` (or a single pending task) everything runs in the
    calling process through exactly the same task functions, so the serial
    path is the degenerate case of the parallel one rather than a separate
    code path with separate behaviour.

    The process pool is created lazily on first use and shared between
    workload preparation and experiment execution (one pool bootstrap per
    campaign, not one per phase).  Use the executor as a context manager, or
    call :meth:`close`, to shut the pool down.
    """

    def __init__(
        self,
        experiment_config: Optional[ExperimentConfig] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        checkpoint_path: Optional[str] = None,
        results_dir: Optional[str] = None,
        shard_batch: int = 1,
    ):
        if checkpoint_path and results_dir:
            raise ValueError(
                "checkpoint_path and results_dir are alternative persistence "
                "layouts; pass exactly one of them"
            )
        if shard_batch < 1:
            raise ValueError(f"shard_batch must be >= 1, got {shard_batch}")
        self.experiment_config = (
            experiment_config if experiment_config is not None else ExperimentConfig()
        )
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self.progress = progress
        self.checkpoint_path = checkpoint_path
        self.results_dir = results_dir
        #: Finished batches coalesced per shard object (1 = one shard per
        #: batch, the historical layout).  Purely a storage-layout knob:
        #: results, digests, and resume semantics are unchanged.
        self.shard_batch = shard_batch
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Serial-path batched-writer cache (same shape as the pool's
        #: ``_WORKER_STATE``), persisted across execute_slice calls — a
        #: distributed worker (workers=1) coalesces batches across its
        #: slices exactly like the pool path's per-process writers, instead
        #: of silently capping a shard group at one slice's batches.
        self._serial_writers: dict = {}
        self._checkpoint_prep: Optional[dict] = None

    def set_checkpoint_prep(self, fingerprint: str, prepared: list) -> None:
        """Attach the prepared baselines/recordings for persistence.

        Checkpoint layout: re-attached to every checkpoint write.  Store
        layout: written once to ``prep.pkl`` after the store's fingerprint
        check passes.  A resumed campaign then reloads them instead of
        re-running the golden baselines and field recording.
        """
        self._checkpoint_prep = {"fingerprint": fingerprint, "prepared": prepared}

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.experiment_config,),
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (no-op if none was ever started)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CampaignExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------- planning

    def _chunks(self, tasks: list[ExperimentTask], workers: int) -> list[list[ExperimentTask]]:
        """Shard pending tasks into batches.

        Batches amortize worker dispatch and checkpoint writes; four batches
        per worker keeps the tail short when experiment durations vary.
        """
        if self.chunk_size is not None and self.chunk_size > 0:
            size = self.chunk_size
        else:
            size = max(1, -(-len(tasks) // (workers * 4)))
        return [tasks[start : start + size] for start in range(0, len(tasks), size)]

    # ------------------------------------------------------------ execution

    def run_experiments(
        self,
        tasks: list[ExperimentTask],
        baselines: Optional[dict[str, GoldenBaseline]] = None,
    ):
        """Run every task and return the results in plan order.

        Without a ``results_dir`` this returns the familiar in-memory list.
        With one — a directory path or an ``objstore://`` URL; the store
        picks its transport from the root's shape — the workers stream every
        finished batch into the sharded result store and a lazy
        :class:`StoredResults` view is returned instead: peak parent memory
        is bounded by one batch regardless of campaign size, and a rerun
        resumes by scanning the completed shards.
        """
        total = len(tasks)
        fingerprint = campaign_fingerprint(tasks, self.experiment_config, baselines)
        if self.results_dir:
            return self._run_streaming(tasks, baselines, fingerprint, total)

        completed: dict[int, ExperimentResult] = {}
        if self.checkpoint_path:
            completed = load_checkpoint(self.checkpoint_path, fingerprint)

        pending = [task for task in tasks if task.index not in completed]
        if self.progress is not None and completed:
            self.progress(len(completed), total)

        if pending:
            self.execute_slice(
                pending,
                baselines,
                finish=lambda batch: self._finish_batch(batch, completed, fingerprint, total),
            )

        return [completed[task.index] for task in tasks]

    def _run_streaming(self, tasks, baselines, fingerprint, total) -> StoredResults:
        store = ShardedResultStore(self.results_dir)
        store.open(fingerprint, total)
        # Persist the prep only now, after the manifest check above accepted
        # the store: a mis-pointed results_dir must stay untouched.
        if self._checkpoint_prep is not None:
            store.save_prep(
                self._checkpoint_prep["fingerprint"], self._checkpoint_prep["prepared"]
            )
        done = set(store.completed_indexes())
        pending = [task for task in tasks if task.index not in done]
        if self.progress is not None and done:
            self.progress(len(done), total)

        def finish(batch_indexes: list[int]) -> None:
            done.update(batch_indexes)
            if self.progress is not None:
                self.progress(len(done), total)

        if pending:
            self.execute_slice(pending, baselines, finish, store_root=self.results_dir)
            store.refresh()  # the workers added shards behind our scan
        return StoredResults(store, [task.index for task in tasks])

    def execute_slice(self, pending, baselines, finish, store_root=None) -> None:
        """Dispatch a slice of pending tasks in batches, folding each with
        ``finish``.

        The one dispatch loop every execution path shares — plan slice →
        batches → results/shards: batches run serially in-process or across
        the pool, and ``finish`` is called with each batch's
        :func:`_run_batch` return value as it completes, so progress (and
        checkpoints, and distributed lease heartbeats) advance even while
        other batches are still running.  The local process-pool backend
        hands the whole pending plan to one call; the distributed worker
        loop calls it once per leased slice.  An exception raised by
        ``finish`` aborts the remaining batches of the slice (the
        distributed worker uses this to abandon a lost lease — already
        written shards always survive).

        The serial path builds its own runner rather than touching the
        pool's process-global state, so several executors may run slices
        concurrently inside one process (e.g. worker loops in threads).
        """
        workers = min(self.workers, max(len(pending), 1))
        chunks = self._chunks(pending, workers)
        if workers <= 1:
            runner = ExperimentRunner(self.experiment_config)
            # The writer persists on the executor (one executor serves one
            # worker loop), so the open shard group spans slices; the runner
            # stays per-call because it is the piece other executors in the
            # same process must not share.
            writer = _cached_shard_writer(self._serial_writers, store_root, self.shard_batch)
            for chunk in chunks:
                finish(_run_batch_local(runner, chunk, baselines or {}, store_root, writer))
            return
        pool = self._get_pool()
        futures = {
            pool.submit(_run_batch, chunk, baselines or {}, store_root, self.shard_batch)
            for chunk in chunks
        }
        while futures:
            completed, futures = wait(futures, return_when=FIRST_COMPLETED)
            for future in completed:
                finish(future.result())

    def _finish_batch(
        self,
        batch_results: list[tuple[int, ExperimentResult]],
        completed: dict[int, ExperimentResult],
        fingerprint: str,
        total: int,
    ) -> None:
        for index, result in batch_results:
            completed[index] = result
        if self.checkpoint_path:
            write_checkpoint(
                self.checkpoint_path, fingerprint, completed, prep=self._checkpoint_prep
            )
        if self.progress is not None:
            self.progress(len(completed), total)

    # ---------------------------------------------------------- preparation

    def prepare_workloads(
        self, preps: list[WorkloadPrep]
    ) -> list[tuple[Optional[GoldenBaseline], list]]:
        """Run the golden baselines + field recording for each workload.

        Preparation fans out one job per golden *run* (not per workload):
        every baseline run and every field-recording run is independent, so
        a campaign with three workloads and three golden runs keeps twelve
        workers busy instead of three.  The per-run stats are folded back
        into baselines in the parent; results keep the order of ``preps``.
        """
        jobs: list[tuple[int, GoldenRunJob]] = []
        for slot, prep in enumerate(preps):
            for run in range(prep.golden_runs):
                jobs.append(
                    (slot, GoldenRunJob(workload=prep.workload, seed=prep.base_seed + run))
                )
            jobs.append(
                (
                    slot,
                    GoldenRunJob(
                        workload=prep.workload, seed=prep.record_seed, record_fields=True
                    ),
                )
            )

        if self.workers <= 1 or len(jobs) <= 1:
            outcomes = [
                _run_golden_job(self.experiment_config, job) for _, job in jobs
            ]
        else:
            pool = self._get_pool()
            futures = [
                pool.submit(_run_golden_job, self.experiment_config, job)
                for _, job in jobs
            ]
            outcomes = [future.result() for future in futures]

        prepared: list[tuple[Optional[GoldenBaseline], list]] = []
        for slot, prep in enumerate(preps):
            stats = [
                outcome[0]
                for (job_slot, job), outcome in zip(jobs, outcomes)
                if job_slot == slot and not job.record_fields
            ]
            recorded = next(
                outcome[1]
                for (job_slot, job), outcome in zip(jobs, outcomes)
                if job_slot == slot and job.record_fields
            )
            baseline = (
                _assemble_baseline(self.experiment_config, prep, stats)
                if prep.golden_runs > 0
                else None
            )
            prepared.append((baseline, recorded))
        return prepared
