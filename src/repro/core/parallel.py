"""Process-parallel campaign execution.

Every injection experiment is an independent, deterministically-seeded
simulation, which makes a campaign embarrassingly parallel: the paper's full
campaign is ~8,800 experiments (§IV-C) and nothing about one experiment
depends on another.  The :class:`CampaignExecutor` shards a planned task
list across a :class:`concurrent.futures.ProcessPoolExecutor`; every worker
process rebuilds its own :class:`ExperimentRunner` from the picklable
experiment configuration and runs batches of tasks, and the parent merges
the results back in plan order.  Because each experiment is fully determined
by its ``(workload, fault, seed, config)`` tuple, a parallel run produces a
result list identical to the serial run of the same plan.

The executor also provides chunked progress reporting and checkpointing:
after every completed batch the results so far can be written to a
checkpoint file, and a later run of the same plan resumes from it, only
executing the experiments that are still missing.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.classification import GoldenBaseline
from repro.core.experiment import ExperimentConfig, ExperimentResult, ExperimentRunner
from repro.core.injector import FaultSpec
from repro.workloads.workload import WorkloadKind

#: Format version of the checkpoint files (bumped on layout changes).
CHECKPOINT_VERSION = 1

#: ``progress(done, total)`` callback invoked as batches complete.
ProgressCallback = Callable[[int, int], None]


class CheckpointMismatchError(RuntimeError):
    """A checkpoint file does not belong to the campaign being executed."""


@dataclass(frozen=True)
class ExperimentTask:
    """One fully-specified experiment: the picklable unit of parallel work."""

    #: Position in the campaign plan; results are merged back in this order.
    index: int
    workload: WorkloadKind
    fault: FaultSpec
    #: The experiment's simulation seed, fixed at planning time so the
    #: outcome does not depend on which worker executes the task.
    seed: int


@dataclass(frozen=True)
class WorkloadPrep:
    """A golden-baseline + field-recording job for one workload."""

    workload: WorkloadKind
    #: Golden runs used to build the classification baseline (0 = skip the
    #: baseline and only record fields, as the propagation experiments do).
    golden_runs: int
    #: Seed of the extra golden run that records the fields written to etcd.
    record_seed: int


def resolve_workers(workers: Optional[int]) -> int:
    """Map a configured worker count onto an effective one (None = all CPUs)."""
    if workers is None or workers <= 0:
        return os.cpu_count() or 1
    return workers


# --------------------------------------------------------------------------
# Worker-process functions (module-level so they pickle by reference under
# both fork and spawn start methods).
# --------------------------------------------------------------------------

_WORKER_STATE: dict = {}


def _init_worker(experiment_config: ExperimentConfig) -> None:
    """Build the per-process runner once instead of once per task."""
    _WORKER_STATE["runner"] = ExperimentRunner(experiment_config)


def _run_batch(
    tasks: list[ExperimentTask],
    baselines: dict[str, GoldenBaseline],
) -> list[tuple[int, ExperimentResult]]:
    """Run one batch of tasks in a worker process."""
    runner: ExperimentRunner = _WORKER_STATE["runner"]
    return [
        (
            task.index,
            runner.run_experiment(
                task.workload,
                task.fault,
                baseline=baselines.get(task.workload.value),
                seed=task.seed,
            ),
        )
        for task in tasks
    ]


def _prepare_workload(
    experiment_config: ExperimentConfig, prep: WorkloadPrep
) -> tuple[Optional[GoldenBaseline], list]:
    """Build the golden baseline and record the etcd-written fields."""
    # Imported lazily: campaign.py imports this module for the executor.
    from repro.core.campaign import FieldRecorder

    runner = ExperimentRunner(experiment_config)
    baseline = None
    if prep.golden_runs > 0:
        baseline = runner.build_baseline(prep.workload, runs=prep.golden_runs)
    recorder = FieldRecorder()
    runner.run_golden(prep.workload, seed=prep.record_seed, etcd_observer=recorder)
    return baseline, recorder.recorded()


# --------------------------------------------------------------------------
# Checkpointing
# --------------------------------------------------------------------------


def tasks_fingerprint(tasks: list[ExperimentTask]) -> str:
    """A stable digest of a plan, used to match checkpoints to campaigns."""
    digest = hashlib.sha256()
    for task in tasks:
        digest.update(
            f"{task.index}|{task.workload.value}|{task.seed}|{task.fault!r}\n".encode("utf-8")
        )
    return digest.hexdigest()


def campaign_fingerprint(
    tasks: list[ExperimentTask],
    experiment_config: ExperimentConfig,
    baselines: Optional[dict[str, GoldenBaseline]] = None,
) -> str:
    """Digest of everything that determines a campaign's results.

    Covers the plan *and* the experiment configuration and golden baselines:
    two campaigns with the same fault plan but different baselines (e.g. a
    different ``golden_runs``) classify results differently, so their
    checkpoints must not be mixed.
    """
    digest = hashlib.sha256(tasks_fingerprint(tasks).encode("utf-8"))
    digest.update(repr(experiment_config).encode("utf-8"))
    for key in sorted(baselines or {}):
        digest.update(f"{key}|{baselines[key]!r}\n".encode("utf-8"))
    return digest.hexdigest()


def prep_fingerprint(
    experiment_config: ExperimentConfig, preps: list[WorkloadPrep]
) -> str:
    """Digest of everything that determines workload preparation results."""
    digest = hashlib.sha256(repr(experiment_config).encode("utf-8"))
    for prep in preps:
        digest.update(
            f"{prep.workload.value}|{prep.golden_runs}|{prep.record_seed}\n".encode("utf-8")
        )
    return digest.hexdigest()


def load_checkpoint_prep(path: str, fingerprint: str) -> Optional[list]:
    """Load the prepared baselines/recordings of a matching checkpoint.

    Returns ``None`` (recompute) when the file is absent, unreadable, or has
    no prep section.  A checkpoint whose prep was built under a *different*
    configuration raises :class:`CheckpointMismatchError` right away: its
    results could never be resumed either, and failing before the expensive
    baseline recomputation beats failing after it.
    """
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        prep = payload.get("prep")
        if payload.get("version") != CHECKPOINT_VERSION or not isinstance(prep, dict):
            return None
        stored = prep.get("fingerprint")
    except Exception:  # noqa: BLE001 - any unreadable file just means "recompute"
        return None
    if stored != fingerprint:
        raise CheckpointMismatchError(
            f"checkpoint {path!r} was written by a different campaign plan; "
            "delete it (or point --checkpoint elsewhere) to start fresh"
        )
    return prep.get("prepared")


def load_checkpoint(path: str, fingerprint: str) -> dict[int, ExperimentResult]:
    """Load the completed results of a matching checkpoint (empty if absent).

    Raises :class:`CheckpointMismatchError` when the file belongs to a
    different plan (or is not a readable checkpoint at all) — resuming it
    would silently mix incompatible results.
    """
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except Exception as error:  # noqa: BLE001 - any unreadable file is a mismatch
        raise CheckpointMismatchError(
            f"checkpoint {path!r} is not a readable checkpoint file ({error}); "
            "delete it (or point --checkpoint elsewhere) to start fresh"
        ) from error
    if (
        not isinstance(payload, dict)
        or payload.get("version") != CHECKPOINT_VERSION
        or payload.get("fingerprint") != fingerprint
    ):
        raise CheckpointMismatchError(
            f"checkpoint {path!r} was written by a different campaign plan; "
            "delete it (or point --checkpoint elsewhere) to start fresh"
        )
    return dict(payload.get("results", {}))


def write_checkpoint(
    path: str,
    fingerprint: str,
    results: dict[int, ExperimentResult],
    prep: Optional[dict] = None,
) -> None:
    """Atomically persist the results (and optionally the prep) so far."""
    payload = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "results": results,
    }
    if prep is not None:
        payload["prep"] = prep
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp_path, path)


# --------------------------------------------------------------------------
# The executor
# --------------------------------------------------------------------------


class CampaignExecutor:
    """Runs planned experiments, in-process or across a process pool.

    With ``workers <= 1`` (or a single pending task) everything runs in the
    calling process through exactly the same task functions, so the serial
    path is the degenerate case of the parallel one rather than a separate
    code path with separate behaviour.

    The process pool is created lazily on first use and shared between
    workload preparation and experiment execution (one pool bootstrap per
    campaign, not one per phase).  Use the executor as a context manager, or
    call :meth:`close`, to shut the pool down.
    """

    def __init__(
        self,
        experiment_config: Optional[ExperimentConfig] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        checkpoint_path: Optional[str] = None,
    ):
        self.experiment_config = (
            experiment_config if experiment_config is not None else ExperimentConfig()
        )
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self.progress = progress
        self.checkpoint_path = checkpoint_path
        self._pool: Optional[ProcessPoolExecutor] = None
        self._checkpoint_prep: Optional[dict] = None

    def set_checkpoint_prep(self, fingerprint: str, prepared: list) -> None:
        """Attach the prepared baselines/recordings to every checkpoint write.

        A resumed campaign then reloads them via :func:`load_checkpoint_prep`
        instead of re-running the golden baselines and field recording.
        """
        self._checkpoint_prep = {"fingerprint": fingerprint, "prepared": prepared}

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.experiment_config,),
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (no-op if none was ever started)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CampaignExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------- planning

    def _chunks(self, tasks: list[ExperimentTask], workers: int) -> list[list[ExperimentTask]]:
        """Shard pending tasks into batches.

        Batches amortize worker dispatch and checkpoint writes; four batches
        per worker keeps the tail short when experiment durations vary.
        """
        if self.chunk_size is not None and self.chunk_size > 0:
            size = self.chunk_size
        else:
            size = max(1, -(-len(tasks) // (workers * 4)))
        return [tasks[start : start + size] for start in range(0, len(tasks), size)]

    # ------------------------------------------------------------ execution

    def run_experiments(
        self,
        tasks: list[ExperimentTask],
        baselines: Optional[dict[str, GoldenBaseline]] = None,
    ) -> list[ExperimentResult]:
        """Run every task and return the results in plan order."""
        total = len(tasks)
        fingerprint = campaign_fingerprint(tasks, self.experiment_config, baselines)
        completed: dict[int, ExperimentResult] = {}
        if self.checkpoint_path:
            completed = load_checkpoint(self.checkpoint_path, fingerprint)

        pending = [task for task in tasks if task.index not in completed]
        if self.progress is not None and completed:
            self.progress(len(completed), total)

        workers = min(self.workers, max(len(pending), 1))
        if pending:
            chunks = self._chunks(pending, workers)
            if workers <= 1:
                self._run_serial(chunks, baselines, completed, fingerprint, total)
            else:
                self._run_pool(chunks, baselines, completed, fingerprint, total)

        return [completed[task.index] for task in tasks]

    def _finish_batch(
        self,
        batch_results: list[tuple[int, ExperimentResult]],
        completed: dict[int, ExperimentResult],
        fingerprint: str,
        total: int,
    ) -> None:
        for index, result in batch_results:
            completed[index] = result
        if self.checkpoint_path:
            write_checkpoint(
                self.checkpoint_path, fingerprint, completed, prep=self._checkpoint_prep
            )
        if self.progress is not None:
            self.progress(len(completed), total)

    def _run_serial(self, chunks, baselines, completed, fingerprint, total) -> None:
        _init_worker(self.experiment_config)
        try:
            for chunk in chunks:
                self._finish_batch(
                    _run_batch(chunk, baselines or {}), completed, fingerprint, total
                )
        finally:
            _WORKER_STATE.clear()

    def _run_pool(self, chunks, baselines, completed, fingerprint, total) -> None:
        pool = self._get_pool()
        futures = {pool.submit(_run_batch, chunk, baselines or {}) for chunk in chunks}
        # Merge batches as they complete so checkpoints and progress advance
        # even while other batches are still running.
        while futures:
            done, futures = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                self._finish_batch(future.result(), completed, fingerprint, total)

    # ---------------------------------------------------------- preparation

    def prepare_workloads(
        self, preps: list[WorkloadPrep]
    ) -> list[tuple[Optional[GoldenBaseline], list]]:
        """Run the golden baseline + field recording for each workload.

        Workload preparations are independent of each other, so they fan out
        across the pool as well (they are the serial fraction of a campaign
        otherwise).  Results keep the order of ``preps``.
        """
        if self.workers <= 1 or len(preps) <= 1:
            return [_prepare_workload(self.experiment_config, prep) for prep in preps]
        pool = self._get_pool()
        futures = [
            pool.submit(_prepare_workload, self.experiment_config, prep) for prep in preps
        ]
        return [future.result() for future in futures]
