"""The Mutiny injector.

Every fault/error is characterized by three attributes (paper §IV-A):

* **where** — the communication channel (Apiserver→etcd or a component→
  Apiserver), the resource kind (optionally a specific instance), and either
  a field path or the serialization bytes of the message;
* **what** — the fault type: bit-flip, data-type set, or message drop (plus
  serialization-byte corruption for protocol experiments);
* **when** — the occurrence index of messages related to the targeted
  resource instance: the injection fires on the k-th matching message.

The injector is installed as a hook on the Apiserver's etcd-write path or on
a component's API client and tampers with exactly one message per
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional

from repro.serialization import DecodeError, compile_path, decode, encode


class FaultType(Enum):
    """The fault/error models supported by Mutiny."""

    BIT_FLIP = "bit-flip"
    DATA_TYPE_SET = "value-set"
    MESSAGE_DROP = "drop"
    PROTO_BYTE_FLIP = "proto-byte"


class InjectionChannel(Enum):
    """The communication channel the injection targets."""

    APISERVER_TO_ETCD = "apiserver-etcd"
    COMPONENT_TO_APISERVER = "component-apiserver"


@dataclass
class FaultSpec:
    """A single fault/error to inject: the (where, what, when) triplet."""

    #: where — channel, resource kind, optional instance name/namespace,
    #: and the field path (None for message drops and protocol-byte flips).
    channel: InjectionChannel
    kind: str
    field_path: Optional[str] = None
    name: Optional[str] = None
    namespace: Optional[str] = None
    #: For COMPONENT_TO_APISERVER: only messages from this component match
    #: (e.g. "kube-controller-manager", "kube-scheduler", "kubelet-worker-1").
    component: Optional[str] = None

    #: what — the fault type and its parameter.
    fault_type: FaultType = FaultType.BIT_FLIP
    #: BIT_FLIP on integers: which bit to flip.  BIT_FLIP on strings: which
    #: character's least-significant bit to flip.  PROTO_BYTE_FLIP: which
    #: byte of the serialized message (modulo its length).
    bit_index: int = 0
    #: DATA_TYPE_SET: the value to store.
    set_value: Any = None

    #: when — fire on the k-th matching message (1-based).
    occurrence: int = 1

    def describe(self) -> str:
        """One-line human-readable description of the fault."""
        where = self.field_path if self.field_path else "<message>"
        target = self.name if self.name else "*"
        return (
            f"{self.fault_type.value} on {self.kind}/{target}.{where} "
            f"via {self.channel.value} at occurrence {self.occurrence}"
        )


@dataclass
class InjectionRecord:
    """What actually happened when the fault fired."""

    time: float
    spec: FaultSpec
    target_name: str
    target_namespace: Optional[str]
    original_value: Any = None
    injected_value: Any = None
    dropped: bool = False
    decode_failed_after: bool = False


def flip_int_bit(value: int, bit_index: int) -> int:
    """Flip one bit of an integer value."""
    return value ^ (1 << bit_index)


def flip_str_char_bit(value: str, char_index: int) -> str:
    """Flip the least-significant bit of one character of a string.

    Flipping the LSB of an ASCII character yields another character, so the
    result is (with high probability) still a valid string — just the wrong
    one (paper §IV-C).
    """
    if not value:
        return value
    index = min(char_index, len(value) - 1)
    flipped = chr(ord(value[index]) ^ 1)
    return value[:index] + flipped + value[index + 1 :]


def flip_bool(value: bool) -> bool:
    """Invert a boolean value."""
    return not value


class MutinyInjector:
    """Applies a single armed :class:`FaultSpec` to matching messages."""

    def __init__(self, spec: Optional[FaultSpec] = None):
        self.spec = spec
        self._occurrences: dict[tuple, int] = {}
        self.record: Optional[InjectionRecord] = None
        #: Number of messages that matched the spec's (channel, kind, name)
        #: filter regardless of whether the fault fired on them.
        self.matches_seen = 0
        #: Messages observed for the injected instance *after* the fault
        #: fired (activation proxy).
        self.post_injection_observations = 0
        self._now = 0.0

    # ------------------------------------------------------------------- arm

    def arm(self, spec: FaultSpec) -> None:
        """Arm a new fault spec, clearing all trigger state."""
        self.spec = spec
        self._occurrences.clear()
        self.record = None
        self.matches_seen = 0
        self.post_injection_observations = 0

    def set_clock(self, now: float) -> None:
        """Inform the injector of the current simulated time (for records)."""
        self._now = now

    @property
    def injected(self) -> bool:
        """True once the armed fault has fired."""
        return self.record is not None

    @property
    def activated(self) -> bool:
        """True if the injected instance was used again after the injection."""
        return self.injected and (
            self.record.dropped or self.post_injection_observations > 0
        )

    # ----------------------------------------------------------------- hooks

    def etcd_write_hook(self, context, data: bytes) -> Optional[bytes]:
        """Hook for the Apiserver→etcd channel."""
        return self._handle(
            InjectionChannel.APISERVER_TO_ETCD,
            kind=context.kind,
            name=context.name,
            namespace=context.namespace,
            component=None,
            data=data,
        )

    def component_request_hook(self, context, data: bytes) -> Optional[bytes]:
        """Hook for a component→Apiserver channel."""
        return self._handle(
            InjectionChannel.COMPONENT_TO_APISERVER,
            kind=context.kind,
            name=context.name,
            namespace=context.namespace,
            component=context.component,
            data=data,
        )

    # ------------------------------------------------------------------ guts

    def _matches(self, channel, kind, name, component) -> bool:
        spec = self.spec
        if spec is None or spec.channel is not channel or spec.kind != kind:
            return False
        if spec.name is not None and spec.name != name:
            return False
        if spec.component is not None and component is not None:
            if not str(component).startswith(spec.component):
                return False
        return True

    def _handle(self, channel, kind, name, namespace, component, data: bytes) -> Optional[bytes]:
        if not self._matches(channel, kind, name, component):
            return data
        self.matches_seen += 1
        if self.injected:
            self.post_injection_observations += 1
            return data

        instance_key = (kind, namespace, name)
        count = self._occurrences.get(instance_key, 0) + 1
        self._occurrences[instance_key] = count
        if count != self.spec.occurrence:
            return data
        return self._apply(data, name, namespace)

    def _apply(self, data: bytes, name: str, namespace: Optional[str]) -> Optional[bytes]:
        spec = self.spec
        record = InjectionRecord(
            time=self._now, spec=spec, target_name=name, target_namespace=namespace
        )

        if spec.fault_type is FaultType.MESSAGE_DROP:
            record.dropped = True
            self.record = record
            return None

        if spec.fault_type is FaultType.PROTO_BYTE_FLIP:
            if not data:
                return data
            index = spec.bit_index % (len(data) * 8)
            byte_index, bit = divmod(index, 8)
            corrupted = bytearray(data)
            corrupted[byte_index] ^= 1 << bit
            record.original_value = data[byte_index]
            record.injected_value = corrupted[byte_index]
            try:
                decode(bytes(corrupted))
            except DecodeError:
                record.decode_failed_after = True
            self.record = record
            return bytes(corrupted)

        # Field-level faults decode the message, mutate one field, re-encode.
        try:
            obj = decode(data)
        except DecodeError:
            return data
        if spec.field_path is None:
            return data
        # ``compile_path`` caches the parsed accessor per distinct dotted
        # string, so the campaign's thousands of probes per field path split
        # the path exactly once.
        path = compile_path(spec.field_path)
        try:
            original = path.get(obj)
        except KeyError:
            # The targeted field does not appear in this message; do not
            # consume the occurrence (it never fired).
            instance_key = (spec.kind, namespace, name)
            self._occurrences[instance_key] -= 1
            return data

        injected = self._mutate(original)
        try:
            path.set(obj, injected)
        except KeyError:
            return data
        record.original_value = original
        record.injected_value = injected
        self.record = record
        return encode(obj)

    def _mutate(self, original: Any) -> Any:
        spec = self.spec
        if spec.fault_type is FaultType.DATA_TYPE_SET:
            return spec.set_value
        # BIT_FLIP
        if isinstance(original, bool):
            return flip_bool(original)
        if isinstance(original, int):
            return flip_int_bit(original, spec.bit_index)
        if isinstance(original, str):
            return flip_str_char_bit(original, spec.bit_index)
        if isinstance(original, float):
            return -original if original else 1.0
        if original is None:
            # Flipping a bit of an absent value materializes a small integer.
            return 1 << spec.bit_index
        return original
