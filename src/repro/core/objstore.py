"""Local S3-style object-store emulation server.

The :class:`~repro.core.transport.ObjectStoreTransport` speaks a small,
standard subset of HTTP object-store semantics — unconditional and
conditional PUT (``If-None-Match: *`` / ``If-Match``), GET/HEAD, prefix
listing, conditional DELETE, and a mtime-refresh POST standing in for the
"re-PUT under a generation precondition" lease heartbeat.  This module is
the reference server for that protocol: an in-memory, thread-safe store that
tests and the CI ``objectstore-smoke`` job run locally so the whole
distributed campaign protocol (plan publish, lease claim/reclaim, shard
streaming, federation) is exercised end to end with no external service and
no new dependency.

Run standalone (the CI job does)::

    python -m repro.cli objstore --port 8383
    # workers/coordinator then use --results-dir objstore://127.0.0.1:8383/run1

or in-process for tests::

    server = LocalObjectStore(("127.0.0.1", 0))
    server.start()
    root = f"{server.url}/my-store"
    ...
    server.stop()

Wire protocol (all object keys URL-quoted under ``/k/``):

========================  =====================================================
``PUT /k/<key>``          write; ``If-None-Match: *`` -> 412 if the key exists;
                          ``If-Match: <etag>`` -> 412 unless it matches
``PUT /k/<key>?append=1`` append the body to the object instead of replacing
                          it, under the same preconditions (``If-None-Match:
                          *`` creates; ``If-Match`` extends the exact
                          generation) — the batched-shard-upload primitive
``GET /k/<key>``          200 body + ``ETag``/``X-Object-Mtime`` or 404
``HEAD /k/<key>``         like GET without the body (adds ``X-Object-Size``)
``DELETE /k/<key>``       204 (idempotent); with ``If-Match`` -> 404/412 when
                          absent/changed
``POST /k/<key>?op=refresh``  bump mtime+ETag iff ``If-Match`` matches
``GET /list?prefix=<p>``  JSON ``{"keys": [...], "truncated": bool}`` of keys
                          under the prefix; ``&limit=<n>`` caps the page and
                          ``&after=<key>`` resumes a paginated listing past
                          the given key (S3 continuation-token style)
``GET /healthz``          readiness probe for CI wait loops
========================  =====================================================

Every mutation assigns a fresh server-side **ETag** (the generation token of
the transport layer) and mtime, under one lock — conditional operations are
genuinely atomic here, unlike their best-effort POSIX counterparts.

Very large campaigns list hundreds of thousands of shard keys; an unbounded
``/list`` response is exactly the single-choke-point failure mode the Mutiny
paper documents for control planes, so the server never has to produce one:
pass ``max_page`` (CLI ``--max-page``) to cap every listing page server-side
regardless of what the client asked for — clients page transparently through
``truncated``/``after``.  Tests and CI run with a tiny ``max_page`` to force
pagination on campaigns of any size.
"""

from __future__ import annotations

import heapq
import json
import threading
import time
import urllib.parse
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional


@dataclass
class StoredObject:
    """One object: payload plus the metadata conditional requests key on."""

    data: bytes
    etag: str
    mtime: float


class LocalObjectStore(ThreadingHTTPServer):
    """In-memory object store speaking the transport's HTTP subset."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int] = ("127.0.0.1", 0),
        max_page: Optional[int] = None,
    ):
        # Validated here, not just in the CLI's argparse layer, so embedders
        # (tests, benchmarks, future launchers) get the same rejection: a
        # zero/negative cap would silently produce empty or unbounded pages.
        if max_page is not None and (
            isinstance(max_page, bool) or not isinstance(max_page, int) or max_page < 1
        ):
            raise ValueError(
                f"invalid --max-page value {max_page!r}: must be an integer >= 1 "
                "(or omitted for uncapped listing pages)"
            )
        super().__init__(address, _Handler)
        self.objects: dict[str, StoredObject] = {}
        self.lock = threading.Lock()
        #: Server-side cap on keys per ``/list`` page (None = uncapped).
        self.max_page = max_page
        self._etag_counter = 0
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ lifecycle

    @property
    def url(self) -> str:
        """The ``objstore://host:port`` base of this server."""
        host, port = self.server_address[:2]
        return f"objstore://{host}:{port}"

    def start(self) -> "LocalObjectStore":
        """Serve in a daemon thread (in-process use: tests, benchmarks)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.server_close()

    # ----------------------------------------------------------- operations

    def _next_etag(self) -> str:
        self._etag_counter += 1
        return f'"g{self._etag_counter}"'

    def put(
        self,
        key: str,
        data: bytes,
        if_none_match: bool,
        if_match: Optional[str],
        append: bool = False,
    ):
        with self.lock:
            existing = self.objects.get(key)
            if if_none_match and existing is not None:
                return None
            if if_match is not None and (existing is None or existing.etag != if_match):
                return None
            if append and existing is not None:
                data = existing.data + data
            stored = StoredObject(data=data, etag=self._next_etag(), mtime=time.time())
            self.objects[key] = stored
            return stored

    def get(self, key: str) -> Optional[StoredObject]:
        with self.lock:
            return self.objects.get(key)

    def delete(self, key: str, if_match: Optional[str]) -> int:
        """HTTP status of a delete: 204 done, 404 absent, 412 changed."""
        with self.lock:
            existing = self.objects.get(key)
            if existing is None:
                return 404 if if_match is not None else 204
            if if_match is not None and existing.etag != if_match:
                return 412
            del self.objects[key]
            return 204

    def refresh(self, key: str, if_match: Optional[str]) -> Optional[StoredObject]:
        with self.lock:
            existing = self.objects.get(key)
            if existing is None or (if_match is not None and existing.etag != if_match):
                return None
            existing.etag = self._next_etag()
            existing.mtime = time.time()
            return existing

    def list_keys(
        self, prefix: str, limit: Optional[int] = None, after: str = ""
    ) -> tuple[list[str], bool]:
        """One page of sorted keys under ``prefix``, strictly after ``after``.

        Returns ``(keys, truncated)``: ``truncated`` tells the client to ask
        again with ``after=keys[-1]``.  The effective page size is the
        smaller of the client's ``limit`` and the server's ``max_page`` —
        the server never produces an unbounded response when configured with
        a cap, whatever the client requested.

        The lock is held only for the key snapshot; a truncated page sorts
        just the page (``heapq.nsmallest``), not the whole remaining tail,
        so paging a very large store never stalls concurrent traffic behind
        repeated full sorts.  The per-page O(N) prefix scan is a deliberate
        simplicity trade-off for this reference server (a maintained sorted
        index would buy O(log N + page) pages at the cost of ordered-write
        bookkeeping); the real-S3/GCS transport on the roadmap gets that
        for free from the service.
        """
        with self.lock:
            snapshot = list(self.objects)
        keys = [key for key in snapshot if key.startswith(prefix) and key > after]
        cap = limit
        if self.max_page is not None:
            cap = self.max_page if cap is None else min(cap, self.max_page)
        if cap is None or len(keys) <= cap:
            return sorted(keys), False
        return heapq.nsmallest(cap, keys), True

    def backdate(self, key: str, seconds: float) -> None:
        """Age an object's mtime (tests exercising lease expiry; the POSIX
        equivalent is ``os.utime`` with a past timestamp)."""
        with self.lock:
            self.objects[key].mtime -= seconds


class _Handler(BaseHTTPRequestHandler):
    """Request plumbing; all state lives on the :class:`LocalObjectStore`."""

    server: LocalObjectStore
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep worker/CI stderr clean; the store is test infrastructure

    def _key(self) -> Optional[str]:
        path = urllib.parse.urlsplit(self.path).path
        if not path.startswith("/k/"):
            return None
        return urllib.parse.unquote(path[len("/k/") :])

    def _query(self) -> dict:
        return dict(urllib.parse.parse_qsl(urllib.parse.urlsplit(self.path).query))

    def _send(self, status: int, body: bytes = b"", headers: Optional[dict] = None):
        self.send_response(status)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    @staticmethod
    def _object_headers(stored: StoredObject) -> dict:
        return {
            "ETag": stored.etag,
            "X-Object-Mtime": repr(stored.mtime),
            "X-Object-Size": str(len(stored.data)),
        }

    # -------------------------------------------------------------- methods

    def do_GET(self):  # noqa: N802 - stdlib naming
        parsed = urllib.parse.urlsplit(self.path)
        if parsed.path == "/healthz":
            self._send(200, b"ok")
            return
        if parsed.path == "/list":
            query = self._query()
            limit: Optional[int] = None
            if "limit" in query:
                try:
                    limit = int(query["limit"])
                    if limit < 1:
                        raise ValueError
                except ValueError:
                    self._send(400, b"limit must be a positive integer")
                    return
            keys, truncated = self.server.list_keys(
                query.get("prefix", ""), limit=limit, after=query.get("after", "")
            )
            body = json.dumps({"keys": keys, "truncated": truncated}).encode("utf-8")
            self._send(200, body, {"Content-Type": "application/json"})
            return
        key = self._key()
        stored = self.server.get(key) if key is not None else None
        if stored is None:
            self._send(404)
            return
        self._send(200, stored.data, self._object_headers(stored))

    def do_HEAD(self):  # noqa: N802
        key = self._key()
        stored = self.server.get(key) if key is not None else None
        if stored is None:
            self._send(404)
            return
        # _send writes Content-Length 0 for the empty body; the real size
        # travels in X-Object-Size so HEAD responses need no body framing.
        self._send(200, b"", self._object_headers(stored))

    def do_PUT(self):  # noqa: N802
        key = self._key()
        if key is None:
            self._send(404)
            return
        length = int(self.headers.get("Content-Length", 0))
        data = self.rfile.read(length) if length else b""
        stored = self.server.put(
            key,
            data,
            if_none_match=self.headers.get("If-None-Match") == "*",
            if_match=self.headers.get("If-Match"),
            append=self._query().get("append") == "1",
        )
        if stored is None:
            self._send(412)
            return
        self._send(200, b"", self._object_headers(stored))

    def do_POST(self):  # noqa: N802
        key = self._key()
        if key is None or self._query().get("op") != "refresh":
            self._send(404)
            return
        if self.server.get(key) is None:
            self._send(404)
            return
        stored = self.server.refresh(key, self.headers.get("If-Match"))
        if stored is None:
            self._send(412)
            return
        self._send(200, b"", self._object_headers(stored))

    def do_DELETE(self):  # noqa: N802
        key = self._key()
        if key is None:
            self._send(404)
            return
        self._send(self.server.delete(key, self.headers.get("If-Match")))


def serve(
    host: str = "127.0.0.1", port: int = 8383, max_page: Optional[int] = None
) -> LocalObjectStore:
    """Blocking standalone server (the ``repro.cli objstore`` entry point)."""
    server = LocalObjectStore((host, port), max_page=max_page)
    print(f"object store listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return server
