"""Pluggable shard-store transports: the byte-level backend of a result store.

The sharded result store, the slice-lease layer, and the plan publisher never
needed a filesystem — they need exactly seven operations: atomic put,
put-if-absent, read, list, stat, delete (optionally conditional), and a
liveness refresh.  This module names that contract (:class:`ShardTransport`)
and ships two implementations:

* :class:`PosixTransport` — the original shared-directory backend, re-expressed
  against the interface.  Keys map onto the exact paths the store always used
  (``MANIFEST.json``, ``shards/…``, ``leases/…``), so the on-disk layout is
  byte-identical to stores written before the transport layer existed and
  every such store resumes unchanged.
* :class:`ObjectStoreTransport` — an S3-style HTTP object store for workers
  that cannot share a filesystem (cloud-edge fleets, containers without a
  common mount).  Put-if-absent is a conditional PUT (``If-None-Match: *``),
  and lease reclamation/heartbeat become conditional DELETE/refresh keyed on
  an opaque **generation token** (the object's ETag) instead of ``O_EXCL`` +
  mtime — the exactly-one-winner guarantees survive the transport swap.  A
  local emulation server (:mod:`repro.core.objstore`) lets tests and CI
  exercise the full protocol end to end with no external service.

A store root is a plain string and selects its transport by shape
(:func:`transport_for`): a filesystem path picks POSIX, an ``objstore://``
URL picks the object store.  Because every process in a campaign
(coordinator, CLI workers, pool workers) rebuilds its store from that root
string, the transport choice travels with it for free.

Generation tokens: every write (and every refresh) gives an object a new
opaque generation.  On POSIX the token folds ``(st_ino, st_mtime_ns,
st_size)`` — so a file atomically replaced with equal-size different content,
or merely touched by a heartbeat, is a *different* generation.  On the object
store it is the server-assigned ETag.  Conditional operations
(:meth:`~ShardTransport.delete_if_unchanged`,
:meth:`~ShardTransport.refresh`, :meth:`~ShardTransport.append`) act only
when the caller's token still matches, which is how "delete only the exact
lease I judged expired" is said without ``O_EXCL``.

Two operations exist purely for campaign scale:

* :meth:`~ShardTransport.list_iter` streams keys instead of materializing
  them — the object store pages through ``limit``/``after`` server cursors,
  POSIX walks ``os.scandir`` — so scanning a store with hundreds of
  thousands of shards never builds the full key list in any layer.
* :meth:`~ShardTransport.append` extends an existing object under a
  generation precondition (a conditional ``PUT ?append=1`` on the object
  store, a single-writer ``O_APPEND`` write on POSIX), which lets workers
  coalesce many finished batches into one shard object while keeping every
  batch durable the moment it completes.
"""

from __future__ import annotations

import http.client
import itertools
import json
import os
import threading
import urllib.parse
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Optional


def fsync_directory(path: str) -> None:
    """Flush a directory's entry table to disk (best-effort).

    ``os.replace`` makes a rename *atomic* but not *durable*: on filesystems
    that don't journal directory operations synchronously (and on networked
    shared filesystems, which the distributed backend runs over), the new
    entry can be lost on power failure unless the containing directory is
    fsynced.  Directories can't be fsynced on some platforms; that degrades
    to the old behaviour rather than failing the write.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


#: Process-wide monotonic counter feeding temp-file names: two in-flight
#: writes can never share a name even from the same thread (re-entrancy via
#: signal handlers or GC finalizers).
_TEMP_COUNTER = itertools.count()


def _temp_path_for(path: str) -> str:
    """A collision-free temporary sibling of ``path``.

    The name embeds pid, thread id, and a process-wide monotonic counter:
    distinct processes (coordinator and workers on a shared directory),
    distinct threads in one process (the worker heartbeat thread and the
    batch loop both write lease files), and successive writes from one
    thread all get distinct in-flight temp files.  The pid alone — the
    historical name — let two threads of one process scribble over each
    other's half-written temp file.
    """
    return f"{path}.{os.getpid()}.{threading.get_ident()}.{next(_TEMP_COUNTER)}.tmp"


def _write_all(fd: int, data: bytes) -> None:
    """``os.write`` the whole buffer.

    A raw ``os.write`` may return a short count without raising (classic
    near-ENOSPC behaviour); treating that as success would store a torn
    payload whose generation looks committed.  Loop until every byte lands —
    any genuine failure still raises.
    """
    view = memoryview(data)
    while view:
        view = view[os.write(fd, view) :]


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write-fsync-rename, then fsync the directory, so a completed write is
    both atomic (readers never observe a half-written file) and durable on
    non-ext4 shared filesystems.  Shared by the shard store, the checkpoint
    writer, and the distributed lease/plan files.
    """
    tmp_path = _temp_path_for(path)
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    fsync_directory(os.path.dirname(path) or ".")

#: URL scheme selecting :class:`ObjectStoreTransport`.
OBJECT_STORE_SCHEME = "objstore"

#: Keys requested per object-store listing page.  Real object stores cap
#: pages at 1000; matching that keeps the emulated protocol honest.
DEFAULT_LIST_PAGE_SIZE = 1000

#: Environment override for the listing page size (tests and CI force tiny
#: pages so pagination is exercised on campaigns of any size).
LIST_PAGE_ENV = "MUTINY_OBJSTORE_PAGE"


def _env_page_size() -> int:
    raw = os.environ.get(LIST_PAGE_ENV)
    if raw is None:
        return DEFAULT_LIST_PAGE_SIZE
    try:
        value = int(raw)
        if value < 1:
            raise ValueError
    except ValueError:
        import warnings

        warnings.warn(
            f"ignoring malformed {LIST_PAGE_ENV}={raw!r} (expected an integer >= 1)",
            RuntimeWarning,
            stacklevel=2,
        )
        return DEFAULT_LIST_PAGE_SIZE
    return value


class TransportError(RuntimeError):
    """A transport operation failed for a non-key reason (e.g. a dead server)."""


class TransportKeyError(KeyError):
    """The requested key does not exist in the store."""


@dataclass(frozen=True)
class ObjectStat:
    """Observed state of one stored object."""

    #: Payload size in bytes.
    size: int
    #: Last-modified wall-clock seconds (heartbeat refreshes bump it).
    mtime: float
    #: Opaque change token: differs after every put/refresh of the key.
    generation: str


class ShardTransport(ABC):
    """The byte-level operations a result store needs from its backend.

    Keys are ``/``-separated relative names (``shards/shard-….jsonl.gz``,
    ``leases/slice-00001.lease``); the namespace under any one prefix is
    flat.  All operations are safe for concurrent use from multiple threads
    and processes — that is the whole point of the interface.
    """

    #: The root string this transport serves (path or URL).
    root: str

    @abstractmethod
    def put(self, key: str, data: bytes) -> None:
        """Atomically (over)write one object: readers see old or new, never
        a mixture, and a completed put is durable."""

    @abstractmethod
    def put_if_absent(self, key: str, data: bytes) -> bool:
        """Create the object only if the key is free; ``True`` iff this call
        created it.  Many concurrent callers get exactly one winner."""

    @abstractmethod
    def get(self, key: str) -> bytes:
        """The object's bytes (:class:`TransportKeyError` when absent)."""

    @abstractmethod
    def get_with_stat(self, key: str) -> tuple[bytes, ObjectStat]:
        """Bytes plus the stat *of the bytes returned* (one consistent view,
        even if the key is concurrently replaced)."""

    @abstractmethod
    def list_iter(self, prefix: str) -> Iterator[str]:
        """Stream the keys directly under ``prefix``, in sorted order.

        The streaming form of :meth:`list`: keys arrive one at a time (the
        object store pages through server cursors, POSIX walks a directory
        scan), so no layer ever holds the full key set of a very large
        store.  A prefix whose backing directory/bucket does not exist yet
        yields nothing — callers poll stores that a worker has not populated
        yet (``inspect``, ``autofederate``), and "empty" is the only useful
        answer there.  Keys created while the iteration is in flight may or
        may not appear (they do when they sort after the cursor); keys
        deleted mid-iteration may still be yielded.
        """

    def list(self, prefix: str) -> list[str]:
        """Sorted keys directly under ``prefix`` (flat, non-recursive)."""
        return list(self.list_iter(prefix))

    @abstractmethod
    def stat(self, key: str) -> Optional[ObjectStat]:
        """The object's stat, or ``None`` when the key is absent."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove the object (idempotent: absent keys are a no-op)."""

    @abstractmethod
    def delete_if_unchanged(self, key: str, generation: str) -> bool:
        """Remove the object only while its generation still matches;
        ``True`` iff this call removed it.  A concurrently refreshed or
        replaced object survives."""

    @abstractmethod
    def refresh(self, key: str, generation: str, expected: Optional[bytes] = None) -> bool:
        """Bump the object's mtime (new generation) iff the given generation
        still matches — the heartbeat primitive.  ``False`` means the object
        was replaced, refreshed elsewhere, or removed.

        ``expected`` is the payload the caller believes the object holds
        (lease heartbeats read it anyway for the ownership check).  It is
        only consulted to resolve retry ambiguity on transports that retry
        over a network: a refresh whose first attempt was applied before its
        response was lost re-reads the object, and unchanged bytes prove the
        precondition failure came from racing ourselves (see
        :meth:`ObjectStoreTransport.refresh`).  Without it, such a refresh
        conservatively reports the lease as lost.
        """

    @abstractmethod
    def append(self, key: str, data: bytes, generation: Optional[str] = None) -> Optional[str]:
        """Append ``data`` to the object and return its new generation.

        ``generation=None`` creates the object, failing if the key already
        exists (the put-if-absent of appends); otherwise the append happens
        only while the object's generation still matches.  ``None`` means
        the precondition failed — the object was created, replaced, or
        removed by someone else — and nothing was written.  Appended bytes
        are durable when the call returns; a reader racing an append sees
        either the old object or the extended one (POSIX readers may
        additionally observe a torn tail, which the shard reader's
        truncation tolerance already absorbs).
        """

    @abstractmethod
    def locate(self, key: str) -> str:
        """A human-usable address of the key (filesystem path or URL)."""


def transport_for(root: str) -> ShardTransport:
    """Pick the transport a store root names: ``objstore://…`` URLs select
    the object store, everything else is a POSIX directory path."""
    if root.startswith(f"{OBJECT_STORE_SCHEME}://"):
        return ObjectStoreTransport(root)
    return PosixTransport(root)


class StoreURLError(TransportError):
    """A store root string is malformed (bad scheme, missing bucket, …)."""


#: URL schemes that look like remote stores but have no transport here.
#: Named explicitly so a typo'd ``objstore://`` or an S3 URL fails with a
#: message instead of being treated as a relative POSIX directory.
_FOREIGN_SCHEMES = ("s3", "gs", "gcs", "http", "https", "file", "ftp")


def resolve_store_url(value: str, option: str = "store URL") -> str:
    """Validate a ``results_dir``-or-``objstore://`` string and return it.

    The single place the CLI, the campaign spec, and the service decide
    what a store root string means.  ``objstore://host:port/bucket`` URLs
    must parse (host and bucket present), recognisable foreign schemes
    (``s3://``, ``https://``, …) are rejected rather than silently treated
    as directory names, and everything else is a POSIX path.  Raises
    :class:`StoreURLError` naming both ``option`` (the flag or field the
    string came from) and the offending URL.
    """
    if not isinstance(value, str) or not value.strip():
        raise StoreURLError(f"{option} must name a directory or {OBJECT_STORE_SCHEME}:// URL, got {value!r}")
    root = value.strip()
    if root.startswith(f"{OBJECT_STORE_SCHEME}://"):
        try:
            ObjectStoreTransport(root)
        except ValueError as error:
            raise StoreURLError(f"{option}: {error}") from None
        return root
    scheme, separator, _ = root.partition("://")
    if separator and scheme.lower() in _FOREIGN_SCHEMES:
        raise StoreURLError(
            f"{option}: unsupported store scheme {scheme!r} in {root!r} "
            f"(expected a directory path or {OBJECT_STORE_SCHEME}://host:port/bucket)"
        )
    return root


# --------------------------------------------------------------------------
# POSIX (shared directory)
# --------------------------------------------------------------------------


class PosixTransport(ShardTransport):
    """The original one-shared-directory backend, behind the interface.

    Layout compatibility is a hard guarantee: ``locate(key)`` is exactly the
    path the pre-transport store used, atomic put is the same
    write-fsync-rename, and put-if-absent is the same ``O_EXCL`` create — a
    store written by older code resumes through this transport unchanged
    (and vice versa).
    """

    def __init__(self, root: str):
        self.root = root

    def _path(self, key: str) -> str:
        return os.path.join(self.root, *key.split("/"))

    @staticmethod
    def _generation(stat: os.stat_result) -> str:
        # Folding inode + mtime_ns + size means an atomic same-size rewrite
        # (new inode, new mtime) and a heartbeat touch (new mtime) both
        # produce a new token, which conditional delete/refresh rely on.
        return f"{stat.st_ino}-{stat.st_mtime_ns}-{stat.st_size}"

    @classmethod
    def _stat_of(cls, stat: os.stat_result) -> ObjectStat:
        return ObjectStat(
            size=stat.st_size, mtime=stat.st_mtime, generation=cls._generation(stat)
        )

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_bytes(path, data)

    def put_if_absent(self, key: str, data: bytes) -> bool:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        try:
            _write_all(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        fsync_directory(os.path.dirname(path))
        return True

    def get(self, key: str) -> bytes:
        try:
            with open(self._path(key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            raise TransportKeyError(key) from None

    def get_with_stat(self, key: str) -> tuple[bytes, ObjectStat]:
        try:
            with open(self._path(key), "rb") as handle:
                # fstat on the open fd describes the file actually read,
                # even if the path was concurrently rename-replaced.
                stat = os.fstat(handle.fileno())
                return handle.read(), self._stat_of(stat)
        except FileNotFoundError:
            raise TransportKeyError(key) from None

    def list_iter(self, prefix: str) -> Iterator[str]:
        # os.scandir carries the file type with each entry (no stat per key,
        # unlike the historical listdir + isfile walk).  Name order has to be
        # imposed here — directories enumerate unordered — but only the bare
        # names are held, never stats or payloads.  A directory that does
        # not exist yet (a store a worker hasn't populated) yields nothing,
        # matching the object store's empty-prefix answer.
        directory, _, name_prefix = prefix.rpartition("/")
        base = self._path(directory) if directory else self.root
        try:
            with os.scandir(base) as entries:
                names = [
                    entry.name
                    for entry in entries
                    if entry.name.startswith(name_prefix) and entry.is_file()
                ]
        except OSError:
            return
        for name in sorted(names):
            yield f"{directory}/{name}" if directory else name

    def stat(self, key: str) -> Optional[ObjectStat]:
        try:
            return self._stat_of(os.stat(self._path(key)))
        except OSError:
            return None

    def delete(self, key: str) -> None:
        try:
            os.unlink(self._path(key))
        except FileNotFoundError:
            pass

    def delete_if_unchanged(self, key: str, generation: str) -> bool:
        # stat-compare-unlink has a microsecond TOCTOU window (POSIX has no
        # conditional unlink); the lease protocol tolerates it — an owner
        # whose lease changes hands aborts at the next batch boundary, and
        # experiment determinism makes even that overlap harmless.
        path = self._path(key)
        try:
            if self._generation(os.stat(path)) != generation:
                return False
            os.unlink(path)
        except OSError:
            return False
        return True

    def refresh(self, key: str, generation: str, expected: Optional[bytes] = None) -> bool:
        # POSIX never retries a request, so the retry-ambiguity rule that
        # ``expected`` feeds on the object store has no counterpart here.
        path = self._path(key)
        try:
            if self._generation(os.stat(path)) != generation:
                return False
            os.utime(path)
        except OSError:
            return False
        return True

    def append(self, key: str, data: bytes, generation: Optional[str] = None) -> Optional[str]:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        if generation is None:
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                return None
            try:
                _write_all(fd, data)
                os.fsync(fd)
                stat = os.fstat(fd)
            finally:
                os.close(fd)
            fsync_directory(os.path.dirname(path))
            return self._generation(stat)
        # stat-compare-append keeps the same microsecond TOCTOU window as
        # delete_if_unchanged; shard objects have a single writer (the worker
        # that owns the batch group), so the window never sees a second
        # appender, and readers tolerate a torn tail as a truncated shard.
        try:
            if self._generation(os.stat(path)) != generation:
                return None
            with open(path, "ab") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
                stat = os.fstat(handle.fileno())
        except OSError:
            return None
        return self._generation(stat)

    def locate(self, key: str) -> str:
        return self._path(key)


# --------------------------------------------------------------------------
# Object store (S3-style conditional HTTP)
# --------------------------------------------------------------------------


class ObjectStoreTransport(ShardTransport):
    """An S3-style object-store backend for hosts with no shared filesystem.

    The root is ``objstore://host:port/bucket[/prefix]``; keys live under
    the bucket path.  Conditional semantics map onto standard HTTP
    preconditions — ``If-None-Match: *`` for put-if-absent, ``If-Match:
    <etag>`` for conditional delete/refresh — which is exactly the subset
    real object stores (S3 conditional writes, GCS generation preconditions)
    provide.  The reference server is :mod:`repro.core.objstore`.

    One HTTP connection is kept per thread (the worker heartbeat thread and
    the batch loop both talk to the store); a connection that died between
    requests is rebuilt and the request retried once.
    """

    def __init__(self, root: str, timeout: float = 30.0, page_size: Optional[int] = None):
        self.root = root.rstrip("/")
        parsed = urllib.parse.urlsplit(self.root)
        if parsed.scheme != OBJECT_STORE_SCHEME or not parsed.hostname:
            raise ValueError(
                f"not an object-store root: {root!r} "
                f"(expected {OBJECT_STORE_SCHEME}://host:port/bucket)"
            )
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._bucket = parsed.path.strip("/")
        if not self._bucket:
            raise ValueError(f"object-store root {root!r} names no bucket")
        self._timeout = timeout
        #: Keys requested per /list page (the server may cap pages further).
        self.page_size = page_size if page_size is not None else _env_page_size()
        self._local = threading.local()

    def _server_key(self, key: str) -> str:
        return f"{self._bucket}/{key}" if key else self._bucket

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._local.connection = connection
        return connection

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> tuple[int, dict, bytes, bool]:
        """One HTTP round trip; returns ``(status, headers, body, retried)``.

        A connection broken mid-request is rebuilt and the request retried
        once.  ``retried`` flags the ambiguous case: the first attempt may
        have been applied server-side before the response was lost, so a
        conditional writer seeing a precondition failure *after a retry*
        must re-read before concluding it lost.  Every conditional operation
        applies that rule: :meth:`put_if_absent`, :meth:`delete_if_unchanged`,
        :meth:`refresh`, and :meth:`append`.
        """
        for attempt in (0, 1):
            connection = self._connection()
            try:
                connection.request(method, path, body=body, headers=headers or {})
                response = connection.getresponse()
                payload = response.read()
                return (
                    response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    payload,
                    attempt > 0,
                )
            except (http.client.HTTPException, OSError) as error:
                connection.close()
                self._local.connection = None
                if attempt:
                    raise TransportError(
                        f"object store {self._host}:{self._port} unreachable: {error}"
                    ) from error
        raise AssertionError("unreachable")

    @staticmethod
    def _stat_from_headers(headers: dict, size: Optional[int] = None) -> ObjectStat:
        return ObjectStat(
            size=int(headers.get("x-object-size", size if size is not None else 0)),
            mtime=float(headers.get("x-object-mtime", 0.0)),
            generation=headers.get("etag", ""),
        )

    def _object_path(self, key: str) -> str:
        return "/k/" + urllib.parse.quote(self._server_key(key))

    def put(self, key: str, data: bytes) -> None:
        status, _, body, _ = self._request("PUT", self._object_path(key), body=data)
        if status != 200:
            raise TransportError(
                f"object store rejected put of {key!r}: {status} {body[:200]!r}"
            )

    def put_if_absent(self, key: str, data: bytes) -> bool:
        status, _, body, retried = self._request(
            "PUT", self._object_path(key), body=data, headers={"If-None-Match": "*"}
        )
        if status == 200:
            return True
        if status == 412:
            if retried:
                # Ambiguous loss: the first attempt may have been applied
                # before its response was lost, in which case the 412 came
                # from racing *ourselves*.  Walking away from a key we in
                # fact created would orphan a lease until its TTL expires,
                # so re-read and claim the win when the stored bytes are
                # ours (lease payloads embed worker/pid/claim time, so
                # byte-equality identifies the writer).
                try:
                    return self.get(key) == data
                except TransportKeyError:
                    return False
            return False
        raise TransportError(
            f"object store rejected conditional put of {key!r}: {status} {body[:200]!r}"
        )

    def get(self, key: str) -> bytes:
        return self.get_with_stat(key)[0]

    def get_with_stat(self, key: str) -> tuple[bytes, ObjectStat]:
        status, headers, body, _ = self._request("GET", self._object_path(key))
        if status == 404:
            raise TransportKeyError(key)
        if status != 200:
            raise TransportError(f"object store get of {key!r} failed: {status}")
        return body, self._stat_from_headers(headers, size=len(body))

    def list_iter(self, prefix: str) -> Iterator[str]:
        """Page through the listing with ``limit``/``after`` cursors.

        Every page is one bounded request; the cursor is the last key of the
        previous page, so the server's snapshot-per-page semantics compose
        into one sorted stream (keys created behind the cursor while paging
        are missed, keys created ahead of it are included — S3 listing
        semantics).  The full key set never exists client-side.
        """
        server_prefix = self._server_key(prefix)
        scope = len(self._server_key(""))  # strip "bucket/" back off
        after = ""
        while True:
            params = {"prefix": server_prefix, "limit": str(self.page_size)}
            if after:
                params["after"] = after
            query = urllib.parse.urlencode(params)
            status, _, body, _ = self._request("GET", f"/list?{query}")
            if status != 200:
                raise TransportError(f"object store list of {prefix!r} failed: {status}")
            payload = json.loads(body)
            keys = payload.get("keys", [])
            for key in keys:
                yield key[scope + 1 :]
            if not payload.get("truncated") or not keys:
                return
            after = keys[-1]

    def stat(self, key: str) -> Optional[ObjectStat]:
        status, headers, _, _ = self._request("HEAD", self._object_path(key))
        if status == 404:
            return None
        if status != 200:
            raise TransportError(f"object store stat of {key!r} failed: {status}")
        return self._stat_from_headers(headers)

    def delete(self, key: str) -> None:
        status, _, _, _ = self._request("DELETE", self._object_path(key))
        if status not in (204, 404):
            raise TransportError(f"object store delete of {key!r} failed: {status}")

    def delete_if_unchanged(self, key: str, generation: str) -> bool:
        status, _, _, retried = self._request(
            "DELETE", self._object_path(key), headers={"If-Match": generation}
        )
        if status == 204:
            return True
        if status == 404:
            if retried:
                # Ambiguous loss (the put_if_absent rule): the first attempt
                # may have deleted the object before its response was lost,
                # in which case the retry's 404 came from racing ourselves.
                # Re-read before concluding we lost — a still-absent key
                # means the conditional delete took effect, and reporting
                # False here made a lease reclaim walk away from a slice it
                # had in fact freed (handing it to a third claimant while
                # the second raced for it).  A key that exists again was
                # re-created afterwards; we must not claim to have removed
                # what is now someone else's object.
                try:
                    return self.stat(key) is None
                except TransportError:
                    return False  # outcome unknowable right now: stay conservative
            return False
        if status == 412:
            # The object exists with a different generation: whatever the
            # first attempt did, it did not remove *this* generation.
            return False
        raise TransportError(
            f"object store conditional delete of {key!r} failed: {status}"
        )

    def refresh(self, key: str, generation: str, expected: Optional[bytes] = None) -> bool:
        status, _, _, retried = self._request(
            "POST",
            self._object_path(key) + "?op=refresh",
            headers={"If-Match": generation},
        )
        if status == 200:
            return True
        if status in (404, 412):
            if retried and expected is not None:
                # Ambiguous loss: the first attempt may have refreshed the
                # lease before its response was lost, making the retry's
                # precondition failure a race against ourselves.  A refresh
                # never changes the payload, so re-reading and finding the
                # caller's bytes intact proves the lease was neither
                # reclaimed nor replaced — the heartbeat succeeded.  Without
                # this re-read, one dropped response made the owner wrongly
                # surrender a slice it still held.  The re-read itself may
                # fail (the store just proved flaky); that must surface as a
                # conservative False, not an exception — the heartbeat
                # thread calling this has no handler, and dying silently
                # would leave the owner running without an abort signal.
                try:
                    return self.get(key) == expected
                except (TransportKeyError, TransportError):
                    return False
            return False
        raise TransportError(f"object store refresh of {key!r} failed: {status}")

    def append(self, key: str, data: bytes, generation: Optional[str] = None) -> Optional[str]:
        headers = (
            {"If-None-Match": "*"} if generation is None else {"If-Match": generation}
        )
        status, response_headers, body, retried = self._request(
            "PUT", self._object_path(key) + "?append=1", body=data, headers=headers
        )
        if status == 200:
            return response_headers.get("etag", "")
        if status == 412:
            if retried:
                # Ambiguous loss: the first attempt may have appended before
                # its response was lost.  The shard writer is the object's
                # only appender, so "the object now ends with our bytes"
                # (or, for a create, *is* our bytes) identifies our own
                # applied write; concluding False here would re-append the
                # batch and double its records in the store.
                try:
                    current, stat = self.get_with_stat(key)
                except TransportKeyError:
                    return None
                if generation is None:
                    return stat.generation if current == data else None
                return stat.generation if current.endswith(data) else None
            return None
        raise TransportError(
            f"object store rejected append to {key!r}: {status} {body[:200]!r}"
        )

    def locate(self, key: str) -> str:
        return f"{self.root}/{key}"
