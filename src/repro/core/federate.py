"""Results-dir federation: merge N stores of one campaign into one store.

Paper-scale campaigns (~8,800 experiments, §IV-C) don't always run in one
place: two halves may execute in different clusters, an interrupted local
run may be finished elsewhere, a POSIX store and an object-store run may
cover different slices of the same plan.  Shards are the atomic,
deterministic, self-describing interchange format of a campaign, so merging
stores is a pure store-level operation — no experiment re-runs, no
re-classification — and the merged digest is **byte-identical to a single
serial run** of the same configuration, because the digest hashes canonical
records in plan-index order and never sees shard boundaries.

Safety mirrors :meth:`ShardedResultStore.open` exactly: every source (and a
pre-existing destination) must carry the same campaign fingerprint, or the
merge is rejected before anything is written — federating two *different*
campaigns would silently interleave unrelated results.  Overlapping indexes
are deduplicated with a deterministic rule: the **later source wins** (last
on the command line).  Results are deterministic, so overlapping records are
byte-identical in a healthy pair of stores and the rule is only visible when
a store was hand-edited — but an arbitrary tie-break would make the merge
order-dependent in exactly the case where it matters most.

Transports compose for free: every root (sources and destination) picks its
own transport by shape, so a POSIX half-campaign and an object-store
half-campaign federate into either kind of destination.

Two entry points share the merge core:

* :func:`federate_stores` — the one-shot merge behind ``repro.cli federate``;
  every source must already be a store.
* :func:`autofederate_stores` — the watching coordinator behind ``repro.cli
  autofederate``: it polls several stores of one fingerprint (any transport
  mix, sources that don't exist *yet* included) and incrementally folds
  newly completed experiments into the destination as they appear, finishing
  when the destination holds the campaign's full plan.  Because the store
  digest hashes canonical records in plan-index order, the finished
  destination is byte-identical to a serial run no matter how the folding
  interleaved.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.resultstore import (
    STORE_VERSION,
    ResultStoreMismatchError,
    ShardedResultStore,
)
from repro.core.transport import TransportError, TransportKeyError

#: Records per federated shard: large enough that shard count stays low,
#: small enough that the merge holds one batch in memory like every other
#: store writer.
DEFAULT_SHARD_RECORDS = 512

_PREP_NAME = "prep.pkl"


@dataclass(frozen=True)
class FederationReport:
    """What one federation merge did (the CLI prints this)."""

    fingerprint: str
    total: int  # plan size the manifests agree on
    sources: tuple[str, ...]
    merged_records: int  # records written into the destination by this merge
    skipped_records: int  # indexes the destination already held
    overlapping_records: int  # indexes present in more than one source
    shards_written: int

    def describe(self) -> str:
        lines = [
            "Federation merge",
            f"fingerprint        : {self.fingerprint[:16]}…",
            f"sources            : {len(self.sources)}",
            f"merged records     : {self.merged_records}"
            f" (+{self.skipped_records} already in the destination)",
            f"overlapping indexes: {self.overlapping_records} (later source wins)",
            f"shards written     : {self.shards_written}",
        ]
        return "\n".join(lines)


def _manifest_of(
    root: str, store: ShardedResultStore, absent_ok: bool = False
) -> Optional[dict]:
    """The validated manifest of a source store.

    ``absent_ok`` is the watcher's mode: a store that does not exist yet or
    is transiently unreachable answers ``None`` (poll again later) instead
    of raising — only a store that exists but is *wrong* (unreadable
    manifest, foreign version) is ever an error.
    """
    try:
        manifest = store.manifest()
    except TransportKeyError:
        if absent_ok:
            return None
        raise ResultStoreMismatchError(
            f"{root!r} is not a result store (no MANIFEST.json); every federate "
            "source must be a --results-dir store"
        ) from None
    except TransportError:
        if absent_ok:
            return None
        raise
    except ValueError as error:
        raise ResultStoreMismatchError(
            f"result store {root!r} has an unreadable manifest ({error})"
        ) from error
    if manifest.get("version") != STORE_VERSION:
        raise ResultStoreMismatchError(
            f"result store {root!r} uses store version {manifest.get('version')!r}; "
            f"this code reads version {STORE_VERSION}"
        )
    return manifest


def _carry_prep(
    dest: ShardedResultStore,
    sources: list[ShardedResultStore],
    tolerate_unreachable: bool = False,
) -> bool:
    """Copy the workload prep into the destination from the last source
    holding one (later sources win, mirroring record dedup); ``True`` once
    the destination has prep.  A source simply lacking prep is skipped;
    ``tolerate_unreachable`` additionally skips sources that cannot be
    reached right now (the watcher's mode — the one-shot merge stays strict
    and lets the failure abort).  A *destination* write failure always
    propagates.  ``load_prep`` re-validates its own fingerprint on use, so
    this is a plain byte copy."""
    if dest.transport.stat(_PREP_NAME) is not None:
        return True
    skippable = (TransportKeyError, TransportError) if tolerate_unreachable else TransportKeyError
    for store in reversed(sources):
        try:
            payload = store.transport.get(_PREP_NAME)
        except skippable:
            continue
        dest.transport.put(_PREP_NAME, payload)
        return True
    return False


def federate_stores(
    dest_root: str,
    source_roots: list[str],
    shard_records: int = DEFAULT_SHARD_RECORDS,
    progress: Optional[Callable[[int, int], None]] = None,
) -> FederationReport:
    """Merge every source store into ``dest_root``; returns a report.

    The destination may be empty, may be one of the sources' siblings from
    an earlier partial merge (indexes it already holds are skipped, so
    re-running a federation is a no-op), or may not exist yet.  A
    destination or source written by a *different* campaign is rejected the
    way :meth:`ShardedResultStore.open` rejects a mis-pointed
    ``--results-dir`` — before anything is written.
    """
    if not source_roots:
        raise ValueError("federate needs at least one source store")
    sources = [ShardedResultStore(root) for root in source_roots]
    manifests = [_manifest_of(root, store) for root, store in zip(source_roots, sources)]
    fingerprint = manifests[0].get("fingerprint")
    total = manifests[0].get("total")
    for root, manifest in zip(source_roots[1:], manifests[1:]):
        if manifest.get("fingerprint") != fingerprint:
            raise ResultStoreMismatchError(
                f"result store {root!r} was written by a different campaign than "
                f"{source_roots[0]!r}; federating them would mix unrelated results"
            )

    dest = ShardedResultStore(dest_root)
    dest.open(fingerprint, total)  # raises on a foreign destination

    # Later source wins every overlapping index (deterministic dedup).
    winners: dict[int, ShardedResultStore] = {}
    overlapping = 0
    for store in sources:
        for index in store.completed_indexes():
            if index in winners:
                overlapping += 1
            winners[index] = store

    already = set(dest.completed_indexes())
    pending = sorted(index for index in winners if index not in already)

    # Carry the workload prep over so a federated store resumes without
    # re-preparing.
    _carry_prep(dest, sources)

    shards_written = 0
    batch: list[tuple[int, dict]] = []
    for position, index in enumerate(pending):
        batch.append((index, winners[index].load_record(index)))
        if len(batch) >= shard_records:
            dest.write_shard_dicts(batch)
            shards_written += 1
            batch = []
        if progress is not None:
            progress(position + 1, len(pending))
    if batch:
        dest.write_shard_dicts(batch)
        shards_written += 1

    return FederationReport(
        fingerprint=fingerprint,
        total=total if isinstance(total, int) else len(winners),
        sources=tuple(source_roots),
        merged_records=len(pending),
        skipped_records=len(already & set(winners)),
        overlapping_records=overlapping,
        shards_written=shards_written,
    )


# --------------------------------------------------------------------------
# Auto-federation: watch several stores, fold incrementally
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AutoFederationReport:
    """What one auto-federation watch accomplished (the CLI prints this)."""

    fingerprint: str
    total: int  # plan size the manifests agree on
    sources: tuple[str, ...]
    merged_records: int  # records folded into the destination by this watch
    initial_records: int  # records the destination already held at start
    shards_written: int
    rounds: int  # poll rounds taken until the campaign was complete

    def describe(self) -> str:
        return "\n".join(
            [
                "Auto-federation complete",
                f"fingerprint        : {self.fingerprint[:16]}…",
                f"sources watched    : {len(self.sources)}",
                f"records folded     : {self.merged_records}"
                f" (+{self.initial_records} already in the destination)",
                f"destination total  : {self.total}",
                f"shards written     : {self.shards_written}",
                f"poll rounds        : {self.rounds}",
            ]
        )


def autofederate_stores(
    dest_root: str,
    source_roots: list[str],
    shard_records: int = DEFAULT_SHARD_RECORDS,
    poll_interval: float = 0.5,
    timeout: Optional[float] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> AutoFederationReport:
    """Watch ``source_roots`` and fold new shards into ``dest_root`` until the
    destination holds the campaign's full plan.

    The coordinator mode of federation: several campaigns of one fingerprint
    execute concurrently in different places (clusters, transports, hosts),
    and this process incrementally merges whatever any of them has finished.
    Semantics per round mirror :func:`federate_stores` — every source must
    carry the destination's fingerprint, the later source wins an index that
    first appears in several sources within one round — with two additions
    for the watching setting:

    * A source that is not a store *yet* (its worker hasn't opened it) or is
      transiently unreachable is simply polled again next round; only a
      store with a *wrong* fingerprint aborts the watch.  An index already
      folded is never rewritten, so re-running (or resuming) an
      auto-federation is incremental, exactly like re-running ``federate``.
    * The watch ends when the destination holds ``total`` distinct records
      (its digest is then byte-identical to a serial run, since the digest
      never sees shard boundaries), or fails with
      :class:`~repro.core.distributed.DistributedTimeoutError` when
      ``timeout`` elapses first.
    """
    from repro.core.distributed import DistributedTimeoutError  # no import cycle

    if not source_roots:
        raise ValueError("autofederate needs at least one source store")
    if poll_interval <= 0:
        raise ValueError(f"poll_interval must be > 0, got {poll_interval}")
    deadline = None if timeout is None else time.monotonic() + timeout
    sources = [ShardedResultStore(root) for root in source_roots]
    validated: set[str] = set()
    fingerprint: Optional[str] = None
    total: Optional[int] = None
    dest: Optional[ShardedResultStore] = None
    dest_done: set[int] = set()
    initial_records = 0
    merged_records = 0
    shards_written = 0
    rounds = 0
    prep_copied = False

    while True:
        rounds += 1
        # Discover and validate sources as their manifests appear.
        for root, store in zip(source_roots, sources):
            if root in validated:
                continue
            manifest = _manifest_of(root, store, absent_ok=True)
            if manifest is None:
                continue  # not populated yet / store unreachable: poll again
            if fingerprint is None:
                fingerprint = manifest.get("fingerprint")
                total = manifest.get("total")
                dest = ShardedResultStore(dest_root)
                dest.open(fingerprint, total)  # raises on a foreign destination
                dest_done = set(dest.completed_indexes())
                initial_records = len(dest_done)
            elif manifest.get("fingerprint") != fingerprint:
                raise ResultStoreMismatchError(
                    f"result store {root!r} was written by a different campaign than "
                    f"the one being federated; refusing to mix unrelated results"
                )
            validated.add(root)

        if dest is not None:
            # Carry the workload prep over once any source has it, so the
            # federated store resumes without re-preparing.
            if not prep_copied:
                prep_copied = _carry_prep(
                    dest,
                    [s for root, s in zip(source_roots, sources) if root in validated],
                    tolerate_unreachable=True,
                )

            # Fold this round's newly completed indexes (later source wins).
            # This loop deliberately does not share federate_stores' fold
            # core: the one-shot merge is strict (any failure aborts, counts
            # skipped/overlapping sources), the watch is tolerant per index
            # and accounts per round — parameterizing one loop over both
            # failure semantics obscured more than it deduplicated.
            winners: dict[int, ShardedResultStore] = {}
            for root, store in zip(source_roots, sources):
                if root not in validated:
                    continue
                try:
                    store.refresh()
                    for index in store.completed_indexes():
                        if index not in dest_done:
                            winners[index] = store
                except TransportError:
                    continue  # source hiccup: its indexes fold next round
            pending = sorted(winners)
            batch: list[tuple[int, dict]] = []
            for index in pending:
                try:
                    record = winners[index].load_record(index)
                except (TransportError, KeyError):
                    # The source died (or the shard was pruned) between the
                    # scan and the read: the index stays unfolded and is
                    # retried next round.  Only source reads are tolerated —
                    # a *destination* write failure aborts the watch from
                    # the statement that actually failed.
                    continue
                batch.append((index, record))
                if len(batch) >= shard_records:
                    dest.write_shard_dicts(batch)
                    shards_written += 1
                    dest_done.update(i for i, _ in batch)
                    merged_records += len(batch)
                    batch = []
            if batch:
                dest.write_shard_dicts(batch)
                shards_written += 1
                dest_done.update(i for i, _ in batch)
                merged_records += len(batch)
            if pending and progress is not None and isinstance(total, int):
                progress(len(dest_done), total)
            if isinstance(total, int) and len(dest_done) >= total:
                return AutoFederationReport(
                    fingerprint=fingerprint or "",
                    total=total,
                    sources=tuple(source_roots),
                    merged_records=merged_records,
                    initial_records=initial_records,
                    shards_written=shards_written,
                    rounds=rounds,
                )

        if deadline is not None and time.monotonic() > deadline:
            held = len(dest_done) if dest is not None else 0
            want = total if isinstance(total, int) else "?"
            raise DistributedTimeoutError(
                f"autofederate incomplete after {timeout:.0f}s: destination holds "
                f"{held} of {want} experiments; "
                f"{len(validated)} of {len(source_roots)} source store(s) seen"
            )
        time.sleep(poll_interval)
