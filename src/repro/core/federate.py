"""Results-dir federation: merge N stores of one campaign into one store.

Paper-scale campaigns (~8,800 experiments, §IV-C) don't always run in one
place: two halves may execute in different clusters, an interrupted local
run may be finished elsewhere, a POSIX store and an object-store run may
cover different slices of the same plan.  Shards are the atomic,
deterministic, self-describing interchange format of a campaign, so merging
stores is a pure store-level operation — no experiment re-runs, no
re-classification — and the merged digest is **byte-identical to a single
serial run** of the same configuration, because the digest hashes canonical
records in plan-index order and never sees shard boundaries.

Safety mirrors :meth:`ShardedResultStore.open` exactly: every source (and a
pre-existing destination) must carry the same campaign fingerprint, or the
merge is rejected before anything is written — federating two *different*
campaigns would silently interleave unrelated results.  Overlapping indexes
are deduplicated with a deterministic rule: the **later source wins** (last
on the command line).  Results are deterministic, so overlapping records are
byte-identical in a healthy pair of stores and the rule is only visible when
a store was hand-edited — but an arbitrary tie-break would make the merge
order-dependent in exactly the case where it matters most.

Transports compose for free: every root (sources and destination) picks its
own transport by shape, so a POSIX half-campaign and an object-store
half-campaign federate into either kind of destination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.resultstore import (
    STORE_VERSION,
    ResultStoreMismatchError,
    ShardedResultStore,
)
from repro.core.transport import TransportKeyError

#: Records per federated shard: large enough that shard count stays low,
#: small enough that the merge holds one batch in memory like every other
#: store writer.
DEFAULT_SHARD_RECORDS = 512

_PREP_NAME = "prep.pkl"


@dataclass(frozen=True)
class FederationReport:
    """What one federation merge did (the CLI prints this)."""

    fingerprint: str
    total: int  # plan size the manifests agree on
    sources: tuple[str, ...]
    merged_records: int  # records written into the destination by this merge
    skipped_records: int  # indexes the destination already held
    overlapping_records: int  # indexes present in more than one source
    shards_written: int

    def describe(self) -> str:
        lines = [
            "Federation merge",
            f"fingerprint        : {self.fingerprint[:16]}…",
            f"sources            : {len(self.sources)}",
            f"merged records     : {self.merged_records}"
            f" (+{self.skipped_records} already in the destination)",
            f"overlapping indexes: {self.overlapping_records} (later source wins)",
            f"shards written     : {self.shards_written}",
        ]
        return "\n".join(lines)


def _manifest_of(root: str, store: ShardedResultStore) -> dict:
    try:
        manifest = store.manifest()
    except TransportKeyError:
        raise ResultStoreMismatchError(
            f"{root!r} is not a result store (no MANIFEST.json); every federate "
            "source must be a --results-dir store"
        ) from None
    except ValueError as error:
        raise ResultStoreMismatchError(
            f"result store {root!r} has an unreadable manifest ({error})"
        ) from error
    if manifest.get("version") != STORE_VERSION:
        raise ResultStoreMismatchError(
            f"result store {root!r} uses store version {manifest.get('version')!r}; "
            f"this code reads version {STORE_VERSION}"
        )
    return manifest


def federate_stores(
    dest_root: str,
    source_roots: list[str],
    shard_records: int = DEFAULT_SHARD_RECORDS,
    progress: Optional[Callable[[int, int], None]] = None,
) -> FederationReport:
    """Merge every source store into ``dest_root``; returns a report.

    The destination may be empty, may be one of the sources' siblings from
    an earlier partial merge (indexes it already holds are skipped, so
    re-running a federation is a no-op), or may not exist yet.  A
    destination or source written by a *different* campaign is rejected the
    way :meth:`ShardedResultStore.open` rejects a mis-pointed
    ``--results-dir`` — before anything is written.
    """
    if not source_roots:
        raise ValueError("federate needs at least one source store")
    sources = [ShardedResultStore(root) for root in source_roots]
    manifests = [_manifest_of(root, store) for root, store in zip(source_roots, sources)]
    fingerprint = manifests[0].get("fingerprint")
    total = manifests[0].get("total")
    for root, manifest in zip(source_roots[1:], manifests[1:]):
        if manifest.get("fingerprint") != fingerprint:
            raise ResultStoreMismatchError(
                f"result store {root!r} was written by a different campaign than "
                f"{source_roots[0]!r}; federating them would mix unrelated results"
            )

    dest = ShardedResultStore(dest_root)
    dest.open(fingerprint, total)  # raises on a foreign destination

    # Later source wins every overlapping index (deterministic dedup).
    winners: dict[int, ShardedResultStore] = {}
    overlapping = 0
    for store in sources:
        for index in store.completed_indexes():
            if index in winners:
                overlapping += 1
            winners[index] = store

    already = set(dest.completed_indexes())
    pending = sorted(index for index in winners if index not in already)

    # Carry the workload prep over (byte copy; load_prep re-validates its own
    # fingerprint on use) so a federated store resumes without re-preparing.
    if dest.transport.stat(_PREP_NAME) is None:
        for store in reversed(sources):  # later sources win here too
            try:
                dest.transport.put(_PREP_NAME, store.transport.get(_PREP_NAME))
                break
            except TransportKeyError:
                continue

    shards_written = 0
    batch: list[tuple[int, dict]] = []
    for position, index in enumerate(pending):
        batch.append((index, winners[index].load_record(index)))
        if len(batch) >= shard_records:
            dest.write_shard_dicts(batch)
            shards_written += 1
            batch = []
        if progress is not None:
            progress(position + 1, len(pending))
    if batch:
        dest.write_shard_dicts(batch)
        shards_written += 1

    return FederationReport(
        fingerprint=fingerprint,
        total=total if isinstance(total, int) else len(winners),
        sources=tuple(source_roots),
        merged_records=len(pending),
        skipped_records=len(already & set(winners)),
        overlapping_records=overlapping,
        shards_written=shards_written,
    )
