"""Failure classification.

Two levels of failures are classified after every experiment, exactly as in
paper §V-B:

* **Orchestrator-level failures (OF)** — No, Tim, LeR, MoR, Net, Sta, Out —
  computed from the monitoring samples (ready replicas, endpoints, pod
  counts, control-plane and networking health).
* **Client-level failures (CF)** — NSI, HRT, IA, SU — computed from the
  application client's latency time series via the mean absolute error
  against a golden baseline and its z-score over the golden-run MAE
  distribution.

When a run matches several categories it is assigned the most severe one;
severity increases No < Tim < LeR < MoR < Net < Sta < Out and
NSI < HRT < IA < SU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence

import numpy as np


class OrchestratorFailure(Enum):
    """Orchestrator-level failure categories (Table I(c)), in severity order."""

    NO = "No"
    TIM = "Tim"
    LER = "LeR"
    MOR = "MoR"
    NET = "Net"
    STA = "Sta"
    OUT = "Out"


class ClientFailure(Enum):
    """Client-level failure categories (Table II), in severity order."""

    NSI = "NSI"
    HRT = "HRT"
    IA = "IA"
    SU = "SU"


_OF_SEVERITY = {failure: index for index, failure in enumerate(OrchestratorFailure)}
_CF_SEVERITY = {failure: index for index, failure in enumerate(ClientFailure)}


def most_severe_of(candidates: Sequence[OrchestratorFailure]) -> OrchestratorFailure:
    """Return the most severe orchestrator failure among ``candidates``."""
    if not candidates:
        return OrchestratorFailure.NO
    return max(candidates, key=lambda failure: _OF_SEVERITY[failure])


def most_severe_cf(candidates: Sequence[ClientFailure]) -> ClientFailure:
    """Return the most severe client failure among ``candidates``."""
    if not candidates:
        return ClientFailure.NSI
    return max(candidates, key=lambda failure: _CF_SEVERITY[failure])


# --------------------------------------------------------------------------
# Golden baseline
# --------------------------------------------------------------------------


def mean_absolute_error(series: Sequence[float], baseline: Sequence[float]) -> float:
    """MAE between a run's latency series and the baseline series.

    Series are aligned by request index; the shorter one is padded with
    zeros (a missing request is a failed request).
    """
    length = max(len(series), len(baseline))
    if length == 0:
        return 0.0
    padded_series = np.zeros(length)
    padded_series[: len(series)] = series
    padded_baseline = np.zeros(length)
    padded_baseline[: len(baseline)] = baseline
    return float(np.mean(np.abs(padded_series - padded_baseline)))


@dataclass
class GoldenBaseline:
    """Statistics extracted from the golden (fault-free) runs of one workload."""

    workload: str
    #: Average latency time series over the golden runs (by request index).
    baseline_series: list[float] = field(default_factory=list)
    #: MAE of each golden run against the baseline series.
    golden_maes: list[float] = field(default_factory=list)
    #: Steady-state application replicas expected at the end of a run.
    expected_replicas: int = 0
    #: Steady-state endpoint count of the application service.
    expected_endpoints: int = 0
    #: Total pods created during a golden run (mean and std over runs).
    pods_created_mean: float = 0.0
    pods_created_std: float = 1.0
    #: Time to reach the steady state (mean and std over golden runs).
    settle_time_mean: float = 0.0
    settle_time_std: float = 1.0
    #: Client errors observed in golden runs (the deploy workload legitimately
    #: fails requests while the service is still coming up).
    client_errors_mean: float = 0.0
    client_errors_std: float = 1.0

    @classmethod
    def from_golden_runs(
        cls,
        workload: str,
        series: list[list[float]],
        expected_replicas: int,
        expected_endpoints: int,
        pods_created: list[int],
        settle_times: list[float],
        client_errors: Optional[list[int]] = None,
    ) -> "GoldenBaseline":
        """Build the baseline from the observables of the golden runs."""
        length = max((len(run) for run in series), default=0)
        if length:
            matrix = np.zeros((len(series), length))
            for row, run in enumerate(series):
                matrix[row, : len(run)] = run
            baseline_series = list(np.mean(matrix, axis=0))
        else:
            baseline_series = []
        baseline = cls(
            workload=workload,
            baseline_series=baseline_series,
            expected_replicas=expected_replicas,
            expected_endpoints=expected_endpoints,
        )
        baseline.golden_maes = [mean_absolute_error(run, baseline_series) for run in series]
        if pods_created:
            baseline.pods_created_mean = float(np.mean(pods_created))
            baseline.pods_created_std = float(max(np.std(pods_created), 0.5))
        if settle_times:
            baseline.settle_time_mean = float(np.mean(settle_times))
            baseline.settle_time_std = float(max(np.std(settle_times), 0.5))
        if client_errors:
            baseline.client_errors_mean = float(np.mean(client_errors))
            baseline.client_errors_std = float(max(np.std(client_errors), 1.0))
        return baseline

    def mae_zscore(self, series: Sequence[float]) -> float:
        """z-score of a run's MAE against the golden-run MAE distribution.

        The golden MAE spread is floored so that the handful of golden runs
        used to build the baseline does not produce a degenerate (near-zero)
        standard deviation and inflate every z-score.
        """
        mae = mean_absolute_error(series, self.baseline_series)
        if not self.golden_maes:
            return 0.0
        mean = float(np.mean(self.golden_maes))
        std = float(np.std(self.golden_maes))
        std = max(std, 0.25 * mean, 0.008)
        return (mae - mean) / std

    def settle_time_zscore(self, settle_time: Optional[float]) -> float:
        """z-score of a run's settle time against the golden distribution."""
        if settle_time is None:
            return float("inf")
        return (settle_time - self.settle_time_mean) / max(self.settle_time_std, 1e-6)


# --------------------------------------------------------------------------
# Orchestrator-level classification
# --------------------------------------------------------------------------


@dataclass
class OrchestratorObservations:
    """Observables extracted from one run, used for OF classification."""

    #: Application-service ready replicas at the end of the run.
    final_ready_replicas: int = 0
    #: Application-service desired replicas at the end of the run.
    final_desired_replicas: int = 0
    #: Application-service endpoint addresses at the end of the run.
    final_endpoints: int = 0
    #: Peak total pod count observed.
    peak_total_pods: int = 0
    #: Total pod count at the end of the run.
    final_total_pods: int = 0
    #: Total distinct pods created during the run.
    pods_created: int = 0
    #: Whether the pod count was still growing at the end of the run.
    pod_count_growing: bool = False
    #: Ready networking-manager pods at the end of the run.
    network_manager_ready: int = 0
    #: Ready DNS pods at the end of the run.
    dns_ready: int = 0
    #: Expected number of networking-manager pods (== nodes).
    expected_network_manager: int = 0
    #: Whether the Kcm or Scheduler held leadership at the end of the run.
    kcm_is_leader: bool = True
    scheduler_is_leader: bool = True
    #: Whether the data store hit its space alarm.
    etcd_alarm: bool = False
    #: Whether any monitoring scrape failed (control plane unreachable).
    scrape_failures: int = 0
    #: Whether any application pod restarted.
    app_pod_restarts: int = 0
    #: Time at which the application reached its desired replica count
    #: (None if it never did).
    settle_time: Optional[float] = None
    #: Fraction of client requests that could reach the service at the end.
    final_reachability: float = 1.0
    #: Number of application pods running but not reachable at the end.
    unreachable_running_pods: int = 0


def classify_orchestrator(
    observations: OrchestratorObservations, baseline: GoldenBaseline
) -> OrchestratorFailure:
    """Classify the orchestrator-level failure of one run (paper §V-B rules)."""
    candidates: list[OrchestratorFailure] = []
    expected = baseline.expected_replicas

    # --- Out: the cluster can no longer serve; DNS or networking collapsed,
    # or (nearly) every service lost its endpoints.
    networking_collapsed = (
        observations.expected_network_manager > 0 and observations.network_manager_ready == 0
    )
    dns_collapsed = observations.dns_ready == 0
    all_services_down = (
        expected > 0 and observations.final_endpoints == 0 and observations.final_reachability == 0.0
    )
    if dns_collapsed or (networking_collapsed and observations.final_reachability < 0.5) or all_services_down:
        candidates.append(OrchestratorFailure.OUT)

    # --- Sta: uncontrolled pod spawn, stuck control plane, or failed
    # networking pods (while running services keep working).
    uncontrolled_spawn = (
        observations.pods_created > baseline.pods_created_mean + 8 * baseline.pods_created_std
        and observations.pod_count_growing
    ) or observations.etcd_alarm
    control_plane_stuck = (
        not observations.kcm_is_leader
        or not observations.scheduler_is_leader
        or observations.scrape_failures > 2
    )
    networking_degraded = (
        observations.expected_network_manager > 0
        and observations.network_manager_ready < observations.expected_network_manager
    )
    if uncontrolled_spawn or control_plane_stuck or networking_degraded:
        candidates.append(OrchestratorFailure.STA)

    # --- Net: the right number of pods, but some are not reachable / not
    # load-balanced.
    replicas_correct = observations.final_ready_replicas >= expected
    if replicas_correct and (
        observations.final_endpoints < baseline.expected_endpoints
        or observations.unreachable_running_pods > 0
    ):
        candidates.append(OrchestratorFailure.NET)

    # --- MoR / LeR: stable over- or under-provisioning.
    if observations.final_ready_replicas > expected or (
        observations.pods_created > baseline.pods_created_mean + 3 * baseline.pods_created_std
        and not observations.pod_count_growing
    ):
        candidates.append(OrchestratorFailure.MOR)
    if expected > 0 and observations.final_ready_replicas < expected:
        candidates.append(OrchestratorFailure.LER)

    # --- Tim: restarts or significantly delayed settle time.
    if observations.app_pod_restarts > 0:
        candidates.append(OrchestratorFailure.TIM)
    elif baseline.settle_time_mean > 0:
        zscore = baseline.settle_time_zscore(observations.settle_time)
        if zscore > 3.0:
            candidates.append(OrchestratorFailure.TIM)

    return most_severe_of(candidates)


# --------------------------------------------------------------------------
# Client-level classification
# --------------------------------------------------------------------------


@dataclass
class ClientObservations:
    """Observables extracted from the application client of one run."""

    latency_series: list[float] = field(default_factory=list)
    error_count: int = 0
    error_bursts: int = 0
    total_requests: int = 0
    #: True if every request failed from some instant until the end of the run.
    unreachable_from_some_point: bool = False


def classify_client(
    observations: ClientObservations, baseline: GoldenBaseline
) -> tuple[ClientFailure, float]:
    """Classify the client-level failure; returns (category, MAE z-score)."""
    zscore = baseline.mae_zscore(observations.latency_series)
    candidates: list[ClientFailure] = []

    # Errors are compared against what the golden runs already show (the
    # deploy workload fails requests while the service is still coming up),
    # so only an error excess counts as intermittent availability.
    error_threshold = baseline.client_errors_mean + max(
        3.0, 2.0 * baseline.client_errors_std
    )
    excess_errors = observations.error_count > error_threshold

    if observations.unreachable_from_some_point and excess_errors:
        candidates.append(ClientFailure.SU)
    if excess_errors and not observations.unreachable_from_some_point:
        candidates.append(ClientFailure.IA)
    if zscore > 2.0:
        candidates.append(ClientFailure.HRT)

    return most_severe_cf(candidates), zscore


# --------------------------------------------------------------------------
# Streaming classification tallies
# --------------------------------------------------------------------------


@dataclass
class CampaignTally:
    """Incrementally folded classification tallies of a campaign.

    Everything the paper's tables aggregate from a campaign — Table IV/V
    rows, the Table III matrix, the OF/CF counts of the CLI summary, the
    activation rate — folds one result at a time, so a streaming result
    store can be tallied without ever materializing the campaign.
    """

    total: int = 0
    injected: int = 0
    activated: int = 0
    #: Experiments in the paper's critical set (Sta, Out, or SU).
    critical: int = 0
    #: (workload, injection family) -> OF value -> count (Table IV).
    of_counts: dict = field(default_factory=dict)
    #: (workload, injection family) -> CF value -> count (Table V).
    cf_counts: dict = field(default_factory=dict)
    #: workload -> OF value -> CF value -> count (Table III, per workload).
    matrices: dict = field(default_factory=dict)
    #: "OF/CF" -> count (CLI summary and drift checks).
    pair_counts: dict = field(default_factory=dict)

    def update(self, result, family: str) -> None:
        """Fold one experiment result (``family`` is its injection family)."""
        self.total += 1
        if result.injected:
            self.injected += 1
            if result.activated:
                self.activated += 1
        of = result.orchestrator_failure
        cf = result.client_failure
        if of in (OrchestratorFailure.STA, OrchestratorFailure.OUT) or cf == ClientFailure.SU:
            self.critical += 1

        key = (result.workload.value, family)
        of_row = self.of_counts.setdefault(
            key, {failure.value: 0 for failure in OrchestratorFailure}
        )
        if of is not None:
            of_row[of.value] += 1
        cf_row = self.cf_counts.setdefault(
            key, {failure.value: 0 for failure in ClientFailure}
        )
        if cf is not None:
            cf_row[cf.value] += 1

        if of is not None and cf is not None:
            matrix = self.matrices.setdefault(
                result.workload.value,
                {o.value: {c.value: 0 for c in ClientFailure} for o in OrchestratorFailure},
            )
            matrix[of.value][cf.value] += 1

        pair = f"{of.value if of else '-'}/{cf.value if cf else '-'}"
        self.pair_counts[pair] = self.pair_counts.get(pair, 0) + 1

    def matrix(self, workload: Optional[str] = None) -> dict[str, dict[str, int]]:
        """The OF→CF matrix, summed over all workloads or for one of them."""
        combined = {
            of.value: {cf.value: 0 for cf in ClientFailure} for of in OrchestratorFailure
        }
        for workload_value, matrix in self.matrices.items():
            if workload is not None and workload_value != workload:
                continue
            for of_value, row in matrix.items():
                for cf_value, count in row.items():
                    combined[of_value][cf_value] += count
        return combined

    def activation_rate(self) -> float:
        """Fraction of injected experiments whose target was used afterwards."""
        if not self.injected:
            return 0.0
        return self.activated / self.injected

    def classification_counts(self) -> dict[str, int]:
        """Failure-class counts keyed ``"OF/CF"``, sorted by key."""
        return dict(sorted(self.pair_counts.items()))


def detect_unreachable_tail(samples_success: Sequence[bool], min_tail: int = 10) -> bool:
    """True if requests fail from some point until the end of the series."""
    if not samples_success:
        return False
    tail_failures = 0
    for success in reversed(list(samples_success)):
        if success:
            break
        tail_failures += 1
    return tail_failures >= min_tail
