"""Pod scheduler.

The scheduling loop mirrors the real scheduler's structure: filter the nodes
that can run the pod (readiness, schedulability, taints, resource fit), score
the survivors (least-allocated), bind the pod by writing ``spec.nodeName``,
and fall back to preemption when nothing fits but lower-priority victims
exist.  Preemption is what turns the uncontrolled replication of
system-priority DaemonSet pods into a cluster outage.
"""

from __future__ import annotations

from typing import Optional

from repro.apiserver.apiserver import APIServer
from repro.apiserver.client import APIClient
from repro.apiserver.errors import ApiError
from repro.controllers.daemonset import tolerates_taints
from repro.controllers.leaderelection import LeaderElector
from repro.objects.meta import deep_copy
from repro.objects.quantities import node_allocatable, pod_resource_request
from repro.sim.engine import Simulation

#: Period of the scheduling loop in simulated seconds.
SCHEDULE_PERIOD = 0.5

#: Delay before a restarted scheduler replica re-acquires leadership
#: (paper: "after a new leader Scheduler is elected (after 20 seconds)").
RESTART_REELECTION_DELAY = 20.0


class Scheduler:
    """Assign pending pods to nodes."""

    def __init__(self, sim: Simulation, apiserver: APIServer, identity: str = "scheduler-0"):
        self.sim = sim
        self.identity = identity
        self.client = APIClient(apiserver, component="kube-scheduler")
        self.elector = LeaderElector(
            sim, self.client, lease_name="kube-scheduler", identity=identity
        )
        #: Assumed bindings: pod uid -> node name, the scheduler's cache.
        self._assumed: dict[str, str] = {}
        self.restart_count = 0
        self._restarting_until = 0.0
        self.pods_scheduled = 0
        self.preemptions = 0
        self.unschedulable_pods = 0
        self._task = None

    # ---------------------------------------------------------------- control

    def start(self, period: float = SCHEDULE_PERIOD) -> None:
        """Start the periodic scheduling loop."""
        self._task = self.sim.call_every(period, self.tick, delay=period, label="scheduler")

    def stop(self) -> None:
        """Stop the scheduling loop (component crash)."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def restart(self, reelection_delay: float = RESTART_REELECTION_DELAY) -> None:
        """Restart the scheduler: drop the cache and leadership, pause scheduling."""
        self.restart_count += 1
        self._assumed.clear()
        self.elector.release()
        self._restarting_until = self.sim.now + reelection_delay

    # ------------------------------------------------------------------- loop

    def tick(self) -> None:
        """One scheduling pass over all pending pods."""
        if self.sim.now < self._restarting_until:
            return
        if not self.elector.try_acquire_or_renew():
            return
        try:
            # Read-only refs (informer contract); pending pods are copied
            # below because binding mutates ``spec.nodeName``.
            pods = self.client.list("Pod", copy=False)
            nodes = self.client.list("Node", copy=False)
        except ApiError:
            return

        self._check_cache_consistency(pods, nodes)

        pending = [deep_copy(pod) for pod in pods if self._is_pending(pod)]
        # Highest priority first, then oldest first.
        pending.sort(key=lambda pod: (-self._priority(pod), self._creation_time(pod)))
        bound = [pod for pod in pods if not self._is_pending(pod)]
        for pod in pending:
            node_name = self._schedule_one(pod, nodes, bound)
            if node_name is not None:
                bound.append(pod)

    # ---------------------------------------------------------- cache checks

    def _check_cache_consistency(self, pods: list[dict], nodes: list[dict]) -> None:
        """Restart if the store disagrees with the scheduler's assumed bindings.

        This reproduces the paper's timing-failure example: an injection that
        rewrites a bound pod's ``nodeName`` to a non-existent node makes the
        scheduler assume its own cache is corrupted and restart.
        """
        node_names = {
            node.get("metadata", {}).get("name")
            for node in nodes
            if isinstance(node.get("metadata"), dict)
        }
        for pod in pods:
            metadata = pod.get("metadata", {})
            spec = pod.get("spec", {})
            if not isinstance(metadata, dict) or not isinstance(spec, dict):
                continue
            uid = metadata.get("uid")
            stored_node = spec.get("nodeName")
            if not isinstance(uid, str):
                continue
            assumed_node = self._assumed.get(uid)
            if assumed_node is None:
                continue
            mismatch = stored_node != assumed_node
            unknown_node = isinstance(stored_node, str) and stored_node not in node_names
            if mismatch or unknown_node:
                self.restart()
                return

    # ------------------------------------------------------------- scheduling

    @staticmethod
    def _is_pending(pod: dict) -> bool:
        spec = pod.get("spec", {})
        status = pod.get("status", {})
        metadata = pod.get("metadata", {})
        if not isinstance(spec, dict) or not isinstance(status, dict):
            return False
        if isinstance(metadata, dict) and metadata.get("deletionTimestamp") is not None:
            return False
        return not spec.get("nodeName") and status.get("phase") in (None, "Pending")

    @staticmethod
    def _priority(pod: dict) -> int:
        spec = pod.get("spec", {})
        priority = spec.get("priority", 0) if isinstance(spec, dict) else 0
        if isinstance(priority, bool) or not isinstance(priority, int):
            return 0
        return priority

    @staticmethod
    def _creation_time(pod: dict) -> float:
        metadata = pod.get("metadata", {})
        created = metadata.get("creationTimestamp") if isinstance(metadata, dict) else 0.0
        if isinstance(created, bool) or not isinstance(created, (int, float)):
            return 0.0
        return float(created)

    def _schedule_one(
        self, pod: dict, nodes: list[dict], bound_pods: list[dict]
    ) -> Optional[str]:
        feasible = []
        for node in nodes:
            if self._node_fits(pod, node, bound_pods):
                feasible.append(node)
        if not feasible:
            victim_node = self._try_preempt(pod, nodes, bound_pods)
            if victim_node is None:
                self.unschedulable_pods += 1
                return None
            return self._bind(pod, victim_node)
        # Least-allocated scoring: pick the node with the most free CPU.
        best = max(feasible, key=lambda node: self._free_cpu(node, bound_pods))
        return self._bind(pod, best.get("metadata", {}).get("name"))

    def _node_fits(self, pod: dict, node: dict, bound_pods: list[dict]) -> bool:
        metadata = node.get("metadata", {})
        spec = node.get("spec", {})
        status = node.get("status", {})
        if not isinstance(metadata, dict) or not isinstance(spec, dict) or not isinstance(status, dict):
            return False
        if spec.get("unschedulable"):
            return False
        if not self._node_ready(node):
            return False
        pod_spec = pod.get("spec", {})
        if not tolerates_taints(pod_spec if isinstance(pod_spec, dict) else {}, spec.get("taints", [])):
            return False
        node_name = metadata.get("name")
        cpu_alloc, mem_alloc = node_allocatable(node)
        cpu_used, mem_used, pod_count = self._node_usage(node_name, bound_pods)
        cpu_req, mem_req = pod_resource_request(pod)
        max_pods = status.get("allocatable", {}).get("pods", 110)
        if isinstance(max_pods, bool) or not isinstance(max_pods, int):
            max_pods = 110
        return (
            cpu_used + cpu_req <= cpu_alloc
            and mem_used + mem_req <= mem_alloc
            and pod_count + 1 <= max_pods
        )

    @staticmethod
    def _node_ready(node: dict) -> bool:
        conditions = node.get("status", {}).get("conditions", [])
        if not isinstance(conditions, list):
            return False
        for condition in conditions:
            if isinstance(condition, dict) and condition.get("type") == "Ready":
                return condition.get("status") == "True"
        return False

    @staticmethod
    def _node_usage(node_name, bound_pods: list[dict]) -> tuple[float, int, int]:
        cpu_used = 0.0
        mem_used = 0
        count = 0
        for pod in bound_pods:
            spec = pod.get("spec", {})
            status = pod.get("status", {})
            if not isinstance(spec, dict) or spec.get("nodeName") != node_name:
                continue
            if isinstance(status, dict) and status.get("phase") in ("Succeeded", "Failed"):
                continue
            cpu, mem = pod_resource_request(pod)
            cpu_used += cpu
            mem_used += mem
            count += 1
        return cpu_used, mem_used, count

    def _free_cpu(self, node: dict, bound_pods: list[dict]) -> float:
        cpu_alloc, _ = node_allocatable(node)
        cpu_used, _, _ = self._node_usage(node.get("metadata", {}).get("name"), bound_pods)
        return cpu_alloc - cpu_used

    def _try_preempt(
        self, pod: dict, nodes: list[dict], bound_pods: list[dict]
    ) -> Optional[str]:
        """Evict lower-priority pods to make room for a higher-priority pod."""
        pod_priority = self._priority(pod)
        cpu_req, mem_req = pod_resource_request(pod)
        for node in nodes:
            metadata = node.get("metadata", {})
            if not isinstance(metadata, dict) or not self._node_ready(node):
                continue
            node_name = metadata.get("name")
            victims = [
                candidate
                for candidate in bound_pods
                if isinstance(candidate.get("spec"), dict)
                and candidate["spec"].get("nodeName") == node_name
                and self._priority(candidate) < pod_priority
            ]
            if not victims:
                continue
            victims.sort(key=self._priority)
            cpu_alloc, mem_alloc = node_allocatable(node)
            cpu_used, mem_used, _ = self._node_usage(node_name, bound_pods)
            freed_cpu = 0.0
            freed_mem = 0
            chosen = []
            for victim in victims:
                if (
                    cpu_used - freed_cpu + cpu_req <= cpu_alloc
                    and mem_used - freed_mem + mem_req <= mem_alloc
                ):
                    break
                victim_cpu, victim_mem = pod_resource_request(victim)
                freed_cpu += victim_cpu
                freed_mem += victim_mem
                chosen.append(victim)
            if (
                cpu_used - freed_cpu + cpu_req <= cpu_alloc
                and mem_used - freed_mem + mem_req <= mem_alloc
            ):
                for victim in chosen:
                    victim_meta = victim.get("metadata", {})
                    try:
                        self.client.delete(
                            "Pod",
                            victim_meta.get("name", ""),
                            namespace=victim_meta.get("namespace", "default"),
                        )
                        self.preemptions += 1
                    except ApiError:
                        continue
                return node_name
        return None

    def _bind(self, pod: dict, node_name: Optional[str]) -> Optional[str]:
        if not isinstance(node_name, str):
            return None
        pod["spec"]["nodeName"] = node_name
        try:
            updated = self.client.update("Pod", pod)
        except ApiError:
            return None
        uid = updated.get("metadata", {}).get("uid")
        if isinstance(uid, str):
            self._assumed[uid] = node_name
        self.pods_scheduled += 1
        return node_name

    def stats(self) -> dict:
        """Return scheduling counters."""
        return {
            "scheduled": self.pods_scheduled,
            "preemptions": self.preemptions,
            "unschedulable": self.unschedulable_pods,
            "restarts": self.restart_count,
            "is_leader": self.elector.is_leader,
        }
