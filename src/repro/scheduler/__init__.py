"""The kube-scheduler.

Assigns pending Pods to Nodes based on resource requests, taints and
availability, and implements the cache-consistency restart behaviour the
paper observed: when the scheduler's in-memory view of an assignment
disagrees with the data store, it assumes its cache is corrupted and
restarts, paying a leader re-election delay before scheduling resumes.
"""

from repro.scheduler.scheduler import Scheduler

__all__ = ["Scheduler"]
