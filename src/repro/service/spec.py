"""The declarative campaign specification shared by the CLI and the service.

A :class:`CampaignSpec` is the one description of "a campaign somebody wants
run": which workloads, how large, which execution backend, and where the
results go.  It round-trips losslessly through ``dict``/JSON — the body of
``POST /v1/campaigns`` *is* a spec document, and ``repro.cli campaign`` /
``submit`` build the identical object from their flags — so validation
happens exactly once, here, for every submission surface.

Identity follows from content: :meth:`CampaignSpec.fingerprint` hashes the
canonical JSON form, and the service derives campaign ids from it, which is
what makes resubmission idempotent and a restarted service able to recognise
its campaigns purely from the transport-backed index.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Optional

from repro.core.campaign import CampaignConfig
from repro.core.transport import StoreURLError, resolve_store_url
from repro.workloads.workload import WorkloadKind

#: Execution backends a spec may name (mirrors ``Campaign.run``).
BACKENDS = ("local", "distributed")

#: Workload names a spec may list.
WORKLOAD_NAMES = tuple(kind.value for kind in WorkloadKind)


class SpecError(ValueError):
    """A campaign spec is malformed; the message names the offending field."""


def _require_int(name: str, value: Any, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise SpecError(f"{name} must be >= {minimum}, got {value!r}")
    return value


def _require_number(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"{name} must be a number, got {value!r}")
    if value <= 0:
        raise SpecError(f"{name} must be > 0, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign, declaratively: what to run, how, and where results go.

    Field defaults match the ``repro.cli campaign`` flag defaults, so an
    empty ``POST /v1/campaigns`` body plus a store URL means the same thing
    as running the CLI with no flags.  ``max_experiments=0`` ("the full
    generated campaign" on the CLI) normalises to ``None``.
    """

    workloads: tuple[str, ...] = WORKLOAD_NAMES
    seed: int = 7
    golden_runs: int = 2
    max_experiments: Optional[int] = 60
    workers: Optional[int] = None
    chunk_size: Optional[int] = None
    shard_batch: int = 1
    backend: str = "local"
    store_url: Optional[str] = None
    checkpoint: Optional[str] = None
    slice_size: Optional[int] = None
    poll_interval: float = 0.5
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if isinstance(self.workloads, (str, bytes)) or not isinstance(
            self.workloads, (list, tuple)
        ):
            raise SpecError(
                f"workloads must be a list of workload names, got {self.workloads!r}"
            )
        names = tuple(self.workloads)
        if not names:
            raise SpecError("workloads must name at least one workload")
        for name in names:
            if name not in WORKLOAD_NAMES:
                raise SpecError(
                    f"workloads names unknown workload {name!r} "
                    f"(choose from {', '.join(WORKLOAD_NAMES)})"
                )
        object.__setattr__(self, "workloads", names)
        _require_int("seed", self.seed, minimum=-(2**63))
        _require_int("golden_runs", self.golden_runs, minimum=1)
        if self.max_experiments is not None:
            _require_int("max_experiments", self.max_experiments, minimum=0)
            if self.max_experiments == 0:
                object.__setattr__(self, "max_experiments", None)
        for name in ("workers", "chunk_size", "slice_size"):
            value = getattr(self, name)
            if value is not None:
                _require_int(name, value, minimum=1)
        _require_int("shard_batch", self.shard_batch, minimum=1)
        if self.backend not in BACKENDS:
            raise SpecError(
                f"backend must be one of {', '.join(BACKENDS)}, got {self.backend!r}"
            )
        object.__setattr__(self, "poll_interval", _require_number("poll_interval", self.poll_interval))
        if self.timeout is not None:
            object.__setattr__(self, "timeout", _require_number("timeout", self.timeout))
        if self.store_url is not None:
            try:
                object.__setattr__(
                    self, "store_url", resolve_store_url(self.store_url, option="store_url")
                )
            except StoreURLError as error:
                raise SpecError(str(error)) from None
        if self.checkpoint is not None and not (
            isinstance(self.checkpoint, str) and self.checkpoint.strip()
        ):
            raise SpecError(f"checkpoint must be a file path, got {self.checkpoint!r}")
        if self.checkpoint and self.store_url:
            raise SpecError("checkpoint and store_url are mutually exclusive")
        if self.backend == "distributed" and not self.store_url:
            raise SpecError(
                "backend 'distributed' requires store_url — pass --results-dir "
                "(a directory or objstore:// URL shared with the worker processes)"
            )
        if self.backend == "distributed" and self.checkpoint:
            raise SpecError("backend 'distributed' cannot use checkpoint persistence")

    # ------------------------------------------------------------ round-trip

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        return tuple(spec_field.name for spec_field in fields(cls))

    @classmethod
    def from_dict(cls, data: Any) -> "CampaignSpec":
        """Build a spec from a decoded JSON document, rejecting unknown keys.

        Unknown fields are an error, not a warning: a typo'd ``max_expermnts``
        silently defaulting to 60 is exactly the configuration-defect class
        this repo exists to study.
        """
        if not isinstance(data, dict):
            raise SpecError(f"campaign spec must be a JSON object, got {data!r}")
        known = set(cls.field_names())
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"unknown campaign spec field(s): {', '.join(unknown)} "
                f"(known fields: {', '.join(sorted(known))})"
            )
        kwargs = dict(data)
        if isinstance(kwargs.get("workloads"), list):
            kwargs["workloads"] = tuple(kwargs["workloads"])
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"campaign spec is not valid JSON: {error}") from None
        return cls.from_dict(data)

    @classmethod
    def from_cli_args(cls, args: Any) -> "CampaignSpec":
        """The one bridge from parsed CLI flags (``campaign``/``submit``) to
        a spec — argparse types already vetted the raw strings, the spec
        constructor revalidates the combination."""
        return cls(
            workloads=tuple(kind.value for kind in args.workloads),
            seed=args.seed,
            golden_runs=args.golden_runs,
            max_experiments=args.max_experiments,
            workers=args.workers,
            chunk_size=args.chunk_size,
            shard_batch=args.shard_batch,
            backend=args.backend,
            store_url=args.results_dir,
            checkpoint=getattr(args, "checkpoint", None),
            slice_size=args.slice_size,
            poll_interval=args.poll_interval,
            timeout=args.coordinator_timeout,
        )

    def to_dict(self) -> dict:
        """The canonical JSON-ready form (what the service echoes back)."""
        data = {name: getattr(self, name) for name in self.field_names()}
        data["workloads"] = list(self.workloads)
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    # -------------------------------------------------------------- identity

    def fingerprint(self) -> str:
        """SHA-256 of the canonical JSON form: the spec's content identity.

        Includes ``store_url`` deliberately — a campaign *is* its
        configuration plus where its results live; the service keys its
        index on this, making resubmission of the same document idempotent.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def campaign_id(self) -> str:
        """The server-assigned id: a 16-hex-char prefix of the fingerprint."""
        return self.fingerprint()[:16]

    # ------------------------------------------------------------- execution

    def workload_kinds(self) -> tuple[WorkloadKind, ...]:
        return tuple(WorkloadKind(name) for name in self.workloads)

    def to_config(self) -> CampaignConfig:
        """The engine-facing configuration this spec describes."""
        return CampaignConfig(
            workloads=self.workload_kinds(),
            golden_runs=self.golden_runs,
            max_experiments_per_workload=self.max_experiments,
            seed=self.seed,
            workers=self.workers,
            chunk_size=self.chunk_size,
            shard_batch=self.shard_batch,
        )

    def distributed_settings(self):
        """``DistributedSettings`` for distributed specs, else ``None``."""
        if self.backend != "distributed":
            return None
        from repro.core.distributed import DistributedSettings

        return DistributedSettings(
            slice_size=self.slice_size,
            poll_interval=self.poll_interval,
            timeout=self.timeout,
        )
