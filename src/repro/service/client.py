"""Stdlib HTTP client for the campaign service.

``repro.cli submit`` and the tests drive the service through this client so
the wire protocol has exactly one encoder/decoder on each side.  Built on
``http.client`` (no new dependency), with the polling loop tolerating the
transient connection failures a restarting service produces — that is the
point of the statelessness guarantee.
"""

from __future__ import annotations

# mutiny-lint: disable=MUT002 -- control-plane HTTP to the campaign service API, not shard storage; no transport backend speaks this protocol
import http.client
import json
import time
import urllib.parse
from typing import Any, Optional

from repro.service.spec import CampaignSpec

#: Handle states after which polling stops.
TERMINAL_STATES = ("complete", "failed", "cancelled")


class ServiceError(RuntimeError):
    """The service answered with an error (carries the HTTP status)."""

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServiceClient:
    """Thin JSON-over-HTTP client for one campaign service."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        parsed = urllib.parse.urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(
                f"invalid service URL {base_url!r} (expected http://host:port)"
            )
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -------------------------------------------------------------- plumbing

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> tuple[int, bytes, dict]:
        # mutiny-lint: disable=MUT002 -- same control-plane API connection; retried requests are safe (GETs and idempotent POSTs per the /v1 spec)
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            return response.status, raw, dict(response.getheaders())
        finally:
            connection.close()

    def _request_json(self, method: str, path: str, body: Optional[dict] = None) -> Any:
        status, raw, headers = self._request(method, path, body)
        if status >= 400:
            raise ServiceError(status, _error_message(raw), _retry_after(headers))
        return json.loads(raw) if raw else None

    # ------------------------------------------------------------ operations

    def healthy(self) -> bool:
        try:
            status, _, _ = self._request("GET", "/healthz")
        except OSError:
            return False
        return status == 200

    def ready(self) -> bool:
        try:
            status, _, _ = self._request("GET", "/readyz")
        except OSError:
            return False
        return status == 200

    def submit(self, spec: CampaignSpec) -> dict:
        return self._request_json("POST", "/v1/campaigns", spec.to_dict())

    def campaigns(self) -> list[dict]:
        return self._request_json("GET", "/v1/campaigns")["campaigns"]

    def describe(self, campaign_id: str) -> dict:
        return self._request_json("GET", f"/v1/campaigns/{campaign_id}/status")

    def status(self, campaign_id: str) -> dict:
        return self.describe(campaign_id)

    def tables(self, campaign_id: str) -> dict:
        return self._request_json("GET", f"/v1/campaigns/{campaign_id}/tables")

    def document(self, campaign_id: str) -> bytes:
        """The campaign's canonical inspect document, as raw bytes — callers
        diff these against a CLI-written file, so no decode/re-encode."""
        status, raw, headers = self._request("GET", f"/v1/campaigns/{campaign_id}")
        if status >= 400:
            raise ServiceError(status, _error_message(raw), _retry_after(headers))
        return raw

    def cancel(self, campaign_id: str) -> dict:
        return self._request_json("DELETE", f"/v1/campaigns/{campaign_id}")

    # --------------------------------------------------------------- polling

    def wait(
        self,
        campaign_id: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.5,
    ) -> dict:
        """Poll ``/status`` until the campaign reaches a terminal state.

        Connection failures and 5xx answers are tolerated up to the deadline
        — a service being restarted mid-campaign is an expected condition,
        not an error, and the campaign's state survives it by construction.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                status = self.describe(campaign_id)
            except (OSError, ServiceError) as error:
                if isinstance(error, ServiceError) and error.status < 500:
                    raise
                status = None
            if status is not None and status.get("state") in TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} not terminal after {timeout}s "
                    f"(last status: {status})"
                )
            time.sleep(poll_interval)

    def wait_ready(self, timeout: float = 30.0, poll_interval: float = 0.2) -> None:
        """Block until ``/readyz`` answers 200 (startup / restart helper)."""
        deadline = time.monotonic() + timeout
        while not self.ready():
            if time.monotonic() > deadline:
                raise TimeoutError(f"service {self.base_url} not ready after {timeout}s")
            time.sleep(poll_interval)


def _error_message(raw: bytes) -> str:
    try:
        return json.loads(raw)["error"]
    except (ValueError, KeyError, TypeError):
        return raw.decode("utf-8", "replace") or "no error body"


def _retry_after(headers: dict) -> Optional[float]:
    value = headers.get("Retry-After")
    try:
        return float(value) if value is not None else None
    except ValueError:
        return None
