"""Campaign-as-a-service: the programmatic and HTTP control plane.

The engine's one public submission surface: :class:`CampaignSpec` describes
a campaign (dict/JSON round-trippable, one validation path for CLI and
HTTP), :class:`CampaignHandle` executes one (submit/poll/result/cancel),
and :mod:`repro.service.server` multiplexes many handles behind a stateless
``/v1`` JSON API whose only persistence is the transport-backed store.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.handle import CampaignHandle
from repro.service.server import (
    CampaignService,
    CampaignServiceServer,
    ServiceQuotaError,
    UnknownCampaignError,
    serve,
)
from repro.service.spec import CampaignSpec, SpecError

__all__ = [
    "CampaignHandle",
    "CampaignService",
    "CampaignServiceServer",
    "CampaignSpec",
    "ServiceClient",
    "ServiceError",
    "ServiceQuotaError",
    "SpecError",
    "UnknownCampaignError",
    "serve",
]
