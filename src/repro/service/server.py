"""The campaign service: a stateless HTTP control plane over the engine.

A stdlib :class:`ThreadingHTTPServer` (same dependency-free idiom as
:mod:`repro.core.objstore`) exposing the versioned JSON API::

    POST   /v1/campaigns            submit a CampaignSpec document
    GET    /v1/campaigns            list known campaigns + live progress
    GET    /v1/campaigns/{id}       the canonical inspect --json document
    GET    /v1/campaigns/{id}/status   live slices/leases/record counts
    GET    /v1/campaigns/{id}/tables   the paper's tables as JSON
    DELETE /v1/campaigns/{id}       cooperative cancellation
    GET    /healthz                 process liveness
    GET    /readyz                  200 once rehydration finished

Statelessness is by construction, not by discipline: a campaign's identity
is its spec fingerprint (which includes the store URL), every result byte
lives in the transport-backed shard store, and the only thing the service
persists is a tiny ``campaigns/<id>.json`` index record written through the
same :class:`~repro.core.transport.ShardTransport` seven-op contract the
stores use.  A restarted — or replicated — service lists that index,
rebuilds its registry, and resumes any campaign whose store is incomplete;
the resume replays zero experiments because that is the store's guarantee,
so the final digest is byte-identical to an uninterrupted run.

Execution happens on background :class:`~repro.service.handle.CampaignHandle`
threads.  A per-service quota caps *concurrently running* campaigns;
submissions beyond it get ``429`` with a ``Retry-After`` header rather than
queueing unboundedly — the client owns the retry policy.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.core.campaign import CampaignResult
from repro.core.distributed import DistributedPlanError, SliceLeases, load_plan
from repro.core.report import store_document, tables_document, document_to_bytes
from repro.core.resultstore import ShardedResultStore
from repro.core.transport import (
    StoreURLError,
    TransportError,
    TransportKeyError,
    resolve_store_url,
    transport_for,
)
from repro.service.handle import CampaignHandle, store_progress
from repro.service.spec import CampaignSpec, SpecError

#: Prefix of the index records in the service's state store.
CAMPAIGN_INDEX_PREFIX = "campaigns/"

#: Default cap on concurrently running campaigns per service process.
DEFAULT_MAX_CAMPAIGNS = 4

#: Seconds suggested to a 429'd client before retrying.
DEFAULT_RETRY_AFTER = 5


class ServiceQuotaError(RuntimeError):
    """The per-service concurrent-campaign quota is exhausted (HTTP 429)."""


class UnknownCampaignError(KeyError):
    """No campaign with the requested id exists (HTTP 404)."""


class ManagedCampaign:
    """One campaign the service knows about: its index record + runner."""

    def __init__(self, record: dict, spec: CampaignSpec, handle: Optional[CampaignHandle]):
        self.record = record
        self.spec = spec
        self.handle = handle

    @property
    def campaign_id(self) -> str:
        return self.record["id"]

    @property
    def state(self) -> str:
        if self.handle is not None:
            return self.handle.state
        # Rehydration only skips the runner for campaigns that need none.
        return "cancelled" if self.record.get("cancelled") else "complete"

    @property
    def active(self) -> bool:
        """Whether this campaign occupies a quota slot right now."""
        return self.state in ("pending", "running")

    def summary(self) -> dict:
        info = {
            "id": self.campaign_id,
            "fingerprint": self.record["fingerprint"],
            "store_url": self.spec.store_url,
            "backend": self.spec.backend,
            "state": self.state,
            "submitted_at": self.record.get("submitted_at"),
            "cancelled": bool(self.record.get("cancelled")),
        }
        if self.spec.store_url:
            info.update(store_progress(self.spec.store_url))
        if self.handle is not None and self.handle.error is not None:
            info["error"] = str(self.handle.error)
        return info


class CampaignService:
    """Registry + execution policy behind the HTTP handler (and tests)."""

    # Guarded by self._lock (enforced by mutiny-lint MUT004): the registry
    # is mutated by every handler thread plus the rehydration pass.
    _lock_guarded = ("_campaigns",)

    def __init__(
        self,
        state_root: str,
        max_campaigns: int = DEFAULT_MAX_CAMPAIGNS,
        retry_after: int = DEFAULT_RETRY_AFTER,
    ):
        if max_campaigns < 1:
            raise ValueError(
                f"invalid --max-campaigns value {max_campaigns!r}: must be an integer >= 1"
            )
        self.state_root = resolve_store_url(state_root, option="--state")
        self.transport = transport_for(self.state_root)
        self.max_campaigns = max_campaigns
        self.retry_after = retry_after
        self._campaigns: dict[str, ManagedCampaign] = {}
        self._lock = threading.Lock()
        self._ready = threading.Event()

    # ------------------------------------------------------------- readiness

    @property
    def ready(self) -> bool:
        return self._ready.is_set()

    def rehydrate(self) -> int:
        """Rebuild the registry from the persisted index (startup / restart).

        Campaigns whose stores are already complete (or that were cancelled)
        come back as terminal records with no runner; anything in flight when
        the previous process died gets a fresh handle and *resumes* — the
        store scan skips every completed shard, so nothing replays.  Returns
        the number of campaigns recovered.
        """
        recovered = 0
        for key in self.transport.list(CAMPAIGN_INDEX_PREFIX):
            if not key.endswith(".json"):
                continue
            try:
                record = json.loads(self.transport.get(key))
                spec = CampaignSpec.from_dict(record["spec"])
            except (TransportKeyError, SpecError, KeyError, ValueError):
                continue  # a torn or foreign record must not block startup
            campaign_id = record.get("id") or spec.campaign_id()
            # The completeness probe reads the campaign's store — transport
            # round-trips that must not run under the registry lock (every
            # handler thread would stall behind startup I/O).
            terminal = bool(record.get("cancelled")) or _store_complete(spec)
            with self._lock:
                if campaign_id in self._campaigns:
                    continue
                handle = None if terminal else CampaignHandle(spec).start()
                self._campaigns[campaign_id] = ManagedCampaign(record, spec, handle)
            recovered += 1
        self._ready.set()
        return recovered

    # ------------------------------------------------------------ operations

    def submit(self, data: dict) -> tuple[int, dict]:
        """Admit a spec document; returns ``(http_status, response_body)``.

        Identity is content-derived, so resubmitting the same document is
        idempotent (200 with the existing campaign); a terminal failed or
        cancelled campaign is restarted by resubmission.  Raises
        :class:`SpecError` (400) or :class:`ServiceQuotaError` (429).
        """
        spec = CampaignSpec.from_dict(data)
        if not spec.store_url:
            raise SpecError(
                "service campaigns require store_url — the service is stateless "
                "and a campaign's results must live in a transport-backed store"
            )
        if spec.checkpoint:
            raise SpecError("service campaigns cannot use checkpoint persistence")
        campaign_id = spec.campaign_id()
        # Admission, registry mutation, and the (cheap) handle start happen
        # under the lock so quota accounting and idempotency stay atomic;
        # the index-record transport round-trip happens *after* release —
        # a slow or faulty state store must never stall every other
        # handler thread behind `self._lock` (mutiny-lint MUT007).
        with self._lock:
            existing = self._campaigns.get(campaign_id)
            if existing is not None:
                if existing.state not in ("failed", "cancelled"):
                    return 200, self._response(existing)
                self._admit_locked()
                existing.record["cancelled"] = False
                existing.handle = CampaignHandle(spec).start()
                managed, status, created = existing, 200, False
            else:
                self._admit_locked()
                record = {
                    "id": campaign_id,
                    "fingerprint": spec.fingerprint(),
                    "spec": spec.to_dict(),
                    "submitted_at": time.time(),
                    "cancelled": False,
                }
                managed = ManagedCampaign(record, spec, CampaignHandle(spec).start())
                self._campaigns[campaign_id] = managed
                status, created = 201, True
        try:
            # Restarts overwrite their own record; fresh submissions defer
            # to a replica that indexed the same content-derived id first.
            self._persist_record(managed.record, overwrite=not created)
        except TransportError:
            # Un-admit: a campaign the index cannot name would be orphaned
            # by the next rehydration, so stop the runner, free the quota
            # slot, and surface the store failure to the client.
            managed.handle.cancel()
            with self._lock:
                if created:
                    self._campaigns.pop(campaign_id, None)
            raise
        return status, self._response(managed)

    def _admit_locked(self) -> None:
        running = sum(1 for campaign in self._campaigns.values() if campaign.active)
        if running >= self.max_campaigns:
            raise ServiceQuotaError(
                f"campaign quota exhausted: {running} of {self.max_campaigns} "
                f"concurrent campaigns running; retry after {self.retry_after}s"
            )

    def _persist_record(self, record: dict, overwrite: bool) -> None:
        key = f"{CAMPAIGN_INDEX_PREFIX}{record['id']}.json"
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        if overwrite:
            self.transport.put(key, payload)
        elif not self.transport.put_if_absent(key, payload):
            # A replica (or a predecessor of this process) indexed the same
            # campaign first; its record is authoritative.
            record.update(json.loads(self.transport.get(key)))

    def _response(self, managed: ManagedCampaign) -> dict:
        base = f"/v1/campaigns/{managed.campaign_id}"
        return {
            "id": managed.campaign_id,
            "fingerprint": managed.record["fingerprint"],
            "spec": managed.spec.to_dict(),
            "state": managed.state,
            "submitted_at": managed.record.get("submitted_at"),
            "links": {
                "self": base,
                "status": f"{base}/status",
                "tables": f"{base}/tables",
            },
        }

    def _get(self, campaign_id: str) -> ManagedCampaign:
        with self._lock:
            managed = self._campaigns.get(campaign_id)
        if managed is None:
            raise UnknownCampaignError(campaign_id)
        return managed

    def list_campaigns(self) -> dict:
        with self._lock:
            campaigns = list(self._campaigns.values())
        campaigns.sort(key=lambda managed: (managed.record.get("submitted_at") or 0.0))
        return {"campaigns": [managed.summary() for managed in campaigns]}

    def describe(self, campaign_id: str) -> dict:
        return self._response(self._get(campaign_id))

    def cancel(self, campaign_id: str) -> dict:
        """Request cancellation and persist the intent, so a restarted
        service will not resurrect the campaign."""
        managed = self._get(campaign_id)
        if managed.handle is not None:
            managed.handle.cancel()
        with self._lock:
            managed.record["cancelled"] = True
        # Persist the intent off-lock: the registry flip above is what other
        # handler threads need, and the index write is a transport
        # round-trip that must not hold them up (mutiny-lint MUT007).
        self._persist_record(managed.record, overwrite=True)
        return {"id": campaign_id, "state": managed.state, "cancelled": True}

    def document_bytes(self, campaign_id: str) -> Optional[bytes]:
        """The campaign's canonical inspect document, or ``None`` while the
        store has no manifest yet (the HTTP layer answers 503 then)."""
        managed = self._get(campaign_id)
        store = ShardedResultStore(managed.spec.store_url)
        if not store.has_manifest():
            return None
        campaign = CampaignResult(results=store.all_results())
        return document_to_bytes(store_document(store, campaign=campaign))

    def tables(self, campaign_id: str) -> Optional[dict]:
        managed = self._get(campaign_id)
        store = ShardedResultStore(managed.spec.store_url)
        if not store.has_manifest():
            return None
        return tables_document(CampaignResult(results=store.all_results()))

    def status(self, campaign_id: str) -> dict:
        """Live distributed-run introspection: what ``inspect`` prints as
        provenance, as JSON — slices done, leases outstanding, counts."""
        managed = self._get(campaign_id)
        info = {
            "id": campaign_id,
            "fingerprint": managed.record["fingerprint"],
            "store_url": managed.spec.store_url,
            "backend": managed.spec.backend,
            "state": managed.state,
            "cancelled": bool(managed.record.get("cancelled")),
        }
        if managed.handle is not None:
            info.update(managed.handle.poll())
        elif managed.spec.store_url:
            info.update(store_progress(managed.spec.store_url))
        root = managed.spec.store_url
        try:
            plan = load_plan(root)
        except (DistributedPlanError, TransportError):
            # Status stays served without plan enrichment: an unreadable or
            # unreachable plan is reported by the run itself, not by polls.
            plan = None
        if plan is not None:
            info["plan"] = {"total": plan.total, "slices": len(plan.slices())}
        leases = SliceLeases(root)
        info["slices_done"] = leases.done_records()
        info["outstanding_leases"] = [
            {
                "slice": lease.slice_id,
                "worker": lease.worker,
                "age": lease.age,
                "ttl": lease.ttl,
                "expired": lease.expired,
            }
            for lease in leases.outstanding()
        ]
        return info


def _store_complete(spec: CampaignSpec) -> bool:
    """Whether the spec's store already holds every planned experiment."""
    store = ShardedResultStore(spec.store_url)
    try:
        manifest = store.manifest()
    except (TransportKeyError, KeyError):
        return False
    except TransportError:
        return False
    total = manifest.get("total")
    return isinstance(total, int) and store.record_count() >= total


# --------------------------------------------------------------------------
# HTTP layer
# --------------------------------------------------------------------------


class CampaignServiceServer(ThreadingHTTPServer):
    """HTTP front of a :class:`CampaignService` (in-process or standalone)."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: CampaignService):
        super().__init__(address, _Handler)
        self.service = service
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start(self, rehydrate: bool = True) -> "CampaignServiceServer":
        """Serve in a daemon thread; rehydration runs on its own thread so
        the listener (and ``/healthz``) is up immediately — ``/readyz``
        flips to 200 once the registry is rebuilt."""
        if rehydrate:
            threading.Thread(target=self.service.rehydrate, daemon=True).start()
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.server_close()


class _Handler(BaseHTTPRequestHandler):
    """Routing and JSON plumbing; all state lives on the service."""

    server: CampaignServiceServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the service is driven by tests/CI; keep stderr clean

    @property
    def service(self) -> CampaignService:
        return self.server.service

    def _send(self, status: int, body: bytes, content_type: str, headers: Optional[dict] = None):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict, headers: Optional[dict] = None):
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json", headers)

    def _send_error(self, status: int, message: str, headers: Optional[dict] = None):
        self._send_json(status, {"error": message}, headers)

    def _route(self) -> tuple[str, Optional[str], Optional[str]]:
        """``(path, campaign_id, subresource)`` of the request URL."""
        path = urllib.parse.urlsplit(self.path).path.rstrip("/") or "/"
        parts = path.split("/")
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "campaigns":
            campaign_id = urllib.parse.unquote(parts[3])
            subresource = parts[4] if len(parts) == 5 else None
            return path, campaign_id, subresource
        return path, None, None

    # -------------------------------------------------------------- methods

    def do_GET(self):  # noqa: N802 - stdlib naming
        path, campaign_id, subresource = self._route()
        try:
            if path == "/healthz":
                self._send(200, b"ok", "text/plain")
            elif path == "/readyz":
                if self.service.ready:
                    self._send(200, b"ready", "text/plain")
                else:
                    self._send_error(503, "rehydrating", {"Retry-After": "1"})
            elif path == "/v1/campaigns":
                self._send_json(200, self.service.list_campaigns())
            elif campaign_id is not None and subresource is None:
                document = self.service.document_bytes(campaign_id)
                if document is None:
                    self._send_error(
                        503,
                        f"campaign {campaign_id} has no stored results yet",
                        {"Retry-After": "1"},
                    )
                else:
                    self._send(200, document, "application/json")
            elif campaign_id is not None and subresource == "status":
                self._send_json(200, self.service.status(campaign_id))
            elif campaign_id is not None and subresource == "tables":
                tables = self.service.tables(campaign_id)
                if tables is None:
                    self._send_error(
                        503,
                        f"campaign {campaign_id} has no stored results yet",
                        {"Retry-After": "1"},
                    )
                else:
                    self._send_json(200, tables)
            else:
                self._send_error(404, f"unknown resource {path!r}")
        except UnknownCampaignError:
            self._send_error(404, f"unknown campaign {campaign_id!r}")
        except TransportError as error:
            self._send_error(502, f"store unreachable: {error}")

    def do_POST(self):  # noqa: N802
        path, _, _ = self._route()
        if path != "/v1/campaigns":
            self._send_error(404, f"unknown resource {path!r}")
            return
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_error(400, f"request body is not valid JSON: {error}")
            return
        try:
            status, payload = self.service.submit(data)
        except SpecError as error:
            self._send_error(400, str(error))
        except ServiceQuotaError as error:
            self._send_error(429, str(error), {"Retry-After": str(self.service.retry_after)})
        except TransportError as error:
            self._send_error(502, f"store unreachable: {error}")
        else:
            self._send_json(status, payload)

    def do_DELETE(self):  # noqa: N802
        path, campaign_id, subresource = self._route()
        if campaign_id is None or subresource is not None:
            self._send_error(404, f"unknown resource {path!r}")
            return
        try:
            self._send_json(200, self.service.cancel(campaign_id))
        except UnknownCampaignError:
            self._send_error(404, f"unknown campaign {campaign_id!r}")
        except TransportError as error:
            self._send_error(502, f"store unreachable: {error}")


def serve(
    host: str = "127.0.0.1",
    port: int = 8484,
    state_root: str = "campaign-service-state",
    max_campaigns: int = DEFAULT_MAX_CAMPAIGNS,
) -> CampaignServiceServer:
    """Blocking standalone service (the ``repro.cli serve`` entry point)."""
    service = CampaignService(state_root, max_campaigns=max_campaigns)
    server = CampaignServiceServer((host, port), service)
    print(
        f"campaign service listening on {server.url} "
        f"(state: {service.state_root}, quota: {max_campaigns})",
        flush=True,
    )
    threading.Thread(target=service.rehydrate, daemon=True).start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return server
