"""Programmatic campaign execution: submit, poll, cancel, result.

A :class:`CampaignHandle` is the one way a spec gets executed — the CLI
calls :meth:`run` in its own process, the service calls :meth:`start` and
keeps the handle on a background thread.  Both paths go through the same
``Campaign.run`` call, so "the CLI is a thin client of the service's API"
is structural, not aspirational.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.core.campaign import Campaign, CampaignCancelledError, CampaignResult
from repro.core.resultstore import ShardedResultStore
from repro.core.transport import TransportKeyError
from repro.service.spec import CampaignSpec

#: Handle lifecycle states (terminal: complete, failed, cancelled).
STATES = ("pending", "running", "complete", "failed", "cancelled")


class CampaignHandle:
    """One spec's execution: run it, watch it, cancel it, fetch its result."""

    # Guarded by self._lock (enforced by mutiny-lint MUT004): shared between
    # the caller and the background campaign thread.
    _lock_guarded = ("_state", "_result", "_error", "_thread")

    def __init__(self, spec: CampaignSpec):
        self.spec = spec
        self._cancel = threading.Event()
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._state = "pending"
        self._result: Optional[CampaignResult] = None
        self._error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    # -------------------------------------------------------------- lifecycle

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def run(self, progress=None) -> CampaignResult:
        """Execute the spec synchronously in the calling thread (CLI path).

        Raises whatever ``Campaign.run`` raises; the terminal state is
        recorded either way so a service wrapping the handle reports it.
        """
        with self._lock:
            self._state = "running"
        try:
            result = Campaign(self.spec.to_config()).run(
                progress=progress,
                checkpoint_path=self.spec.checkpoint,
                results_dir=self.spec.store_url,
                backend=self.spec.backend,
                distributed=self.spec.distributed_settings(),
                cancel=self._cancel,
            )
        except CampaignCancelledError:
            with self._lock:
                self._state = "cancelled"
            self._done.set()
            raise
        except BaseException as error:
            with self._lock:
                self._state = "failed"
                self._error = error
            self._done.set()
            raise
        with self._lock:
            self._state = "complete"
            self._result = result
        self._done.set()
        return result

    def start(self) -> "CampaignHandle":
        """Execute the spec on a background daemon thread (service path)."""
        thread = threading.Thread(
            target=self._run_in_background,
            name=f"campaign-{self.spec.campaign_id()}",
            daemon=True,
        )
        with self._lock:
            if self._thread is not None:
                return self
            self._thread = thread
        # Started via the local name: re-reading self._thread here would be
        # an off-lock read racing a concurrent start()'s publication.
        thread.start()
        return self

    def _run_in_background(self) -> None:
        try:
            self.run()
        # mutiny-lint: disable=MUT005 -- run() recorded the terminal state and self._error before re-raising; this barrier only keeps the daemon thread from tracebacking
        except BaseException:
            # Terminal state and error were recorded by run(); a background
            # campaign must not take the service thread down with it.
            pass

    def cancel(self) -> None:
        """Request cooperative cancellation (next batch / poll round)."""
        self._cancel.set()

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the run reaches a terminal state; ``True`` iff it did."""
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> CampaignResult:
        """The completed run's result (re-raises its error if it failed)."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"campaign {self.spec.campaign_id()} still {self.state} "
                f"after {timeout}s"
            )
        with self._lock:
            if self._error is not None:
                raise self._error
            if self._result is None:
                raise CampaignCancelledError(
                    f"campaign {self.spec.campaign_id()} was cancelled"
                )
            return self._result

    @property
    def error(self) -> Optional[BaseException]:
        with self._lock:
            return self._error

    # ---------------------------------------------------------------- polling

    def poll(self) -> dict:
        """Live progress, computed from the shard store — not from in-memory
        counters — so the numbers survive a service restart unchanged."""
        info: dict = {
            "state": self.state,
            "cancel_requested": self._cancel.is_set(),
        }
        error = self.error
        if error is not None:
            info["error"] = str(error)
        if self.spec.store_url:
            info.update(store_progress(self.spec.store_url))
        return info


def store_progress(store_url: str) -> dict:
    """Completed/total/stored-record counts of a store, tolerating a store
    that no worker has created yet (everything ``0``/``None`` then)."""
    store = ShardedResultStore(store_url)
    try:
        manifest = store.manifest()
    except (TransportKeyError, KeyError):
        return {"completed": 0, "total": None, "stored_records": 0}
    return {
        "completed": store.record_count(),
        "total": manifest.get("total"),
        "stored_records": store.stored_record_count(),
    }
