"""Orchestration workloads (the kbench role).

Each workload performs cluster-user operations on the service application to
generate orchestration activity, with the parameters of the paper (§V-A):

* ``deploy`` — create three Deployments with two replicas each;
* ``scale-up`` — scale two existing Deployments from two replicas to three,
  then four, then five, with ten seconds between steps;
* ``failover`` — with three two-replica Deployments running, apply a
  NoExecute taint to one worker node so its pods are evicted and respawned.

The driver records which of its requests returned an error from the
Apiserver — the data behind the user-unawareness analysis (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.apiserver.client import APIClient
from repro.apiserver.errors import ApiError
from repro.sim.engine import Simulation
from repro.workloads.scenario import ServiceApplication


class WorkloadKind(Enum):
    """The three orchestration workloads of the paper."""

    DEPLOY = "deploy"
    SCALE_UP = "scale"
    FAILOVER = "failover"


#: Seconds between the scale-up steps (paper: 10 s).
SCALE_STEP_INTERVAL = 10.0

#: How long kbench waits for a request to be visible before giving up.
REQUEST_TIMEOUT = 40.0


@dataclass
class UserRequest:
    """One cluster-user operation issued by the workload driver."""

    time: float
    operation: str
    target: str
    error: Optional[str] = None


class KbenchDriver:
    """Drives one orchestration workload as the cluster user."""

    def __init__(
        self,
        sim: Simulation,
        client: APIClient,
        application: ServiceApplication,
        kind: WorkloadKind,
        taint_node: Optional[str] = None,
    ):
        self.sim = sim
        self.client = client
        self.application = application
        self.kind = kind
        self.taint_node = taint_node
        self.requests: list[UserRequest] = []
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # ------------------------------------------------------------------ setup

    def setup_scenario(self) -> None:
        """Create the objects that must exist before the injection is armed."""
        self.application.create_shared_objects()
        if self.kind == WorkloadKind.DEPLOY:
            return
        if self.kind == WorkloadKind.SCALE_UP:
            self.application.create_deployments(count=2, replicas=2)
        elif self.kind == WorkloadKind.FAILOVER:
            self.application.create_deployments(count=3, replicas=2)

    # -------------------------------------------------------------- execution

    def start(self) -> None:
        """Schedule the workload operations on the simulation timeline."""
        self.started_at = self.sim.now
        if self.kind == WorkloadKind.DEPLOY:
            self._schedule_deploy()
        elif self.kind == WorkloadKind.SCALE_UP:
            self._schedule_scale_up()
        elif self.kind == WorkloadKind.FAILOVER:
            self._schedule_failover()

    def _schedule_deploy(self) -> None:
        for index in range(3):
            name = f"webapp-{index + 1}"
            self.sim.call_after(
                1.0 + index * 2.0,
                lambda name=name: self._create_deployment(name, replicas=2),
                label=f"kbench-deploy-{name}",
            )
        self.finished_at = self.started_at + 1.0 + 2 * 2.0

    def _schedule_scale_up(self) -> None:
        steps = [3, 4, 5]
        delay = 1.0
        for replicas in steps:
            for name in list(self.application.deployment_names):
                self.sim.call_after(
                    delay,
                    lambda name=name, replicas=replicas: self._scale(name, replicas),
                    label=f"kbench-scale-{name}-{replicas}",
                )
            delay += SCALE_STEP_INTERVAL
        self.finished_at = self.started_at + delay

    def _schedule_failover(self) -> None:
        self.sim.call_after(5.0, self._apply_taint, label="kbench-failover-taint")
        self.finished_at = self.started_at + 5.0

    # ------------------------------------------------------------- operations

    def _create_deployment(self, name: str, replicas: int) -> None:
        request = UserRequest(time=self.sim.now, operation="create-deployment", target=name)
        try:
            self.client.create("Deployment", self.application.deployment_manifest(name, replicas))
            self.application.deployment_names.append(name)
        except ApiError as exc:
            request.error = f"{exc.reason}: {exc}"
        self.requests.append(request)

    def _scale(self, name: str, replicas: int) -> None:
        request = UserRequest(
            time=self.sim.now, operation="scale-deployment", target=f"{name}={replicas}"
        )
        try:
            deployment = self.client.get(
                "Deployment", name, namespace=self.application.namespace
            )
            deployment["spec"]["replicas"] = replicas
            self.client.update("Deployment", deployment)
        except ApiError as exc:
            request.error = f"{exc.reason}: {exc}"
        self.requests.append(request)

    def _apply_taint(self) -> None:
        node_name = self.taint_node
        request = UserRequest(time=self.sim.now, operation="taint-node", target=str(node_name))
        if not node_name:
            request.error = "BadRequest: no node selected for failover"
            self.requests.append(request)
            return
        try:
            node = self.client.get("Node", node_name, namespace=None)
            taints = node.setdefault("spec", {}).setdefault("taints", [])
            if isinstance(taints, list):
                taints.append(
                    {"key": "node.kubernetes.io/unreachable", "effect": "NoExecute", "value": ""}
                )
            self.client.update("Node", node)
        except ApiError as exc:
            request.error = f"{exc.reason}: {exc}"
        self.requests.append(request)

    # ------------------------------------------------------------------ stats

    def failed_requests(self) -> list[UserRequest]:
        """Requests for which the cluster user received an error."""
        return [request for request in self.requests if request.error]

    def expected_total_replicas(self) -> int:
        """Total application replicas the user expects once the workload settles."""
        if self.kind == WorkloadKind.DEPLOY:
            return 3 * 2
        if self.kind == WorkloadKind.SCALE_UP:
            return 2 * 5
        return 3 * 2
