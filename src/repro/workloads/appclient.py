"""Application client.

Sends a fixed-rate request stream to the service application through the
virtual cluster network and records one latency sample per request.  Failed
requests are recorded with latency padded to zero, exactly as the paper does
before computing the mean-absolute-error of a run against the golden
baseline (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.network.network import ClusterNetwork
from repro.sim.engine import Simulation
from repro.workloads.scenario import SERVICE_NAME

#: Paper parameters: 20 requests/second for 30 seconds.
REQUEST_RATE = 20.0
CLIENT_DURATION = 30.0

#: A request slower than this is reported as a timeout error.
REQUEST_TIMEOUT = 5.0


@dataclass
class RequestSample:
    """One request as observed by the application client."""

    time: float
    latency: float
    success: bool
    error: Optional[str] = None


class ApplicationClient:
    """Fixed-rate client of the service application."""

    def __init__(
        self,
        sim: Simulation,
        network: ClusterNetwork,
        service_name: str = SERVICE_NAME,
        namespace: str = "default",
        rate: float = REQUEST_RATE,
        duration: float = CLIENT_DURATION,
        expected_backends: int = 6,
    ):
        self.sim = sim
        self.network = network
        self.service_name = service_name
        self.namespace = namespace
        self.rate = rate
        self.duration = duration
        self.expected_backends = expected_backends
        self.samples: list[RequestSample] = []
        self._started = False

    def start(self) -> None:
        """Schedule the whole request stream on the simulation timeline."""
        if self._started:
            raise RuntimeError("application client already started")
        self._started = True
        interval = 1.0 / self.rate
        total = int(self.rate * self.duration)
        for index in range(total):
            self.sim.call_after(
                index * interval, self._send_one, label=f"app-client-{index}"
            )

    def _send_one(self) -> None:
        outcome = self.network.request(
            self.service_name,
            namespace=self.namespace,
            use_dns=False,
            expected_backends=self.expected_backends,
        )
        if outcome.success and outcome.latency > REQUEST_TIMEOUT:
            sample = RequestSample(
                time=self.sim.now, latency=0.0, success=False, error="timeout"
            )
        elif outcome.success:
            sample = RequestSample(time=self.sim.now, latency=outcome.latency, success=True)
        else:
            sample = RequestSample(
                time=self.sim.now, latency=0.0, success=False, error=outcome.error
            )
        self.samples.append(sample)

    # ------------------------------------------------------------------ stats

    def time_series(self) -> list[float]:
        """Latency time series ordered by send time (failed requests padded to 0)."""
        return [sample.latency for sample in sorted(self.samples, key=lambda item: item.time)]

    def error_samples(self) -> list[RequestSample]:
        """Requests that failed."""
        return [sample for sample in self.samples if not sample.success]

    def error_burst_count(self) -> int:
        """Number of distinct bursts of consecutive errors (for IA classification)."""
        bursts = 0
        in_burst = False
        for sample in sorted(self.samples, key=lambda item: item.time):
            if not sample.success:
                if not in_burst:
                    bursts += 1
                    in_burst = True
            else:
                in_burst = False
        return bursts

    def availability(self) -> float:
        """Fraction of successful requests."""
        if not self.samples:
            return 0.0
        return sum(1 for sample in self.samples if sample.success) / len(self.samples)
