"""Service application deployed by the workloads.

The paper's service application is a stateless Flask web server that reads a
random seed from a Volume at startup, is fronted by a Service, and has CPU
and memory requests, limits and default priority.  The scenario helper
creates (and tears down) the pieces that must exist *before* the injected
workload runs: the ConfigMap backing the seed volume, the Service, and —
for the scale-up and failover workloads — the Deployments themselves.
"""

from __future__ import annotations

from typing import Optional

from repro.apiserver.client import APIClient
from repro.apiserver.errors import ApiError
from repro.objects.kinds import make_configmap, make_container, make_deployment, make_service

#: Label shared by every service-application pod; the Service selects on it.
APP_LABEL = {"tier": "webapp"}

#: Name of the Service fronting the application.
SERVICE_NAME = "webapp"

#: Name of the ConfigMap providing the random seed volume.
SEED_CONFIGMAP = "webapp-seed"


class ServiceApplication:
    """Creates and manages the benchmark service application."""

    def __init__(self, client: APIClient, namespace: str = "default"):
        self.client = client
        self.namespace = namespace
        self.deployment_names: list[str] = []

    # ------------------------------------------------------------------ setup

    def create_shared_objects(self) -> None:
        """Create the ConfigMap and Service the application depends on."""
        self.client.create(
            "ConfigMap",
            make_configmap(SEED_CONFIGMAP, namespace=self.namespace, data={"seed": "42"}),
        )
        self.client.create(
            "Service",
            make_service(
                SERVICE_NAME,
                namespace=self.namespace,
                selector=dict(APP_LABEL),
                port=80,
                target_port=8080,
                cluster_ip="10.96.10.10",
            ),
        )

    def deployment_manifest(self, name: str, replicas: int) -> dict:
        """Build one service-application Deployment manifest."""
        labels = dict(APP_LABEL)
        labels["app"] = name
        containers = [
            make_container(
                name="webapp",
                image="repro/flask-app:1.0",
                command=["python", "app.py"],
                cpu_request="500m",
                memory_request="256Mi",
                cpu_limit="1",
                memory_limit="512Mi",
                port=8080,
            )
        ]
        deployment = make_deployment(
            name,
            namespace=self.namespace,
            replicas=replicas,
            labels=labels,
            containers=containers,
            max_unavailable=0,
            max_surge=1,
        )
        deployment["spec"]["template"]["spec"]["volumes"] = [
            {"name": "seed", "configMap": {"name": SEED_CONFIGMAP}}
        ]
        return deployment

    def create_deployment(self, name: str, replicas: int) -> dict:
        """Create one application Deployment and remember its name."""
        deployment = self.client.create("Deployment", self.deployment_manifest(name, replicas))
        self.deployment_names.append(name)
        return deployment

    def create_deployments(self, count: int, replicas: int, prefix: str = "webapp") -> list[dict]:
        """Create ``count`` Deployments with ``replicas`` replicas each."""
        return [
            self.create_deployment(f"{prefix}-{index + 1}", replicas) for index in range(count)
        ]

    # ------------------------------------------------------------------ state

    def expected_replicas(self) -> int:
        """Total replicas currently requested across the application Deployments."""
        total = 0
        for name in self.deployment_names:
            try:
                deployment = self.client.get("Deployment", name, namespace=self.namespace)
            except ApiError:
                continue
            replicas = deployment.get("spec", {}).get("replicas", 0)
            if isinstance(replicas, int) and not isinstance(replicas, bool):
                total += replicas
        return total

    def scale(self, name: str, replicas: int) -> Optional[dict]:
        """Scale one Deployment (returns the updated object, or None on error)."""
        try:
            deployment = self.client.get("Deployment", name, namespace=self.namespace)
            deployment["spec"]["replicas"] = replicas
            return self.client.update("Deployment", deployment)
        except ApiError:
            return None
