"""Orchestration workloads and the application client.

The workloads replicate the paper's kbench-driven benchmark (§IV-B):
*deploy* creates new Deployments, *scale-up* grows existing Deployments in
steps, and *failover* simulates a node failure through a NoExecute taint.
The application client sends a fixed-rate request stream to the service
application and records per-request latencies — the raw material of the
client-level failure classification.
"""

from repro.workloads.appclient import ApplicationClient, RequestSample
from repro.workloads.scenario import ServiceApplication
from repro.workloads.workload import KbenchDriver, WorkloadKind

__all__ = [
    "ApplicationClient",
    "KbenchDriver",
    "RequestSample",
    "ServiceApplication",
    "WorkloadKind",
]
