"""Node lifecycle controller.

Tracks node health through the heartbeat Leases the kubelets renew, marks
nodes NotReady when heartbeats stop, and evicts the pods of nodes that stay
unhealthy past the eviction timeout.  It also implements the two behaviours
the paper's outage analysis hinges on:

* **Full disruption mode** — when *every* node looks unhealthy the controller
  stops evicting, because the problem is more likely in the heartbeat path
  (e.g. the Apiserver) than in all nodes at once.  The GKE outage of
  Figure 2 is what happens on a managed platform without this guard.
* **NoExecute taints** — pods that do not tolerate a node's NoExecute taint
  are evicted, which is how the failover workload simulates a node failure.
"""

from __future__ import annotations

from repro.apiserver.errors import ApiError
from repro.controllers.base import Controller
from repro.controllers.daemonset import tolerates_taints
from repro.objects.meta import controller_owner

#: Seconds without a heartbeat before a node is marked NotReady
#: (kube-controller-manager's default node-monitor-grace-period).
NODE_GRACE_PERIOD = 40.0

#: Seconds a node may stay NotReady before its pods are evicted.  The
#: Kubernetes default is 300 s; the simulated clusters use a shorter value so
#: that eviction storms fit inside an experiment window.
POD_EVICTION_TIMEOUT = 60.0


class NodeLifecycleController(Controller):
    """Mark unhealthy nodes and evict their pods."""

    name = "node-lifecycle"

    def __init__(
        self,
        sim,
        client,
        grace_period: float = NODE_GRACE_PERIOD,
        eviction_timeout: float = POD_EVICTION_TIMEOUT,
    ):
        super().__init__(sim, client)
        self.grace_period = grace_period
        self.eviction_timeout = eviction_timeout
        self._not_ready_since: dict[str, float] = {}
        self.evictions = 0
        self.full_disruption_mode = False

    def reconcile_all(self) -> None:
        nodes = self.client.list("Node")
        if not nodes:
            return
        # Leases and pods are only read (evictions go through the API);
        # nodes are copied because ``_set_ready_condition`` mutates them.
        leases = {
            lease.get("metadata", {}).get("name"): lease
            for lease in self.client.list("Lease", namespace="kube-node-lease", copy=False)
            if isinstance(lease.get("metadata"), dict)
        }
        pods = self.client.list("Pod", copy=False)

        unhealthy = []
        for node in nodes:
            healthy = self._node_heartbeat_fresh(node, leases)
            self._set_ready_condition(node, healthy)
            name = node.get("metadata", {}).get("name")
            if not isinstance(name, str):
                continue
            if healthy:
                self._not_ready_since.pop(name, None)
            else:
                self._not_ready_since.setdefault(name, self.sim.now)
                unhealthy.append(node)

        # Full disruption mode: every node unhealthy → do not evict anything.
        self.full_disruption_mode = bool(nodes) and len(unhealthy) == len(nodes)
        if not self.full_disruption_mode:
            for node in unhealthy:
                name = node.get("metadata", {}).get("name")
                since = self._not_ready_since.get(name, self.sim.now)
                if self.sim.now - since >= self.eviction_timeout:
                    self._evict_node_pods(name, pods)

        # NoExecute taint manager: evict pods that do not tolerate the taints
        # of the node they run on.
        self._enforce_noexecute_taints(nodes, pods)

    # ------------------------------------------------------------------ logic

    def _node_heartbeat_fresh(self, node: dict, leases: dict) -> bool:
        name = node.get("metadata", {}).get("name")
        lease = leases.get(name)
        if lease is None:
            # Fall back to the Ready condition's heartbeat timestamp.
            conditions = node.get("status", {}).get("conditions", [])
            if isinstance(conditions, list):
                for condition in conditions:
                    if isinstance(condition, dict) and condition.get("type") == "Ready":
                        heartbeat = condition.get("lastHeartbeatTime")
                        if isinstance(heartbeat, (int, float)) and not isinstance(heartbeat, bool):
                            return self.sim.now - heartbeat <= self.grace_period
            return False
        spec = lease.get("spec", {})
        renew = spec.get("renewTime") if isinstance(spec, dict) else None
        if not isinstance(renew, (int, float)) or isinstance(renew, bool):
            return False
        return self.sim.now - renew <= self.grace_period

    def _set_ready_condition(self, node: dict, healthy: bool) -> None:
        status = node.get("status")
        if not isinstance(status, dict):
            return
        conditions = status.get("conditions")
        if not isinstance(conditions, list):
            conditions = []
            status["conditions"] = conditions
        ready = None
        for condition in conditions:
            if isinstance(condition, dict) and condition.get("type") == "Ready":
                ready = condition
                break
        if ready is None:
            ready = {"type": "Ready", "status": "Unknown", "lastHeartbeatTime": 0.0}
            conditions.append(ready)
        new_value = "True" if healthy else "False"
        if ready.get("status") == new_value:
            return
        ready["status"] = new_value
        self.actions += 1
        try:
            self.client.update_status("Node", node)
        except ApiError:
            pass

    def _evict_node_pods(self, node_name: str, pods: list[dict]) -> None:
        for pod in pods:
            spec = pod.get("spec", {})
            if not isinstance(spec, dict) or spec.get("nodeName") != node_name:
                continue
            owner = controller_owner(pod)
            if owner is not None and owner.get("kind") == "DaemonSet":
                # DaemonSet pods are not evicted from unhealthy nodes.
                continue
            metadata = pod.get("metadata", {})
            self.evictions += 1
            self.actions += 1
            try:
                self.client.delete(
                    "Pod", metadata.get("name", ""), namespace=metadata.get("namespace", "default")
                )
            except ApiError:
                continue

    def _enforce_noexecute_taints(self, nodes: list[dict], pods: list[dict]) -> None:
        taints_by_node = {}
        for node in nodes:
            name = node.get("metadata", {}).get("name")
            taints = node.get("spec", {}).get("taints", [])
            if isinstance(name, str) and isinstance(taints, list):
                noexecute = [
                    taint
                    for taint in taints
                    if isinstance(taint, dict) and taint.get("effect") == "NoExecute"
                ]
                if noexecute:
                    taints_by_node[name] = noexecute
        if not taints_by_node:
            return
        for pod in pods:
            spec = pod.get("spec", {})
            if not isinstance(spec, dict):
                continue
            node_name = spec.get("nodeName")
            if node_name not in taints_by_node:
                continue
            if tolerates_taints(spec, taints_by_node[node_name]):
                continue
            metadata = pod.get("metadata", {})
            self.evictions += 1
            self.actions += 1
            try:
                self.client.delete(
                    "Pod", metadata.get("name", ""), namespace=metadata.get("namespace", "default")
                )
            except ApiError:
                continue
