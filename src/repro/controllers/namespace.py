"""Namespace controller.

Deleting a Namespace deletes everything inside it.  The paper's FFDA lists
erroneous namespace deletion among the human mistakes that caused real-world
cluster outages; the controller implements the cascade so that those
scenarios (and the optional "validate namespace deletion" mitigation) can be
reproduced.
"""

from __future__ import annotations

from repro.apiserver.errors import ApiError
from repro.controllers.base import Controller
from repro.objects.kinds import KINDS

#: Namespaces that always exist and are never garbage collected.
SYSTEM_NAMESPACES = ("default", "kube-system", "kube-node-lease", "kube-public")


class NamespaceController(Controller):
    """Delete the contents of namespaces that no longer exist."""

    name = "namespace"

    def __init__(self, sim, client):
        super().__init__(sim, client)
        self.cascaded_deletes = 0

    def reconcile_all(self) -> None:
        namespaces = {
            namespace.get("metadata", {}).get("name")
            for namespace in self.client.list("Namespace", copy=False)
            if isinstance(namespace.get("metadata"), dict)
        }
        namespaces.update(SYSTEM_NAMESPACES)

        for kind, info in KINDS.items():
            if not info["namespaced"] or kind == "Event":
                continue
            try:
                objects = self.client.list(kind, copy=False)
            except ApiError:
                continue
            for obj in objects:
                metadata = obj.get("metadata", {})
                if not isinstance(metadata, dict):
                    continue
                namespace = metadata.get("namespace")
                if namespace in namespaces or not isinstance(namespace, str):
                    continue
                self.cascaded_deletes += 1
                self.actions += 1
                try:
                    self.client.delete(kind, metadata.get("name", ""), namespace=namespace)
                except ApiError:
                    continue
