"""DaemonSet controller.

A DaemonSet keeps exactly one Pod per eligible Node.  The networking manager
(flannel in the paper's testbed) and other node agents are DaemonSets, and
their pods run with system-node-critical priority.  That combination is what
turns a corrupted selector or template label into the paper's flagship
failure: the controller stops recognising its pods, spawns replacements in a
loop, and the high-priority replacements preempt every application pod.
"""

from __future__ import annotations

from repro.apiserver.errors import ApiError
from repro.controllers.base import Controller
from repro.controllers.replicaset import pod_is_active, pod_is_ready
from repro.objects.kinds import PRIORITY_SYSTEM_NODE_CRITICAL, make_pod
from repro.objects.meta import (
    controller_owner,
    deep_copy,
    make_owner_reference,
    object_key,
    owner_uids,
)
from repro.objects.selectors import matches_selector

#: Per-sync creation cap per DaemonSet (slow-start batch), mirroring
#: :data:`repro.controllers.replicaset.BURST_CREATES`.
BURST_CREATES = 10


def toleration_matches(toleration: dict, taint: dict) -> bool:
    """True if a single toleration tolerates a single taint."""
    if not isinstance(toleration, dict) or not isinstance(taint, dict):
        return False
    if toleration.get("operator") == "Exists" and "key" not in toleration:
        return True
    if toleration.get("key") != taint.get("key"):
        return False
    effect = toleration.get("effect")
    if effect and effect != taint.get("effect"):
        return False
    if toleration.get("operator") == "Exists":
        return True
    return toleration.get("value") == taint.get("value")


def tolerates_taints(pod_spec: dict, taints: list) -> bool:
    """True if the pod spec tolerates every NoSchedule/NoExecute taint in the list."""
    if not isinstance(taints, list) or not taints:
        return True
    tolerations = pod_spec.get("tolerations", []) if isinstance(pod_spec, dict) else []
    if not isinstance(tolerations, list):
        tolerations = []
    for taint in taints:
        if not isinstance(taint, dict):
            continue
        if taint.get("effect") not in ("NoSchedule", "NoExecute"):
            continue
        if not any(toleration_matches(toleration, taint) for toleration in tolerations):
            return False
    return True


class DaemonSetController(Controller):
    """Reconcile DaemonSets: one matching Pod per eligible Node."""

    name = "daemonset"

    def __init__(self, sim, client):
        super().__init__(sim, client)
        self._suffix_counter = 0
        self.pods_created = 0
        self.pods_deleted = 0

    def reconcile_all(self) -> None:
        # Read-only refs (informer contract); the status-update path copies
        # before it mutates.
        daemonsets = self.client.list("DaemonSet", copy=False)
        nodes = self.client.list("Node", copy=False)
        pods = self.client.list("Pod", copy=False)
        for daemonset in daemonsets:
            key = object_key(daemonset)
            if self.key_backoff_active(key):
                continue
            try:
                self._reconcile_one(daemonset, nodes, pods)
                self.record_key_success(key)
            except ApiError:
                self.record_key_failure(key)

    # ------------------------------------------------------------------ logic

    def _reconcile_one(self, daemonset: dict, nodes: list[dict], all_pods: list[dict]) -> None:
        metadata = daemonset.get("metadata", {})
        spec = daemonset.get("spec", {})
        if not isinstance(metadata, dict) or not isinstance(spec, dict):
            return
        namespace = metadata.get("namespace", "kube-system")
        ds_uid = metadata.get("uid")
        selector = spec.get("selector")
        template = spec.get("template", {})
        template_spec = template.get("spec", {}) if isinstance(template, dict) else {}

        eligible = {
            node["metadata"]["name"]
            for node in nodes
            if isinstance(node.get("metadata"), dict)
            and isinstance(node.get("spec"), dict)
            and not node["spec"].get("unschedulable")
            and tolerates_taints(template_spec, node["spec"].get("taints", []))
        }

        namespace_pods = [
            pod
            for pod in all_pods
            if isinstance(pod.get("metadata"), dict)
            and pod["metadata"].get("namespace") == namespace
        ]
        managed = [
            pod
            for pod in namespace_pods
            if matches_selector(selector, pod)
            and (ds_uid in owner_uids(pod) or controller_owner(pod) is None)
        ]

        pods_by_node: dict[str, list[dict]] = {}
        for pod in managed:
            node_name = pod.get("spec", {}).get("nodeName")
            if isinstance(node_name, str):
                pods_by_node.setdefault(node_name, []).append(pod)

        created = 0
        ready_count = 0
        scheduled_count = 0
        for node_name in sorted(eligible):
            node_pods = [pod for pod in pods_by_node.get(node_name, []) if pod_is_active(pod)]
            if not node_pods:
                if created < BURST_CREATES:
                    self._create_pod(daemonset, node_name)
                    created += 1
                continue
            scheduled_count += 1
            ready_count += sum(1 for pod in node_pods if pod_is_ready(pod))
            for extra in node_pods[1:]:
                self._delete_pod(extra)

        # Pods on nodes that are no longer eligible are removed.
        for node_name, node_pods in pods_by_node.items():
            if node_name in eligible:
                continue
            for pod in node_pods:
                if pod_is_active(pod):
                    self._delete_pod(pod)

        self._update_status(daemonset, len(eligible), scheduled_count, ready_count)

    def _create_pod(self, daemonset: dict, node_name: str) -> None:
        metadata = daemonset["metadata"]
        spec = daemonset["spec"]
        template = spec.get("template", {})
        template_meta = template.get("metadata", {}) if isinstance(template, dict) else {}
        template_spec = template.get("spec", {}) if isinstance(template, dict) else {}
        labels = template_meta.get("labels", {}) if isinstance(template_meta, dict) else {}
        self._suffix_counter += 1
        pod = make_pod(
            name=f"{metadata.get('name', 'daemonset')}-{node_name}-{self._suffix_counter:05d}",
            namespace=metadata.get("namespace", "kube-system"),
            labels=labels if isinstance(labels, dict) else {},
            containers=template_spec.get("containers") if isinstance(template_spec, dict) else None,
            node_name=node_name,
            priority=self.safe_int(
                template_spec.get("priority") if isinstance(template_spec, dict) else None,
                PRIORITY_SYSTEM_NODE_CRITICAL,
            ),
            tolerations=template_spec.get("tolerations") if isinstance(template_spec, dict) else None,
            owner_references=[make_owner_reference(daemonset)],
        )
        self.actions += 1
        self.pods_created += 1
        self.client.create("Pod", pod)

    def _delete_pod(self, pod: dict) -> None:
        metadata = pod.get("metadata", {})
        self.actions += 1
        self.pods_deleted += 1
        try:
            self.client.delete(
                "Pod", metadata.get("name", ""), namespace=metadata.get("namespace", "kube-system")
            )
        except ApiError:
            pass

    def _update_status(self, daemonset, desired, scheduled, ready) -> None:
        status = daemonset.get("status", {})
        if not isinstance(status, dict):
            return
        new_status = {
            "desiredNumberScheduled": desired,
            "currentNumberScheduled": scheduled,
            "numberReady": ready,
            "observedGeneration": daemonset.get("metadata", {}).get("generation", 1),
        }
        if all(status.get(key) == value for key, value in new_status.items()):
            return
        daemonset = deep_copy(daemonset)  # listed refs are read-only
        updated = daemonset.setdefault("status", {})
        if isinstance(updated, dict):
            updated.update(new_status)
        try:
            self.client.update_status("DaemonSet", daemonset)
        except ApiError:
            pass
