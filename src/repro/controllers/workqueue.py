"""Rate-limited work queue with exponential backoff.

Controllers do not act on every watch event immediately: keys are queued,
deduplicated, and retried with exponential backoff when reconciliation fails.
The backoff is one of the circuit breakers the paper lists among Kubernetes'
resiliency strategies — it slows down, but does not stop, a reconciliation
loop that keeps failing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class _QueueEntry:
    key: str
    not_before: float = 0.0


class RateLimitedQueue:
    """FIFO of reconcile keys with per-key exponential backoff."""

    def __init__(self, base_delay: float = 0.1, max_delay: float = 60.0):
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._entries: list[_QueueEntry] = []
        self._queued: set[str] = set()
        self._failures: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, key: str, now: float = 0.0) -> None:
        """Enqueue a key for reconciliation (no-op if already queued)."""
        if key in self._queued:
            return
        self._queued.add(key)
        self._entries.append(_QueueEntry(key=key, not_before=now))

    def add_after_failure(self, key: str, now: float) -> float:
        """Re-enqueue a key that failed to reconcile; returns the backoff delay."""
        failures = self._failures.get(key, 0) + 1
        self._failures[key] = failures
        delay = min(self.base_delay * (2 ** (failures - 1)), self.max_delay)
        if key not in self._queued:
            self._queued.add(key)
            self._entries.append(_QueueEntry(key=key, not_before=now + delay))
        return delay

    def forget(self, key: str) -> None:
        """Clear the failure count for a key after a successful reconcile."""
        self._failures.pop(key, None)

    def pop_ready(self, now: float) -> Optional[str]:
        """Pop the first key whose backoff delay has elapsed, or None."""
        for index, entry in enumerate(self._entries):
            if entry.not_before <= now:
                del self._entries[index]
                self._queued.discard(entry.key)
                return entry.key
        return None

    def drain_ready(self, now: float, limit: Optional[int] = None) -> list[str]:
        """Pop every ready key (up to ``limit``)."""
        keys = []
        while limit is None or len(keys) < limit:
            key = self.pop_ready(now)
            if key is None:
                break
            keys.append(key)
        return keys

    def failure_count(self, key: str) -> int:
        """Number of consecutive failures recorded for ``key``."""
        return self._failures.get(key, 0)
