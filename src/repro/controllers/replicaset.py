"""ReplicaSet controller.

Ensures that the number of Pods matching a ReplicaSet's label selector equals
``spec.replicas``.  Pods are associated with their ReplicaSet through two
mechanisms the paper calls out as critical (finding F2): label selectors and
owner references.  If either side of that relationship is corrupted, the
controller stops "seeing" the pods it already created and keeps spawning
replacements — the uncontrolled-replication pattern.
"""

from __future__ import annotations

from typing import Optional

from repro.apiserver.errors import ApiError
from repro.controllers.base import Controller
from repro.objects.kinds import make_pod
from repro.objects.meta import (
    controller_owner,
    deep_copy,
    make_owner_reference,
    object_key,
    owner_uids,
)
from repro.objects.selectors import matches_selector

#: Maximum number of pods created for one ReplicaSet in a single sync pass
#: (Kubernetes' slow-start batch behaviour).  The cap bounds the per-sync
#: burst, not the total: a broken selector still grows without limit.
BURST_CREATES = 10


def pod_is_active(pod: dict) -> bool:
    """True if the pod counts toward the replica total (not finished or terminating)."""
    status = pod.get("status", {})
    metadata = pod.get("metadata", {})
    phase = status.get("phase") if isinstance(status, dict) else None
    deletion = metadata.get("deletionTimestamp") if isinstance(metadata, dict) else None
    return phase not in ("Succeeded", "Failed") and deletion is None


def pod_is_ready(pod: dict) -> bool:
    """True if the pod is running and passing its readiness checks."""
    status = pod.get("status", {})
    if not isinstance(status, dict):
        return False
    return status.get("phase") == "Running" and bool(status.get("ready"))


class ReplicaSetController(Controller):
    """Reconcile ReplicaSets against the Pods that match their selectors."""

    name = "replicaset"

    def __init__(self, sim, client, pod_name_suffix_source=None):
        super().__init__(sim, client)
        self._suffix_counter = 0
        self.pods_created = 0
        self.pods_deleted = 0

    def reconcile_all(self) -> None:
        # Read-only refs (informer contract); the adoption and status-update
        # paths copy before they mutate.
        replicasets = self.client.list("ReplicaSet", copy=False)
        pods = self.client.list("Pod", copy=False)
        for replicaset in replicasets:
            key = object_key(replicaset)
            if self.key_backoff_active(key):
                continue
            try:
                self._reconcile_one(replicaset, pods)
                self.record_key_success(key)
            except ApiError:
                self.record_key_failure(key)

    # ------------------------------------------------------------------ logic

    def _reconcile_one(self, replicaset: dict, all_pods: list[dict]) -> None:
        metadata = replicaset.get("metadata", {})
        spec = replicaset.get("spec", {})
        if not isinstance(metadata, dict) or not isinstance(spec, dict):
            return
        namespace = metadata.get("namespace", "default")
        rs_uid = metadata.get("uid")
        selector = spec.get("selector")
        desired = self.safe_int(spec.get("replicas"), default=0)

        namespace_pods = [
            pod
            for pod in all_pods
            if isinstance(pod.get("metadata"), dict)
            and pod["metadata"].get("namespace") == namespace
        ]
        managed = self._claim_pods(replicaset, rs_uid, selector, namespace_pods)
        active = [pod for pod in managed if pod_is_active(pod)]

        diff = desired - len(active)
        if diff > 0:
            for _ in range(min(diff, BURST_CREATES)):
                self._create_pod(replicaset)
        elif diff < 0:
            for victim in self._pods_to_delete(active, -diff):
                self._delete_pod(victim)

        self._update_status(replicaset, active)

    def _claim_pods(self, replicaset, rs_uid, selector, namespace_pods) -> list[dict]:
        """Return the pods this ReplicaSet manages, adopting matching orphans."""
        managed = []
        for pod in namespace_pods:
            if not matches_selector(selector, pod):
                continue
            owners = owner_uids(pod)
            if rs_uid in owners:
                managed.append(pod)
                continue
            if controller_owner(pod) is None:
                adopted = self._adopt(replicaset, pod)
                if adopted is not None:
                    managed.append(adopted)
        return managed

    def _adopt(self, replicaset: dict, pod: dict) -> Optional[dict]:
        pod = deep_copy(pod)  # listed refs are read-only
        pod["metadata"].setdefault("ownerReferences", [])
        if not isinstance(pod["metadata"]["ownerReferences"], list):
            pod["metadata"]["ownerReferences"] = []
        pod["metadata"]["ownerReferences"].append(make_owner_reference(replicaset))
        try:
            self.actions += 1
            return self.client.update("Pod", pod)
        except ApiError:
            return None

    def _create_pod(self, replicaset: dict) -> None:
        metadata = replicaset["metadata"]
        spec = replicaset["spec"]
        template = spec.get("template", {})
        template_meta = template.get("metadata", {}) if isinstance(template, dict) else {}
        template_spec = template.get("spec", {}) if isinstance(template, dict) else {}
        labels = template_meta.get("labels", {}) if isinstance(template_meta, dict) else {}
        self._suffix_counter += 1
        pod = make_pod(
            name=f"{metadata.get('name', 'replicaset')}-{self._suffix_counter:05d}",
            namespace=metadata.get("namespace", "default"),
            labels=labels if isinstance(labels, dict) else {},
            containers=template_spec.get("containers") if isinstance(template_spec, dict) else None,
            priority=self.safe_int(
                template_spec.get("priority") if isinstance(template_spec, dict) else 0
            ),
            tolerations=template_spec.get("tolerations") if isinstance(template_spec, dict) else None,
            volumes=template_spec.get("volumes") if isinstance(template_spec, dict) else None,
            owner_references=[make_owner_reference(replicaset)],
        )
        self.actions += 1
        self.pods_created += 1
        self.client.create("Pod", pod)

    def _delete_pod(self, pod: dict) -> None:
        metadata = pod.get("metadata", {})
        self.actions += 1
        self.pods_deleted += 1
        self.client.delete(
            "Pod", metadata.get("name", ""), namespace=metadata.get("namespace", "default")
        )

    @staticmethod
    def _pods_to_delete(active: list[dict], count: int) -> list[dict]:
        """Choose which pods to scale down: not-ready pods first, then newest."""

        def sort_key(pod: dict):
            ready = pod_is_ready(pod)
            created = pod.get("metadata", {}).get("creationTimestamp") or 0.0
            return (ready, -created if isinstance(created, (int, float)) else 0.0)

        return sorted(active, key=sort_key)[:count]

    def _update_status(self, replicaset: dict, active: list[dict]) -> None:
        status = replicaset.get("status", {})
        if not isinstance(status, dict):
            return
        ready = sum(1 for pod in active if pod_is_ready(pod))
        new_status = {
            "replicas": len(active),
            "readyReplicas": ready,
            "availableReplicas": ready,
            "observedGeneration": replicaset.get("metadata", {}).get("generation", 1),
        }
        if all(status.get(key) == value for key, value in new_status.items()):
            return
        replicaset = deep_copy(replicaset)  # listed refs are read-only
        updated = replicaset.setdefault("status", {})
        if isinstance(updated, dict):
            updated.update(new_status)
        try:
            self.client.update_status("ReplicaSet", replicaset)
        except ApiError:
            pass
