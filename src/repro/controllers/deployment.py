"""Deployment controller.

A Deployment manages ReplicaSets: it keeps one ReplicaSet per pod-template
revision and moves replicas from old ReplicaSets to the newest one within the
``maxUnavailable`` / ``maxSurge`` bounds of its rolling-update strategy.
Those bounds are one of the resiliency strategies the paper lists: they limit
the blast radius of a bad template update.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.apiserver.errors import ApiError
from repro.controllers.base import Controller
from repro.objects.kinds import make_replicaset
from repro.objects.meta import make_owner_reference, object_key, owner_uids


def template_hash(template: dict) -> str:
    """Return a stable short hash of a pod template (labels + spec)."""
    try:
        payload = json.dumps(template, sort_keys=True, default=str)
    except (TypeError, ValueError):
        payload = repr(template)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:10]


class DeploymentController(Controller):
    """Reconcile Deployments by managing their ReplicaSets."""

    name = "deployment"

    def reconcile_all(self) -> None:
        deployments = self.client.list("Deployment")
        replicasets = self.client.list("ReplicaSet")
        for deployment in deployments:
            key = object_key(deployment)
            if self.key_backoff_active(key):
                continue
            try:
                self._reconcile_one(deployment, replicasets)
                self.record_key_success(key)
            except ApiError:
                self.record_key_failure(key)

    # ------------------------------------------------------------------ logic

    def _reconcile_one(self, deployment: dict, all_replicasets: list[dict]) -> None:
        metadata = deployment.get("metadata", {})
        spec = deployment.get("spec", {})
        if not isinstance(metadata, dict) or not isinstance(spec, dict):
            return
        namespace = metadata.get("namespace", "default")
        deploy_uid = metadata.get("uid")
        desired = self.safe_int(spec.get("replicas"), default=0)
        template = spec.get("template", {})
        current_hash = template_hash(template if isinstance(template, dict) else {})

        owned = [
            replicaset
            for replicaset in all_replicasets
            if isinstance(replicaset.get("metadata"), dict)
            and replicaset["metadata"].get("namespace") == namespace
            and deploy_uid in owner_uids(replicaset)
        ]
        new_rs = self._find_new_replicaset(owned, current_hash)
        old_rs = [replicaset for replicaset in owned if replicaset is not new_rs]

        if new_rs is None:
            new_rs = self._create_replicaset(deployment, current_hash, desired if not owned else 0)
            if new_rs is None:
                return

        strategy = spec.get("strategy", {}) if isinstance(spec.get("strategy"), dict) else {}
        rolling = strategy.get("rollingUpdate", {}) if isinstance(strategy, dict) else {}
        max_surge = self.safe_int(rolling.get("maxSurge") if isinstance(rolling, dict) else 1, 1)
        max_unavailable = self.safe_int(
            rolling.get("maxUnavailable") if isinstance(rolling, dict) else 0, 0
        )

        self._scale(deployment, new_rs, old_rs, desired, max_surge, max_unavailable)
        self._update_status(deployment, new_rs, old_rs)

    @staticmethod
    def _find_new_replicaset(owned: list[dict], current_hash: str) -> Optional[dict]:
        for replicaset in owned:
            metadata = replicaset.get("metadata", {})
            labels = metadata.get("labels", {}) if isinstance(metadata, dict) else {}
            if isinstance(labels, dict) and labels.get("pod-template-hash") == current_hash:
                return replicaset
        return None

    def _create_replicaset(self, deployment: dict, current_hash: str, replicas: int) -> Optional[dict]:
        metadata = deployment["metadata"]
        spec = deployment["spec"]
        template = spec.get("template", {})
        selector = spec.get("selector", {})
        rs_labels = dict(metadata.get("labels", {})) if isinstance(metadata.get("labels"), dict) else {}
        rs_labels["pod-template-hash"] = current_hash
        replicaset = make_replicaset(
            name=f"{metadata.get('name', 'deployment')}-{current_hash}",
            namespace=metadata.get("namespace", "default"),
            replicas=replicas,
            labels=rs_labels,
            selector=selector if isinstance(selector, dict) else None,
            template=template if isinstance(template, dict) else None,
            owner_references=[make_owner_reference(deployment)],
        )
        # The ReplicaSet's own labels carry the template hash, but its selector
        # and template are taken verbatim from the Deployment spec.
        self.actions += 1
        try:
            return self.client.create("ReplicaSet", replicaset)
        except ApiError:
            return None

    def _scale(self, deployment, new_rs, old_rs, desired, max_surge, max_unavailable) -> None:
        new_spec = new_rs.get("spec", {})
        if not isinstance(new_spec, dict):
            return
        old_total = sum(
            self.safe_int(rs.get("spec", {}).get("replicas"), 0)
            for rs in old_rs
            if isinstance(rs.get("spec"), dict)
        )
        current_new = self.safe_int(new_spec.get("replicas"), 0)

        if not old_rs or old_total == 0:
            target_new = desired
        else:
            # Rolling update: the total may exceed the desired count by at
            # most maxSurge, and the number of ready replicas may fall below
            # the desired count by at most maxUnavailable.
            allowed_total = desired + max_surge
            target_new = min(desired, max(current_new, allowed_total - old_total))

        if target_new != current_new:
            new_spec["replicas"] = target_new
            self.actions += 1
            self.client.update("ReplicaSet", new_rs)

        if old_rs:
            ready_new = self.safe_int(new_rs.get("status", {}).get("readyReplicas"), 0)
            ready_old = sum(
                self.safe_int(rs.get("status", {}).get("readyReplicas"), 0) for rs in old_rs
            )
            # Old replicas may be removed as long as the total number of ready
            # replicas stays at or above (desired - maxUnavailable).
            min_available = max(0, desired - max_unavailable)
            budget = min(old_total, max(0, ready_new + ready_old - min_available))
            for replicaset in sorted(old_rs, key=lambda rs: object_key(rs)):
                if budget <= 0:
                    break
                spec_old = replicaset.get("spec", {})
                if not isinstance(spec_old, dict):
                    continue
                current = self.safe_int(spec_old.get("replicas"), 0)
                if current == 0:
                    continue
                reduce_by = min(current, budget)
                spec_old["replicas"] = current - reduce_by
                budget -= reduce_by
                self.actions += 1
                try:
                    self.client.update("ReplicaSet", replicaset)
                except ApiError:
                    continue

    def _update_status(self, deployment, new_rs, old_rs) -> None:
        status = deployment.setdefault("status", {})
        if not isinstance(status, dict):
            return
        all_rs = [new_rs] + list(old_rs)
        replicas = sum(self.safe_int(rs.get("status", {}).get("replicas"), 0) for rs in all_rs)
        ready = sum(self.safe_int(rs.get("status", {}).get("readyReplicas"), 0) for rs in all_rs)
        new_status = {
            "replicas": replicas,
            "readyReplicas": ready,
            "availableReplicas": ready,
            "updatedReplicas": self.safe_int(new_rs.get("status", {}).get("replicas"), 0),
            "observedGeneration": deployment.get("metadata", {}).get("generation", 1),
        }
        if all(status.get(key) == value for key, value in new_status.items()):
            return
        status.update(new_status)
        try:
            self.client.update_status("Deployment", deployment)
        except ApiError:
            pass
