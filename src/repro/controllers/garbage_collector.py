"""Garbage collector.

Deletes objects whose controller owner no longer exists (cascading deletion
through owner references).  Owner references are the second half of the
dependency-tracking machinery the paper's F2 finding identifies as critical:
corrupting an ``ownerReferences`` entry can either orphan an object (so it is
never cleaned up — a More Resources failure) or, if the corrupted UID points
at nothing, cause the garbage collector to delete a live object.
"""

from __future__ import annotations

from repro.apiserver.errors import ApiError
from repro.controllers.base import Controller
from repro.objects.kinds import KINDS
from repro.objects.meta import controller_owner


class GarbageCollector(Controller):
    """Cascade deletion through controller owner references."""

    name = "garbage-collector"

    def __init__(self, sim, client):
        super().__init__(sim, client)
        self.collected = 0

    def reconcile_all(self) -> None:
        all_objects: list[tuple[str, dict]] = []
        known_uids: set[str] = set()
        for kind, info in KINDS.items():
            if kind == "Event":
                continue
            try:
                # Read-only refs (informer contract): the collector only
                # inspects owner references and issues deletes through the API.
                objects = self.client.list(kind, copy=False)
            except ApiError:
                continue
            for obj in objects:
                metadata = obj.get("metadata", {})
                if isinstance(metadata, dict) and isinstance(metadata.get("uid"), str):
                    known_uids.add(metadata["uid"])
                all_objects.append((kind, obj))

        for kind, obj in all_objects:
            owner = controller_owner(obj)
            if owner is None:
                continue
            owner_uid = owner.get("uid")
            if not isinstance(owner_uid, str) or owner_uid in known_uids:
                continue
            metadata = obj.get("metadata", {})
            if not isinstance(metadata, dict):
                continue
            self.collected += 1
            self.actions += 1
            try:
                self.client.delete(
                    kind, metadata.get("name", ""), namespace=metadata.get("namespace", "default")
                )
            except ApiError:
                continue
