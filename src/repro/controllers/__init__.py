"""The kube-controller-manager (Kcm) and its controllers.

Each controller implements one level-triggered reconciliation loop: it
observes the current state through the Apiserver, compares it with the
desired state, and issues creates/updates/deletes to converge the two.  The
controllers are deliberately faithful to the behaviours the paper's failure
modes depend on — owner-reference adoption, label-selector matching, node
heartbeat grace periods, full-disruption mode, rolling-update bounds — so
that injected state corruption propagates the same way it does in the real
system.
"""

from repro.controllers.manager import ControllerManager
from repro.controllers.leaderelection import LeaderElector

__all__ = ["ControllerManager", "LeaderElector"]
