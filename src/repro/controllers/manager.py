"""The kube-controller-manager (Kcm).

Bundles the individual controllers, runs them on a periodic sync loop while
holding the leader-election lease, and supports being restarted — a stateless
component that, on restart, simply re-observes the cluster state from the
data store (paper §II-D).  Losing (or never acquiring) leadership stalls
every controller at once, one of the Stall causes in the paper's results.
"""

from __future__ import annotations

from typing import Optional

from repro.apiserver.apiserver import APIServer
from repro.apiserver.client import APIClient
from repro.controllers.base import Controller
from repro.controllers.daemonset import DaemonSetController
from repro.controllers.deployment import DeploymentController
from repro.controllers.endpoints import EndpointsController
from repro.controllers.garbage_collector import GarbageCollector
from repro.controllers.leaderelection import LeaderElector
from repro.controllers.namespace import NamespaceController
from repro.controllers.node_lifecycle import NodeLifecycleController
from repro.controllers.replicaset import ReplicaSetController
from repro.sim.engine import Simulation

#: Period of the Kcm sync loop in simulated seconds.
SYNC_PERIOD = 1.0

#: Delay before a restarted Kcm replica attempts to re-acquire leadership,
#: matching the ~20 s leader re-election delay quoted in the paper.
RESTART_REELECTION_DELAY = 20.0


class ControllerManager:
    """Runs the controller loops under leader election."""

    def __init__(
        self,
        sim: Simulation,
        apiserver: APIServer,
        identity: str = "kcm-0",
        eviction_timeout: Optional[float] = None,
    ):
        self.sim = sim
        self.identity = identity
        self.client = APIClient(apiserver, component="kube-controller-manager")
        self.elector = LeaderElector(
            sim, self.client, lease_name="kube-controller-manager", identity=identity
        )
        node_lifecycle_kwargs = {}
        if eviction_timeout is not None:
            node_lifecycle_kwargs["eviction_timeout"] = eviction_timeout
        self.controllers: list[Controller] = [
            DeploymentController(sim, self.client),
            ReplicaSetController(sim, self.client),
            DaemonSetController(sim, self.client),
            EndpointsController(sim, self.client),
            NodeLifecycleController(sim, self.client, **node_lifecycle_kwargs),
            NamespaceController(sim, self.client),
            GarbageCollector(sim, self.client),
        ]
        self.restart_count = 0
        self._restarting_until = 0.0
        self._task = None

    # ---------------------------------------------------------------- control

    def start(self, period: float = SYNC_PERIOD) -> None:
        """Start the periodic sync loop."""
        self._task = self.sim.call_every(period, self.tick, delay=period, label="kcm-sync")

    def stop(self) -> None:
        """Stop the sync loop (component crash)."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def restart(self, reelection_delay: float = RESTART_REELECTION_DELAY) -> None:
        """Restart the component: drop leadership and pause reconciliation."""
        self.restart_count += 1
        self.elector.release()
        self._restarting_until = self.sim.now + reelection_delay

    # ------------------------------------------------------------------- loop

    def tick(self) -> None:
        """One sync-loop iteration: renew leadership, then run every controller."""
        if self.sim.now < self._restarting_until:
            return
        if not self.elector.try_acquire_or_renew():
            return
        for controller in self.controllers:
            controller.sync()

    @property
    def is_leader(self) -> bool:
        """Whether this replica currently holds the leader lease."""
        return self.elector.is_leader

    def get_controller(self, name: str) -> Optional[Controller]:
        """Return the controller with the given name, if present."""
        for controller in self.controllers:
            if controller.name == name:
                return controller
        return None

    def stats(self) -> dict:
        """Return per-controller counters."""
        return {
            "identity": self.identity,
            "is_leader": self.is_leader,
            "restarts": self.restart_count,
            "controllers": [controller.stats() for controller in self.controllers],
        }
