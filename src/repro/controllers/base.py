"""Base class shared by all controllers.

A controller is a level-triggered reconciliation loop: ``sync()`` observes
the current state through the API client, compares it with the desired
state, and issues writes to converge the two.  Failures are absorbed — the
loop retries on the next sync with per-key exponential backoff — because a
controller crash-looping on one bad object must not take out reconciliation
of every other object (failure isolation, paper §II-D).
"""

from __future__ import annotations


from repro.apiserver.client import APIClient
from repro.apiserver.errors import ApiError
from repro.controllers.workqueue import RateLimitedQueue
from repro.sim.engine import Simulation


class Controller:
    """Base reconciliation loop."""

    #: Human-readable controller name, used in logs and statistics.
    name = "controller"

    def __init__(self, sim: Simulation, client: APIClient):
        self.sim = sim
        self.client = client
        self.sync_count = 0
        self.error_count = 0
        self.actions = 0
        self._backoff = RateLimitedQueue(base_delay=1.0, max_delay=30.0)
        self._skip_until: dict[str, float] = {}

    # ------------------------------------------------------------------ hooks

    def sync(self) -> None:
        """Run one reconciliation pass.  Subclasses override :meth:`reconcile_all`."""
        self.sync_count += 1
        try:
            self.reconcile_all()
        except ApiError:
            # A failing list/read (apiserver unhealthy, etcd stalled) aborts the
            # pass; the next periodic sync retries.
            self.error_count += 1

    def reconcile_all(self) -> None:
        """Reconcile every object the controller is responsible for."""
        raise NotImplementedError

    # -------------------------------------------------------------- utilities

    def key_backoff_active(self, key: str) -> bool:
        """True if reconciliation of ``key`` is currently backed off."""
        return self._skip_until.get(key, 0.0) > self.sim.now

    def record_key_failure(self, key: str) -> None:
        """Record a reconcile failure for ``key`` and extend its backoff."""
        self.error_count += 1
        delay = self._backoff.add_after_failure(key, self.sim.now)
        self._skip_until[key] = self.sim.now + delay

    def record_key_success(self, key: str) -> None:
        """Clear backoff state for ``key`` after a successful reconcile."""
        self._backoff.forget(key)
        self._skip_until.pop(key, None)

    def safe_int(self, value, default: int = 0) -> int:
        """Interpret a possibly-corrupted integer field."""
        if isinstance(value, bool) or not isinstance(value, int):
            return default
        return value

    def stats(self) -> dict:
        """Return sync/error counters for this controller."""
        return {
            "name": self.name,
            "syncs": self.sync_count,
            "errors": self.error_count,
            "actions": self.actions,
        }
