"""Endpoints controller.

For every Service, the controller publishes the set of ready Pod IPs that
match the Service's selector.  kube-proxy instances load-balance client
requests over exactly this list, so a corrupted Service selector, a corrupted
pod label, or a corrupted Endpoints object translates directly into the
paper's Service Network (Net) failures: the right number of pods is running
but traffic no longer reaches them.
"""

from __future__ import annotations

from repro.apiserver.errors import ApiError, NotFoundError
from repro.controllers.base import Controller
from repro.controllers.replicaset import pod_is_ready
from repro.objects.kinds import make_endpoints
from repro.objects.meta import make_owner_reference, object_key
from repro.objects.selectors import labels_subset


class EndpointsController(Controller):
    """Reconcile Endpoints objects from Services and ready Pods."""

    name = "endpoints"

    def reconcile_all(self) -> None:
        # Read-only refs (informer contract): the desired Endpoints object is
        # built from scratch; only the fetched ``existing`` copy is mutated.
        services = self.client.list("Service", copy=False)
        pods = self.client.list("Pod", copy=False)
        for service in services:
            key = object_key(service)
            if self.key_backoff_active(key):
                continue
            try:
                self._reconcile_one(service, pods)
                self.record_key_success(key)
            except ApiError:
                self.record_key_failure(key)

    def _reconcile_one(self, service: dict, all_pods: list[dict]) -> None:
        metadata = service.get("metadata", {})
        spec = service.get("spec", {})
        if not isinstance(metadata, dict) or not isinstance(spec, dict):
            return
        namespace = metadata.get("namespace", "default")
        name = metadata.get("name")
        selector = spec.get("selector")
        if not isinstance(name, str):
            return
        if not isinstance(selector, dict) or not selector:
            # Services without a (valid) selector manage their endpoints
            # manually; the controller leaves whatever is stored in place.
            # After a selector corruption this means the endpoints go stale.
            return

        addresses = []
        for pod in all_pods:
            pod_meta = pod.get("metadata", {})
            if not isinstance(pod_meta, dict) or pod_meta.get("namespace") != namespace:
                continue
            labels = pod_meta.get("labels", {})
            if not labels_subset(selector, labels if isinstance(labels, dict) else {}):
                continue
            if not pod_is_ready(pod):
                continue
            pod_ip = pod.get("status", {}).get("podIP")
            if not isinstance(pod_ip, str) or not pod_ip:
                continue
            addresses.append(
                {
                    "ip": pod_ip,
                    "nodeName": pod.get("spec", {}).get("nodeName"),
                    "targetRef": {
                        "kind": "Pod",
                        "name": pod_meta.get("name"),
                        "uid": pod_meta.get("uid"),
                    },
                }
            )
        addresses.sort(key=lambda entry: entry["ip"])

        ports = spec.get("ports", [])
        target_port = 8080
        if isinstance(ports, list) and ports and isinstance(ports[0], dict):
            candidate = ports[0].get("targetPort")
            if isinstance(candidate, int) and not isinstance(candidate, bool):
                target_port = candidate

        try:
            existing = self.client.get("Endpoints", name, namespace=namespace)
        except NotFoundError:
            existing = None

        if existing is None:
            endpoints = make_endpoints(
                name,
                namespace=namespace,
                addresses=addresses,
                port=target_port,
                owner_references=[make_owner_reference(service)],
            )
            self.actions += 1
            self.client.create("Endpoints", endpoints)
            return

        subsets = existing.get("subsets")
        desired_subsets = [
            {"addresses": addresses, "ports": [{"port": target_port, "protocol": "TCP"}]}
        ]
        if subsets == desired_subsets:
            return
        existing["subsets"] = desired_subsets
        self.actions += 1
        self.client.update("Endpoints", existing)
