"""Lease-based leader election.

The Kcm and the Scheduler run with a single active replica elected through a
Lease object stored, like everything else, in the data store.  Corrupting the
lease's holder identity or renew time can leave the component unable to take
(or keep) leadership — one of the Stall causes the paper identifies.
"""

from __future__ import annotations


from repro.apiserver.client import APIClient
from repro.apiserver.errors import ApiError, NotFoundError
from repro.objects.kinds import make_lease
from repro.sim.engine import Simulation

#: Default lease duration, matching the Kubernetes default of 15 s for
#: control-plane leader election; re-election after expiry therefore takes
#: roughly the 20 s the paper quotes for a Scheduler restart.
LEASE_DURATION = 15.0
RENEW_PERIOD = 5.0


class LeaderElector:
    """Acquire and renew a named leadership lease."""

    def __init__(
        self,
        sim: Simulation,
        client: APIClient,
        lease_name: str,
        identity: str,
        namespace: str = "kube-system",
        lease_duration: float = LEASE_DURATION,
    ):
        self.sim = sim
        self.client = client
        self.lease_name = lease_name
        self.identity = identity
        self.namespace = namespace
        self.lease_duration = lease_duration
        self.is_leader = False
        self.transitions = 0

    def try_acquire_or_renew(self) -> bool:
        """Attempt to acquire or renew the lease; return current leadership."""
        try:
            lease = self._get_or_create_lease()
        except ApiError:
            self.is_leader = False
            return False
        spec = lease.get("spec")
        if not isinstance(spec, dict):
            # A corrupted lease spec cannot be renewed or acquired.
            self.is_leader = False
            return False
        holder = spec.get("holderIdentity")
        renew_time = spec.get("renewTime")
        duration = spec.get("leaseDurationSeconds", self.lease_duration)
        if not isinstance(duration, (int, float)) or isinstance(duration, bool) or duration <= 0:
            duration = self.lease_duration

        now = self.sim.now
        expired = (
            holder is None
            or not isinstance(renew_time, (int, float))
            or isinstance(renew_time, bool)
            or now - renew_time > duration
        )
        if holder == self.identity or expired:
            spec["holderIdentity"] = self.identity
            spec["renewTime"] = now
            if holder != self.identity:
                spec["acquireTime"] = now
                transitions = spec.get("leaseTransitions", 0)
                spec["leaseTransitions"] = transitions + 1 if isinstance(transitions, int) else 1
            try:
                self.client.update("Lease", lease)
            except ApiError:
                self.is_leader = False
                return False
            if not self.is_leader:
                self.transitions += 1
            self.is_leader = True
            return True
        self.is_leader = False
        return False

    def release(self) -> None:
        """Voluntarily give up leadership (used on component restart)."""
        self.is_leader = False
        try:
            lease = self.client.get("Lease", self.lease_name, namespace=self.namespace)
        except ApiError:
            return
        spec = lease.get("spec")
        if isinstance(spec, dict) and spec.get("holderIdentity") == self.identity:
            spec["holderIdentity"] = None
            spec["renewTime"] = None
            try:
                self.client.update("Lease", lease)
            except ApiError:
                pass

    def _get_or_create_lease(self) -> dict:
        try:
            return self.client.get("Lease", self.lease_name, namespace=self.namespace)
        except NotFoundError:
            lease = make_lease(
                self.lease_name,
                namespace=self.namespace,
                duration_seconds=int(self.lease_duration),
            )
            return self.client.create("Lease", lease)
