"""The cluster data store.

Kubernetes keeps the entire cluster state — current and desired — in etcd.
The paper's central observation is that this makes the data store a
dependability bottleneck: a single incorrect value written there propagates
to every component that watches it.

:mod:`repro.etcd` provides a revisioned, watchable key-value store
(:class:`~repro.etcd.store.EtcdStore`), a simulated Raft quorum layer
(:class:`~repro.etcd.raft.RaftGroup`) and a storage-quota model so that
event storms can fill the disk and stall the store, as in the paper's
uncontrolled-replication example.
"""

from repro.etcd.raft import RaftGroup, RaftMember
from repro.etcd.store import EtcdStore, KeyValue, StoreQuotaExceeded, WatchEvent

__all__ = [
    "EtcdStore",
    "KeyValue",
    "RaftGroup",
    "RaftMember",
    "StoreQuotaExceeded",
    "WatchEvent",
]
