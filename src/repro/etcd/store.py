"""Revisioned, watchable key-value store.

The store keeps *serialized* values (bytes): the Apiserver encodes objects
with :mod:`repro.serialization` before writing, so an injection on the
Apiserver→etcd channel corrupts exactly what is persisted, and a corrupted
value that no longer decodes is observed on the read path — the situation in
which Kubernetes deletes the "undecryptable" resource.

Revisions are global and monotonic, as in etcd: every successful write bumps
the store revision and stamps the key's ``mod_revision``.  Watches deliver
events synchronously in revision order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from repro.hotpath import COUNTERS


class StoreQuotaExceeded(RuntimeError):
    """Raised when a write would exceed the store's storage quota.

    Mirrors etcd's ``mvcc: database space exceeded`` alarm: once raised, the
    store refuses further writes until the quota is raised or keys are
    deleted, which stalls every controller in the cluster.
    """


class EventType(Enum):
    """Type of a watch event."""

    PUT = "PUT"
    DELETE = "DELETE"


@dataclass
class KeyValue:
    """A stored key with its value bytes and revision bookkeeping."""

    key: str
    value: bytes
    create_revision: int
    mod_revision: int
    version: int


@dataclass
class WatchEvent:
    """A change notification delivered to watchers."""

    type: EventType
    key: str
    value: Optional[bytes]
    revision: int
    prev_value: Optional[bytes] = None


@dataclass
class _Watcher:
    watch_id: int
    prefix: str
    callback: Callable[[WatchEvent], None]
    cancelled: bool = False


class EtcdStore:
    """In-memory revisioned key-value store with prefix watches."""

    #: Default storage quota, scaled down from etcd's 2 GiB default so that
    #: runaway object creation hits the quota within a simulated experiment.
    DEFAULT_QUOTA_BYTES = 8 * 1024 * 1024

    def __init__(self, quota_bytes: int = DEFAULT_QUOTA_BYTES):
        self._data: dict[str, KeyValue] = {}
        self._revision = 0
        self._watchers: dict[int, _Watcher] = {}
        #: Watchers bucketed by their prefix: dispatch checks one
        #: ``startswith`` per *distinct prefix* instead of one per watcher.
        self._watch_buckets: dict[str, list[_Watcher]] = {}
        self._watch_ids = itertools.count(1)
        self._quota_bytes = quota_bytes
        self._bytes_used = 0
        self._alarm_active = False
        #: Sorted view of the key set, invalidated when a key is added or
        #: removed (value-only rewrites keep it); ``range``/``keys`` reuse it
        #: across the thousands of list requests an experiment issues.
        self._sorted_keys: Optional[list[str]] = None
        self.write_count = 0
        self.read_count = 0
        self.delete_count = 0

    # ------------------------------------------------------------------ state

    @property
    def revision(self) -> int:
        """The current global store revision."""
        return self._revision

    @property
    def bytes_used(self) -> int:
        """Approximate storage used by current values."""
        return self._bytes_used

    @property
    def quota_bytes(self) -> int:
        """The storage quota after which writes are refused."""
        return self._quota_bytes

    @property
    def alarm_active(self) -> bool:
        """True once the space alarm has fired; writes are refused while set."""
        return self._alarm_active

    def clear_alarm(self) -> None:
        """Clear the space alarm (operator action after compaction/defrag)."""
        self._alarm_active = False

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------ reads

    def get(self, key: str) -> Optional[KeyValue]:
        """Return the stored entry for ``key`` or None."""
        self.read_count += 1
        return self._data.get(key)

    def _sorted(self) -> list[str]:
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._data)
        return self._sorted_keys

    def range(self, prefix: str) -> list[KeyValue]:
        """Return all entries whose key starts with ``prefix``, sorted by key."""
        self.read_count += 1
        data = self._data
        return [data[key] for key in self._sorted() if key.startswith(prefix)]

    def keys(self, prefix: str = "") -> list[str]:
        """Return all keys with the given prefix, sorted."""
        return [key for key in self._sorted() if key.startswith(prefix)]

    # ----------------------------------------------------------------- writes

    def put(self, key: str, value: bytes) -> int:
        """Store ``value`` under ``key``; return the new mod revision.

        Raises :class:`StoreQuotaExceeded` if the write would exceed the
        storage quota (and latches the alarm).
        """
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"etcd values must be bytes, got {type(value).__name__}")
        value = bytes(value)
        previous = self._data.get(key)
        delta = len(value) - (len(previous.value) if previous else 0)
        if self._alarm_active or (self._bytes_used + max(delta, 0) > self._quota_bytes):
            self._alarm_active = True
            raise StoreQuotaExceeded(
                f"etcd space alarm: {self._bytes_used + delta} bytes would exceed "
                f"quota of {self._quota_bytes}"
            )
        self._revision += 1
        self.write_count += 1
        self._bytes_used += delta
        if previous is None:
            self._sorted_keys = None
            entry = KeyValue(
                key=key,
                value=value,
                create_revision=self._revision,
                mod_revision=self._revision,
                version=1,
            )
        else:
            entry = KeyValue(
                key=key,
                value=value,
                create_revision=previous.create_revision,
                mod_revision=self._revision,
                version=previous.version + 1,
            )
        self._data[key] = entry
        watchers = self._matching_watchers(key)
        if watchers:
            event = WatchEvent(
                type=EventType.PUT,
                key=key,
                value=value,
                revision=self._revision,
                prev_value=previous.value if previous else None,
            )
            self._dispatch(watchers, event)
        else:
            COUNTERS.watch_events_skipped += 1
        return self._revision

    def delete(self, key: str) -> bool:
        """Delete ``key``; return True if it existed."""
        previous = self._data.pop(key, None)
        if previous is None:
            return False
        self._sorted_keys = None
        self._revision += 1
        self.delete_count += 1
        self._bytes_used -= len(previous.value)
        watchers = self._matching_watchers(key)
        if watchers:
            event = WatchEvent(
                type=EventType.DELETE,
                key=key,
                value=None,
                revision=self._revision,
                prev_value=previous.value,
            )
            self._dispatch(watchers, event)
        else:
            COUNTERS.watch_events_skipped += 1
        return True

    def delete_prefix(self, prefix: str) -> int:
        """Delete every key with the given prefix; return the number deleted."""
        count = 0
        for key in list(self.keys(prefix)):
            if self.delete(key):
                count += 1
        return count

    def compact(self) -> None:
        """Compact historical revisions.

        The store only keeps latest values, so compaction is a no-op on data;
        it exists so operators (and tests) can exercise the recovery path
        that clears the space alarm after deleting keys.
        """
        if self._bytes_used <= self._quota_bytes:
            self._alarm_active = False

    # ---------------------------------------------------------------- watches

    def watch(self, prefix: str, callback: Callable[[WatchEvent], None]) -> int:
        """Register a watch on a key prefix; return a watch id."""
        watch_id = next(self._watch_ids)
        watcher = _Watcher(watch_id=watch_id, prefix=prefix, callback=callback)
        self._watchers[watch_id] = watcher
        self._watch_buckets.setdefault(prefix, []).append(watcher)
        return watch_id

    def cancel_watch(self, watch_id: int) -> None:
        """Cancel a previously registered watch."""
        watcher = self._watchers.pop(watch_id, None)
        if watcher is not None:
            watcher.cancelled = True
            bucket = self._watch_buckets.get(watcher.prefix)
            if bucket is not None:
                bucket[:] = [entry for entry in bucket if entry is not watcher]
                if not bucket:
                    del self._watch_buckets[watcher.prefix]

    def _matching_watchers(self, key: str) -> list[_Watcher]:
        """Live watchers whose prefix matches ``key``, in registration order.

        The per-prefix buckets make the no-subscriber case (idle controllers,
        keys nothing watches) a handful of ``startswith`` checks, after which
        the caller skips constructing the event entirely.
        """
        buckets = self._watch_buckets
        if not buckets:
            return []
        matched: list[_Watcher] = []
        for prefix, bucket in buckets.items():
            if key.startswith(prefix):
                matched.extend(bucket)
        if len(buckets) > 1 and len(matched) > 1:
            # Several prefixes matched: restore registration order so
            # delivery order is identical to the unbucketed dispatch.
            matched.sort(key=lambda watcher: watcher.watch_id)
        return matched

    def _dispatch(self, watchers: list[_Watcher], event: WatchEvent) -> None:
        for watcher in watchers:
            if not watcher.cancelled:
                COUNTERS.watch_dispatches += 1
                watcher.callback(event)

    # ------------------------------------------------------------------ misc

    def snapshot_keys(self) -> dict[str, bytes]:
        """Return a copy of all current key/value pairs (for test assertions)."""
        return {key: entry.value for key, entry in self._data.items()}

    def stats(self) -> dict:
        """Return operation counters and storage statistics."""
        return {
            "keys": len(self._data),
            "revision": self._revision,
            "bytes_used": self._bytes_used,
            "quota_bytes": self._quota_bytes,
            "alarm_active": self._alarm_active,
            "writes": self.write_count,
            "reads": self.read_count,
            "deletes": self.delete_count,
        }
