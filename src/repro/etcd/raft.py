"""Simulated Raft quorum layer for the data store.

The paper notes (§V-C1) that running a replicated control plane does not
protect against Mutiny's injections: the fault is introduced *before* the
consensus algorithm runs, so every replica agrees on the corrupted value.
The :class:`RaftGroup` models exactly enough of Raft to reproduce that
observation — leader election, quorum acceptance of proposals, loss of
availability when a majority of members is down — without re-implementing
log replication byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class QuorumLost(RuntimeError):
    """Raised when a proposal cannot be committed because quorum is unavailable."""


@dataclass
class RaftMember:
    """A member of the Raft group."""

    name: str
    healthy: bool = True
    #: Number of proposals this member has acknowledged.
    acked_proposals: int = 0


class RaftGroup:
    """A quorum of data-store replicas.

    The group tracks member health, elects the lowest-named healthy member as
    leader, and accepts proposals only when a majority of members is healthy.
    Committed proposals are applied to every healthy member, so all replicas
    converge on the same (possibly corrupted) value — the behaviour the paper
    verifies with the three-control-plane-node rerun.
    """

    def __init__(self, member_names: list[str]):
        if not member_names:
            raise ValueError("a Raft group needs at least one member")
        self._members = {name: RaftMember(name=name) for name in member_names}
        #: Incrementally-maintained count of healthy members; health changes
        #: only through fail_member/recover_member, and has_quorum is checked
        #: on every apiserver read and write.
        self._healthy_count = len(self._members)
        self._term = 1
        self._leader: Optional[str] = None
        self._elect()
        self.committed_proposals = 0
        self.rejected_proposals = 0

    # ------------------------------------------------------------------ state

    @property
    def term(self) -> int:
        """Current election term."""
        return self._term

    @property
    def leader(self) -> Optional[str]:
        """Name of the current leader, or None if no quorum."""
        return self._leader

    @property
    def members(self) -> list[RaftMember]:
        """All members of the group."""
        return list(self._members.values())

    def quorum_size(self) -> int:
        """Minimum number of healthy members needed to commit."""
        return len(self._members) // 2 + 1

    def healthy_members(self) -> list[RaftMember]:
        """Members currently healthy."""
        return [member for member in self._members.values() if member.healthy]

    def has_quorum(self) -> bool:
        """True if a majority of members is healthy."""
        return self._healthy_count >= len(self._members) // 2 + 1

    # ------------------------------------------------------------ membership

    def fail_member(self, name: str) -> None:
        """Mark a member as failed; trigger re-election if it was the leader."""
        member = self._members.get(name)
        if member is None:
            raise KeyError(f"unknown raft member {name!r}")
        if member.healthy:
            self._healthy_count -= 1
        member.healthy = False
        if self._leader == name:
            self._term += 1
            self._elect()

    def recover_member(self, name: str) -> None:
        """Mark a member as healthy again."""
        member = self._members.get(name)
        if member is None:
            raise KeyError(f"unknown raft member {name!r}")
        if not member.healthy:
            self._healthy_count += 1
        member.healthy = True
        if self._leader is None:
            self._term += 1
            self._elect()

    def _elect(self) -> None:
        if not self.has_quorum():
            self._leader = None
            return
        healthy = sorted(member.name for member in self.healthy_members())
        self._leader = healthy[0] if healthy else None

    # -------------------------------------------------------------- proposals

    def propose(self, payload_size: int = 0) -> int:
        """Commit a proposal through the quorum; return the commit index.

        Raises :class:`QuorumLost` when a majority of members is unavailable.
        ``payload_size`` is accepted for interface symmetry with a real log
        (and for tests asserting that corrupted payloads still commit).
        """
        if not self.has_quorum() or self._leader is None:
            self.rejected_proposals += 1
            raise QuorumLost(
                f"no quorum: {len(self.healthy_members())}/{len(self._members)} healthy"
            )
        del payload_size  # the simulated log does not persist payload bytes
        self.committed_proposals += 1
        for member in self.healthy_members():
            member.acked_proposals += 1
        return self.committed_proposals

    def stats(self) -> dict:
        """Return election and commit statistics."""
        return {
            "term": self._term,
            "leader": self._leader,
            "members": len(self._members),
            "healthy": len(self.healthy_members()),
            "committed": self.committed_proposals,
            "rejected": self.rejected_proposals,
        }
