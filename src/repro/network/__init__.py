"""The cluster network: CNI routes, kube-proxy views and DNS.

Networking in Kubernetes is itself reconciled from data-store objects: the
network manager DaemonSet programs routes for each node, kube-proxy turns
Services and Endpoints into load-balancing rules, and coreDNS serves name
resolution from Service records.  Because all of that state lives in etcd,
it is squarely inside Mutiny's injection surface — the paper's Service
Network (Net), Stall and Outage failures are largely networking failures.
"""

from repro.network.network import ClusterNetwork, RequestOutcome

__all__ = ["ClusterNetwork", "RequestOutcome"]
