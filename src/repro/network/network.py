"""Virtual cluster network.

The :class:`ClusterNetwork` models three cooperating mechanisms:

* **Route programming (CNI / network manager).**  A node's pod routes are
  programmed only while a ready network-manager DaemonSet pod runs on that
  node *and* the network manager's ConfigMap is intact.  Routes are sticky:
  pods that were programmed keep working if the network manager later fails
  (a Stall), but a cluster-wide teardown (ConfigMap corruption, DaemonSet
  deletion) drops every route (an Outage).
* **Service load balancing (kube-proxy).**  Requests to a Service are spread
  round-robin over the addresses in its Endpoints object.
* **DNS (coreDNS).**  Name resolution works while at least one ready DNS pod
  is reachable.  The paper's benchmark application does not use DNS, so DNS
  failures are an orchestrator-level outage that may leave client traffic
  untouched — reproduced here by making DNS resolution optional per request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apiserver.apiserver import APIServer
from repro.apiserver.client import APIClient
from repro.apiserver.errors import ApiError, NotFoundError
from repro.controllers.replicaset import pod_is_ready
from repro.sim.engine import Simulation

#: Period of the network reconciliation loop, seconds.
NETWORK_SYNC_PERIOD = 1.0

#: Label identifying network-manager (flannel-like) pods.
NETWORK_MANAGER_LABEL = ("app", "kube-network-manager")

#: Label identifying DNS pods.
DNS_LABEL = ("k8s-app", "kube-dns")

#: Name of the ConfigMap holding the network manager's configuration.
NETWORK_CONFIGMAP = "kube-network-cfg"


@dataclass
class RequestOutcome:
    """Result of one simulated client request."""

    success: bool
    latency: float
    error: Optional[str] = None
    backend_ip: Optional[str] = None


class ClusterNetwork:
    """Reconciles and evaluates cluster networking state."""

    def __init__(self, sim: Simulation, apiserver: APIServer):
        self.sim = sim
        self.client = APIClient(apiserver, component="kube-proxy")
        #: Pod UIDs whose routes have been programmed (sticky until teardown).
        self._programmed_pods: set[str] = set()
        #: Nodes whose routes have been programmed at least once.
        self._programmed_nodes: set[str] = set()
        self._round_robin: dict[str, int] = {}
        self.teardowns = 0
        self._task = None
        #: Bumped whenever the programmed-route state may have changed; part
        #: of the memo keys below.
        self._routes_epoch = 0
        #: ``(service, namespace) -> (state_key, backends)`` memo — exact
        #: while the store revision, route state and apiserver health are
        #: unchanged (reads have no side effects at an unchanged revision:
        #: any purge-on-read already happened on the first, uncached call).
        self._backends_memo: dict[tuple[str, str], tuple[tuple, list]] = {}
        self._dns_memo: Optional[tuple[tuple, bool]] = None

    # ---------------------------------------------------------------- control

    def start(self, period: float = NETWORK_SYNC_PERIOD) -> None:
        """Start the periodic route-programming loop."""
        self._task = self.sim.call_every(period, self.sync, delay=0.5, label="network-sync")

    def stop(self) -> None:
        """Stop the route-programming loop."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    # ------------------------------------------------------------------- sync

    def _state_key(self) -> tuple:
        """Identity of everything the evaluation reads can depend on."""
        apiserver = self.client.apiserver
        raft = apiserver.raft
        return (
            apiserver.store.revision,
            self._routes_epoch,
            apiserver.healthy,
            raft.has_quorum() if raft is not None else True,
        )

    def sync(self) -> None:
        """Program routes for pods on nodes with a healthy network manager."""
        self._routes_epoch += 1
        try:
            # Read-only refs (informer contract): the network never mutates
            # the objects it observes.
            pods = self.client.list("Pod", copy=False)
        except ApiError:
            return

        if not self._network_config_intact():
            # Cluster-wide network teardown: every route is dropped and no new
            # routes are programmed until the configuration is restored.
            if self._programmed_pods or self._programmed_nodes:
                self.teardowns += 1
            self._programmed_pods.clear()
            self._programmed_nodes.clear()
            return

        manager_ready_nodes = self._network_manager_nodes(pods)
        self._programmed_nodes.update(manager_ready_nodes)

        current_uids = set()
        for pod in pods:
            metadata = pod.get("metadata", {})
            spec = pod.get("spec", {})
            if not isinstance(metadata, dict) or not isinstance(spec, dict):
                continue
            uid = metadata.get("uid")
            node_name = spec.get("nodeName")
            if not isinstance(uid, str) or not isinstance(node_name, str):
                continue
            current_uids.add(uid)
            if uid in self._programmed_pods:
                continue
            if not pod_is_ready(pod):
                continue
            if node_name in manager_ready_nodes:
                self._programmed_pods.add(uid)

        # Routes of pods that no longer exist are withdrawn.
        self._programmed_pods &= current_uids

    def _network_config_intact(self) -> bool:
        try:
            config = self.client.get(
                "ConfigMap", NETWORK_CONFIGMAP, namespace="kube-system", copy=False
            )
        except NotFoundError:
            return False
        except ApiError:
            # The apiserver being unavailable does not tear down programmed routes.
            return True
        data = config.get("data")
        if not isinstance(data, dict):
            return False
        network = data.get("network")
        return isinstance(network, str) and network.count(".") >= 2 and "/" in network

    def _network_manager_nodes(self, pods: list[dict]) -> set[str]:
        key, value = NETWORK_MANAGER_LABEL
        nodes = set()
        for pod in pods:
            metadata = pod.get("metadata", {})
            spec = pod.get("spec", {})
            if not isinstance(metadata, dict) or not isinstance(spec, dict):
                continue
            labels = metadata.get("labels", {})
            if not isinstance(labels, dict) or labels.get(key) != value:
                continue
            if not pod_is_ready(pod):
                continue
            node_name = spec.get("nodeName")
            if isinstance(node_name, str):
                nodes.add(node_name)
        return nodes

    # ------------------------------------------------------------ evaluation

    def pod_reachable(self, pod: dict) -> bool:
        """True if traffic from another node can reach this pod."""
        metadata = pod.get("metadata", {})
        status = pod.get("status", {})
        if not isinstance(metadata, dict) or not isinstance(status, dict):
            return False
        uid = metadata.get("uid")
        if not isinstance(uid, str) or uid not in self._programmed_pods:
            return False
        return pod_is_ready(pod) and isinstance(status.get("podIP"), str)

    def dns_available(self) -> bool:
        """True if at least one ready DNS pod is reachable."""
        state = self._state_key()
        memo = self._dns_memo
        if memo is not None and memo[0] == state:
            return memo[1]
        available = self._dns_available_uncached()
        self._dns_memo = (state, available)
        return available

    def _dns_available_uncached(self) -> bool:
        key, value = DNS_LABEL
        try:
            pods = self.client.list("Pod", namespace="kube-system", copy=False)
        except ApiError:
            return False
        for pod in pods:
            labels = pod.get("metadata", {}).get("labels", {})
            if isinstance(labels, dict) and labels.get(key) == value and self.pod_reachable(pod):
                return True
        return False

    def service_backends(self, service_name: str, namespace: str = "default") -> list[dict]:
        """Return the reachable backend pods behind a Service."""
        state = self._state_key()
        memo_key = (service_name, namespace)
        memo = self._backends_memo.get(memo_key)
        if memo is not None and memo[0] == state:
            return list(memo[1])
        backends = self._service_backends_uncached(service_name, namespace)
        if len(self._backends_memo) >= 256:
            self._backends_memo.clear()
        self._backends_memo[memo_key] = (state, backends)
        return list(backends)

    def _service_backends_uncached(self, service_name: str, namespace: str) -> list[dict]:
        try:
            endpoints = self.client.get("Endpoints", service_name, namespace=namespace, copy=False)
        except ApiError:
            return []
        subsets = endpoints.get("subsets", [])
        if not isinstance(subsets, list):
            return []
        addresses = []
        for subset in subsets:
            if not isinstance(subset, dict):
                continue
            entries = subset.get("addresses", [])
            if isinstance(entries, list):
                addresses.extend(entry for entry in entries if isinstance(entry, dict))

        try:
            pods = self.client.list("Pod", namespace=namespace, copy=False)
        except ApiError:
            pods = []
        pods_by_ip = {}
        for pod in pods:
            status = pod.get("status", {})
            ip = status.get("podIP") if isinstance(status, dict) else None
            if isinstance(ip, str):
                pods_by_ip[ip] = pod

        backends = []
        for entry in addresses:
            ip = entry.get("ip")
            pod = pods_by_ip.get(ip)
            if pod is not None and self.pod_reachable(pod):
                backends.append(pod)
        return backends

    def request(
        self,
        service_name: str,
        namespace: str = "default",
        use_dns: bool = False,
        base_latency: float = 0.05,
        expected_backends: int = 1,
    ) -> RequestOutcome:
        """Simulate one client request to a Service.

        The latency model is intentionally simple: a base service time that
        grows when fewer backends than expected share the load, plus a small
        deterministic jitter from the simulation RNG.  Requests fail when DNS
        (if used) is down, when the service has no reachable backends, or
        when the service object itself is gone.
        """
        if use_dns and not self.dns_available():
            return RequestOutcome(success=False, latency=0.0, error="dns-resolution-failed")
        try:
            self.client.get("Service", service_name, namespace=namespace, copy=False)
        except ApiError:
            return RequestOutcome(success=False, latency=0.0, error="service-not-found")
        backends = self.service_backends(service_name, namespace=namespace)
        if not backends:
            return RequestOutcome(success=False, latency=0.0, error="no-endpoints")

        index = self._round_robin.get(service_name, 0)
        backend = backends[index % len(backends)]
        self._round_robin[service_name] = index + 1

        load_factor = max(1.0, float(expected_backends) / float(len(backends)))
        jitter = self.sim.rng.uniform("network-latency", 0.0, 0.01)
        latency = base_latency * load_factor + jitter
        backend_ip = backend.get("status", {}).get("podIP")
        return RequestOutcome(success=True, latency=latency, backend_ip=backend_ip)

    def stats(self) -> dict:
        """Return route-programming statistics."""
        return {
            "programmed_pods": len(self._programmed_pods),
            "programmed_nodes": len(self._programmed_nodes),
            "teardowns": self.teardowns,
        }
