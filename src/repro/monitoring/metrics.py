"""Cluster metrics sampling.

The collector scrapes the Apiserver on a fixed period and appends one
:class:`MetricsSample` per scrape.  Samples are cheap, plain data — the
classification layer computes failure verdicts from them after the
experiment finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apiserver.apiserver import APIServer
from repro.apiserver.client import APIClient
from repro.apiserver.errors import ApiError
from repro.controllers.replicaset import pod_is_ready
from repro.sim.engine import Simulation

#: Scrape period, matching the paper's 3-second sampling of replica counts.
SCRAPE_PERIOD = 3.0


@dataclass
class MetricsSample:
    """One scrape of cluster state."""

    time: float
    #: namespace/name -> (ready replicas, desired replicas) for ReplicaSets.
    replicasets: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: namespace/name -> (ready replicas, desired replicas) for Deployments.
    deployments: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: namespace/name -> number of endpoint addresses for Services.
    endpoints: dict[str, int] = field(default_factory=dict)
    #: Total pods by phase.
    pods_by_phase: dict[str, int] = field(default_factory=dict)
    #: Total number of pod objects in the store.
    total_pods: int = 0
    #: Number of pods created since the previous sample (cumulative counter).
    pods_created_cumulative: int = 0
    #: Number of Ready nodes / total nodes.
    nodes_ready: int = 0
    nodes_total: int = 0
    #: Whether DNS pods are ready, network manager pods ready per node count.
    dns_ready_pods: int = 0
    network_manager_ready_pods: int = 0
    #: Data-store statistics.
    etcd_keys: int = 0
    etcd_alarm: bool = False
    #: Whether the scrape itself failed (control plane unreachable).
    scrape_failed: bool = False


class MetricsCollector:
    """Periodically scrape cluster state from the Apiserver."""

    def __init__(self, sim: Simulation, apiserver: APIServer):
        self.sim = sim
        self.apiserver = apiserver
        self.client = APIClient(apiserver, component="kube-state-metrics")
        self.samples: list[MetricsSample] = []
        self._pods_seen_uids: set[str] = set()
        self._task = None

    def start(self, period: float = SCRAPE_PERIOD) -> None:
        """Start the scrape loop."""
        self._task = self.sim.call_every(period, self.scrape, delay=period, label="metrics-scrape")

    def stop(self) -> None:
        """Stop the scrape loop."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def scrape(self) -> MetricsSample:
        """Take one sample of cluster state and append it to the series."""
        sample = MetricsSample(time=self.sim.now)
        try:
            self._scrape_into(sample)
        except ApiError:
            sample.scrape_failed = True
        self.samples.append(sample)
        return sample

    # ------------------------------------------------------------------ guts

    def _scrape_into(self, sample: MetricsSample) -> None:
        # All reads below take read-only cache refs (informer contract):
        # scraping only aggregates counters, it never mutates objects.
        replicasets = self.client.list("ReplicaSet", copy=False)
        for replicaset in replicasets:
            key = self._key(replicaset)
            status = replicaset.get("status", {})
            spec = replicaset.get("spec", {})
            ready = status.get("readyReplicas", 0) if isinstance(status, dict) else 0
            desired = spec.get("replicas", 0) if isinstance(spec, dict) else 0
            sample.replicasets[key] = (self._int(ready), self._int(desired))

        deployments = self.client.list("Deployment", copy=False)
        for deployment in deployments:
            key = self._key(deployment)
            status = deployment.get("status", {})
            spec = deployment.get("spec", {})
            ready = status.get("readyReplicas", 0) if isinstance(status, dict) else 0
            desired = spec.get("replicas", 0) if isinstance(spec, dict) else 0
            sample.deployments[key] = (self._int(ready), self._int(desired))

        for endpoints in self.client.list("Endpoints", copy=False):
            key = self._key(endpoints)
            count = 0
            subsets = endpoints.get("subsets", [])
            if isinstance(subsets, list):
                for subset in subsets:
                    if isinstance(subset, dict) and isinstance(subset.get("addresses"), list):
                        count += len(subset["addresses"])
            sample.endpoints[key] = count

        pods = self.client.list("Pod", copy=False)
        sample.total_pods = len(pods)
        for pod in pods:
            status = pod.get("status", {})
            phase = status.get("phase", "Unknown") if isinstance(status, dict) else "Unknown"
            if not isinstance(phase, str):
                phase = "Unknown"
            sample.pods_by_phase[phase] = sample.pods_by_phase.get(phase, 0) + 1
            uid = pod.get("metadata", {}).get("uid")
            if isinstance(uid, str):
                self._pods_seen_uids.add(uid)
            labels = pod.get("metadata", {}).get("labels", {})
            if isinstance(labels, dict):
                if labels.get("k8s-app") == "kube-dns" and pod_is_ready(pod):
                    sample.dns_ready_pods += 1
                if labels.get("app") == "kube-network-manager" and pod_is_ready(pod):
                    sample.network_manager_ready_pods += 1
        sample.pods_created_cumulative = len(self._pods_seen_uids)

        nodes = self.client.list("Node", copy=False)
        sample.nodes_total = len(nodes)
        for node in nodes:
            conditions = node.get("status", {}).get("conditions", [])
            if isinstance(conditions, list):
                for condition in conditions:
                    if (
                        isinstance(condition, dict)
                        and condition.get("type") == "Ready"
                        and condition.get("status") == "True"
                    ):
                        sample.nodes_ready += 1
                        break

        store_stats = self.apiserver.store.stats()
        sample.etcd_keys = store_stats["keys"]
        sample.etcd_alarm = store_stats["alarm_active"]

    @staticmethod
    def _key(obj: dict) -> str:
        metadata = obj.get("metadata", {})
        if not isinstance(metadata, dict):
            return "<corrupted>"
        return f"{metadata.get('namespace', 'default')}/{metadata.get('name', '<unnamed>')}"

    @staticmethod
    def _int(value) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            return 0
        return value

    # ------------------------------------------------------------- accessors

    def series_for_replicaset(self, key: str) -> list[tuple[float, int, int]]:
        """Return (time, ready, desired) samples for one ReplicaSet."""
        series = []
        for sample in self.samples:
            if key in sample.replicasets:
                ready, desired = sample.replicasets[key]
                series.append((sample.time, ready, desired))
        return series

    def last_sample(self) -> Optional[MetricsSample]:
        """Return the most recent sample, if any."""
        return self.samples[-1] if self.samples else None
