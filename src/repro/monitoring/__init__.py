"""Monitoring substrate.

Plays the role of Prometheus + kube-state-metrics in the paper's testbed:
a sampler records, every three simulated seconds, the number of ready
replicas of every ReplicaSet, the endpoints of every Service, pod counts by
phase and control-plane health.  The orchestrator-level failure classifier
works entirely from these series, exactly as the paper's classifier works
from the scraped metrics.
"""

from repro.monitoring.metrics import MetricsCollector, MetricsSample

__all__ = ["MetricsCollector", "MetricsSample"]
