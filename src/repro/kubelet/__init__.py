"""The node agent (kubelet).

One :class:`~repro.kubelet.kubelet.Kubelet` runs per simulated Node.  It
renews the node's heartbeat Lease, admits pods bound to the node (enforcing
allocatable resources and preempting lower-priority pods when necessary),
starts their containers after a startup delay, applies the crash-restart
backoff circuit breaker, and reports pod status back to the Apiserver.
"""

from repro.kubelet.kubelet import Kubelet

__all__ = ["Kubelet"]
