"""Per-node agent.

The kubelet is the component that turns desired state ("this pod is bound to
this node") into observed state ("its containers are running and ready and
report this IP").  The behaviours that matter for the paper's failure modes
are modelled explicitly:

* heartbeats through the node Lease — losing them marks the node NotReady
  and can trigger eviction storms;
* admission against allocatable resources with priority-based preemption —
  this is what lets runaway system-priority pods terminate application pods;
* container start latency, image-pull failures and the crash-restart backoff
  circuit breaker;
* status reporting (phase, readiness, podIP) that overwrites corrupted
  values with correct ones — one of the natural recovery paths the paper
  observes (e.g. PodIP corruption is healed by the kubelet's next update).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apiserver.apiserver import APIServer
from repro.apiserver.client import APIClient
from repro.apiserver.errors import ApiError, NotFoundError
from repro.objects.kinds import make_lease
from repro.objects.quantities import node_allocatable, pod_resource_request
from repro.sim.engine import Simulation

#: Kubelet heartbeat period (node lease renewal), seconds.
HEARTBEAT_PERIOD = 10.0

#: Pod sync loop period, seconds.
POD_SYNC_PERIOD = 1.0

#: Simulated container start latency, seconds.
CONTAINER_START_DELAY = 2.0

#: Simulated readiness delay after the container starts, seconds.
READINESS_DELAY = 1.0

#: Initial crash-restart backoff, doubled on every restart up to the cap.
RESTART_BACKOFF_BASE = 2.0
RESTART_BACKOFF_MAX = 60.0

#: Period of the unconditional pod status re-report.  Real kubelets refresh
#: pod status on the same cadence as their sync loop; the periodic write is
#: what keeps Pod messages flowing on the Apiserver→etcd channel (and it is
#: also how corrupted status fields, e.g. the PodIP, get healed).
STATUS_REPORT_PERIOD = 10.0


@dataclass
class LocalPodState:
    """The kubelet's local bookkeeping for one pod."""

    uid: str
    name: str
    namespace: str
    state: str = "admitted"  # admitted | starting | running | crashloop | failed | terminating
    ready: bool = False
    pod_ip: Optional[str] = None
    restart_count: int = 0
    next_restart_at: float = 0.0
    started_at: Optional[float] = None
    last_status_report: float = -1.0


class Kubelet:
    """Simulated kubelet for a single node."""

    def __init__(
        self,
        sim: Simulation,
        apiserver: APIServer,
        node_name: str,
        node_index: int,
        failure_registry: Optional[dict] = None,
    ):
        self.sim = sim
        self.node_name = node_name
        self.node_index = node_index
        self.client = APIClient(apiserver, component=f"kubelet-{node_name}")
        self._local: dict[str, LocalPodState] = {}
        self._ip_counter = 0
        self.healthy = True
        #: Shared registry the workloads use to inject container-level
        #: failures (e.g. a crashing image) keyed by image name.
        self.failure_registry = failure_registry if failure_registry is not None else {}
        self.pods_admitted = 0
        self.pods_rejected = 0
        self.pods_preempted = 0
        self._tasks = []

    # ---------------------------------------------------------------- control

    def start(self) -> None:
        """Start the heartbeat and pod-sync loops."""
        self._tasks.append(
            self.sim.call_every(
                HEARTBEAT_PERIOD, self.heartbeat, delay=0.5, label=f"heartbeat-{self.node_name}"
            )
        )
        self._tasks.append(
            self.sim.call_every(
                POD_SYNC_PERIOD, self.sync_pods, delay=1.0, label=f"podsync-{self.node_name}"
            )
        )

    def stop(self) -> None:
        """Stop the kubelet loops (node failure)."""
        self.healthy = False
        for task in self._tasks:
            task.stop()
        self._tasks.clear()

    # -------------------------------------------------------------- heartbeat

    def heartbeat(self) -> None:
        """Renew the node Lease and the Ready condition heartbeat timestamp."""
        if not self.healthy:
            return
        lease_name = self.node_name
        try:
            try:
                lease = self.client.get("Lease", lease_name, namespace="kube-node-lease")
            except NotFoundError:
                lease = self.client.create(
                    "Lease", make_lease(lease_name, namespace="kube-node-lease", holder=self.node_name)
                )
            spec = lease.get("spec")
            if isinstance(spec, dict):
                spec["holderIdentity"] = self.node_name
                spec["renewTime"] = self.sim.now
                self.client.update("Lease", lease)
        except ApiError:
            pass
        try:
            node = self.client.get("Node", self.node_name, namespace=None)
            conditions = node.get("status", {}).get("conditions", [])
            if isinstance(conditions, list):
                for condition in conditions:
                    if isinstance(condition, dict) and condition.get("type") == "Ready":
                        condition["lastHeartbeatTime"] = self.sim.now
            self.client.update_status("Node", node)
        except ApiError:
            pass

    # --------------------------------------------------------------- pod sync

    def sync_pods(self) -> None:
        """Reconcile the pods bound to this node with local container state."""
        if not self.healthy:
            return
        try:
            # Field-selected list, as the real kubelet does: the apiserver
            # filters to this node's pods (and can serve them from one small
            # cached snapshot) instead of copying the whole Pod collection.
            bound = self.client.list("Pod", field_selector={"spec.nodeName": self.node_name})
        except ApiError:
            return

        bound_uids = set()
        for pod in bound:
            uid = pod.get("metadata", {}).get("uid")
            if not isinstance(uid, str):
                continue
            bound_uids.add(uid)
            self._sync_one(pod, bound)

        # Drop local state for pods that no longer exist (deleted from the store).
        for uid in list(self._local):
            if uid not in bound_uids:
                del self._local[uid]

    def _sync_one(self, pod: dict, bound: list[dict]) -> None:
        metadata = pod.get("metadata", {})
        uid = metadata.get("uid")
        local = self._local.get(uid)

        if metadata.get("deletionTimestamp") is not None:
            self._terminate(pod, local)
            return

        if local is None:
            self._admit(pod, bound)
            return

        if local.state == "starting" and local.started_at is not None:
            if self.sim.now >= local.started_at + CONTAINER_START_DELAY:
                self._start_containers(pod, local)
        elif local.state == "running":
            if not local.ready and local.started_at is not None:
                if self.sim.now >= local.started_at + CONTAINER_START_DELAY + READINESS_DELAY:
                    local.ready = True
                    self._report_status(pod, local)
            self._run_probes(pod, local)
        elif local.state == "crashloop":
            if self.sim.now >= local.next_restart_at:
                local.state = "starting"
                local.started_at = self.sim.now
                self._report_status(pod, local, phase="Pending")

    # -------------------------------------------------------------- admission

    def _admit(self, pod: dict, bound: list[dict]) -> None:
        metadata = pod.get("metadata", {})
        uid = metadata.get("uid")
        name = metadata.get("name", "")
        namespace = metadata.get("namespace", "default")
        if not isinstance(uid, str):
            return

        if not self._image_valid(pod):
            self._local[uid] = LocalPodState(
                uid=uid, name=name, namespace=namespace, state="failed"
            )
            self._report_status(pod, self._local[uid], phase="Pending", reason="ImagePullBackOff")
            return

        if not self._fits(pod, bound):
            if not self._preempt_for(pod, bound):
                self.pods_rejected += 1
                self._report_status(
                    pod,
                    LocalPodState(uid=uid, name=name, namespace=namespace),
                    phase="Pending",
                    reason="OutOfcpu",
                )
                return

        if not self._volumes_available(pod):
            self._local[uid] = LocalPodState(
                uid=uid, name=name, namespace=namespace, state="admitted"
            )
            self._report_status(
                pod, self._local[uid], phase="Pending", reason="ContainerCreating"
            )
            return

        self.pods_admitted += 1
        local = LocalPodState(
            uid=uid,
            name=name,
            namespace=namespace,
            state="starting",
            started_at=self.sim.now,
        )
        self._local[uid] = local

    def _fits(self, pod: dict, bound: list[dict]) -> bool:
        try:
            node = self.client.get("Node", self.node_name, namespace=None)
        except ApiError:
            return True
        cpu_alloc, mem_alloc = node_allocatable(node)
        cpu_used = 0.0
        mem_used = 0
        for other in bound:
            other_uid = other.get("metadata", {}).get("uid")
            if other_uid == pod.get("metadata", {}).get("uid"):
                continue
            if other_uid not in self._local:
                continue
            if self._local[other_uid].state not in ("starting", "running", "crashloop"):
                continue
            cpu, mem = pod_resource_request(other)
            cpu_used += cpu
            mem_used += mem
        cpu_req, mem_req = pod_resource_request(pod)
        return cpu_used + cpu_req <= cpu_alloc and mem_used + mem_req <= mem_alloc

    def _preempt_for(self, pod: dict, bound: list[dict]) -> bool:
        """Evict lower-priority local pods to admit a higher-priority one."""
        priority = self._pod_priority(pod)
        victims = []
        for other in bound:
            other_uid = other.get("metadata", {}).get("uid")
            if other_uid == pod.get("metadata", {}).get("uid") or other_uid not in self._local:
                continue
            if self._pod_priority(other) < priority:
                victims.append(other)
        if not victims:
            return False
        victims.sort(key=self._pod_priority)
        evicted_any = False
        for victim in victims:
            victim_meta = victim.get("metadata", {})
            try:
                self.client.delete(
                    "Pod", victim_meta.get("name", ""), namespace=victim_meta.get("namespace", "default")
                )
                self.pods_preempted += 1
                evicted_any = True
            except ApiError:
                continue
            victim_uid = victim_meta.get("uid")
            if isinstance(victim_uid, str):
                self._local.pop(victim_uid, None)
            remaining = [p for p in bound if p.get("metadata", {}).get("uid") != victim_uid]
            if self._fits(pod, remaining):
                return True
        return evicted_any and self._fits(pod, [p for p in bound if p.get("metadata", {}).get("uid") in self._local])

    @staticmethod
    def _pod_priority(pod: dict) -> int:
        spec = pod.get("spec", {})
        priority = spec.get("priority", 0) if isinstance(spec, dict) else 0
        if isinstance(priority, bool) or not isinstance(priority, int):
            return 0
        return priority

    def _image_valid(self, pod: dict) -> bool:
        spec = pod.get("spec", {})
        containers = spec.get("containers", []) if isinstance(spec, dict) else []
        if not isinstance(containers, list) or not containers:
            return False
        for container in containers:
            if not isinstance(container, dict):
                return False
            image = container.get("image")
            if not isinstance(image, str) or not image:
                return False
            if self.failure_registry.get(("image_pull_error", image)):
                return False
        return True

    def _volumes_available(self, pod: dict) -> bool:
        spec = pod.get("spec", {})
        volumes = spec.get("volumes", []) if isinstance(spec, dict) else []
        if not isinstance(volumes, list):
            return True
        for volume in volumes:
            if not isinstance(volume, dict):
                continue
            config_map = volume.get("configMap")
            if isinstance(config_map, dict):
                name = config_map.get("name")
                namespace = pod.get("metadata", {}).get("namespace", "default")
                if not isinstance(name, str):
                    return False
                try:
                    self.client.get("ConfigMap", name, namespace=namespace)
                except ApiError:
                    return False
        return True

    # ------------------------------------------------------------- containers

    def _start_containers(self, pod: dict, local: LocalPodState) -> None:
        crashing = False
        spec = pod.get("spec", {})
        containers = spec.get("containers", []) if isinstance(spec, dict) else []
        if isinstance(containers, list):
            for container in containers:
                if isinstance(container, dict) and self.failure_registry.get(
                    ("crash", container.get("image"))
                ):
                    crashing = True
                command = container.get("command") if isinstance(container, dict) else None
                if command is not None and not isinstance(command, list):
                    crashing = True
        if crashing:
            local.restart_count += 1
            backoff = min(
                RESTART_BACKOFF_BASE * (2 ** (local.restart_count - 1)), RESTART_BACKOFF_MAX
            )
            local.state = "crashloop"
            local.ready = False
            local.next_restart_at = self.sim.now + backoff
            self._report_status(pod, local, phase="Pending", reason="CrashLoopBackOff")
            return
        local.state = "running"
        if local.pod_ip is None:
            self._ip_counter += 1
            local.pod_ip = f"10.244.{self.node_index}.{self._ip_counter}"
        self._report_status(pod, local, phase="Running")

    def _run_probes(self, pod: dict, local: LocalPodState) -> None:
        """Liveness/readiness checks; also heal status fields corrupted in the store."""
        status = pod.get("status", {})
        if not isinstance(status, dict):
            return
        needs_update = False
        if status.get("phase") != "Running":
            needs_update = True
        if bool(status.get("ready")) != local.ready:
            needs_update = True
        if status.get("podIP") != local.pod_ip:
            # The stored podIP was corrupted (or never set); the kubelet's
            # periodic status update overwrites it with the correct value.
            needs_update = True
        if self.sim.now - local.last_status_report >= STATUS_REPORT_PERIOD:
            needs_update = True
        if needs_update:
            self._report_status(pod, local, phase="Running")

    def _terminate(self, pod: dict, local: Optional[LocalPodState]) -> None:
        metadata = pod.get("metadata", {})
        uid = metadata.get("uid")
        if isinstance(uid, str):
            self._local.pop(uid, None)
        try:
            self.client.delete(
                "Pod", metadata.get("name", ""), namespace=metadata.get("namespace", "default")
            )
        except ApiError:
            pass

    def _report_status(
        self,
        pod: dict,
        local: LocalPodState,
        phase: Optional[str] = None,
        reason: Optional[str] = None,
    ) -> None:
        status = pod.setdefault("status", {})
        if not isinstance(status, dict):
            pod["status"] = status = {}
        if phase is not None:
            status["phase"] = phase
        status["ready"] = local.ready and local.state == "running"
        status["podIP"] = local.pod_ip
        status["hostIP"] = f"192.168.0.{self.node_index + 10}"
        status["restartCount"] = local.restart_count
        if local.started_at is not None:
            status["startTime"] = local.started_at
        if reason is not None:
            status["reason"] = reason
        else:
            status.pop("reason", None)
        local.last_status_report = self.sim.now
        try:
            self.client.update_status("Pod", pod)
        except ApiError:
            pass

    # ------------------------------------------------------------------ stats

    def local_pods(self) -> list[LocalPodState]:
        """Return the kubelet's local pod bookkeeping (for tests)."""
        return list(self._local.values())

    def stats(self) -> dict:
        """Return admission counters."""
        return {
            "node": self.node_name,
            "admitted": self.pods_admitted,
            "rejected": self.pods_rejected,
            "preempted": self.pods_preempted,
            "local_pods": len(self._local),
        }
