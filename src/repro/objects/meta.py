"""Object metadata helpers.

Every resource instance carries an ``metadata`` section with the fields the
paper identifies as critical: ``name``, ``namespace``, ``uid``, ``labels``,
``ownerReferences`` and ``resourceVersion``.  The helpers here construct and
manipulate that section.
"""

from __future__ import annotations

import copy
import itertools
import marshal
from typing import Any, Optional

_uid_counter = itertools.count(1)


def new_uid() -> str:
    """Return a fresh unique identifier for a resource instance.

    UIDs only need to be unique within a simulation run; a monotonically
    increasing counter keeps them deterministic and readable in logs.
    """
    return f"uid-{next(_uid_counter):08d}"


def reset_uid_counter() -> None:
    """Reset the UID counter (used between experiments for determinism)."""
    global _uid_counter
    _uid_counter = itertools.count(1)


def make_object_meta(
    name: str,
    namespace: str = "default",
    labels: Optional[dict[str, str]] = None,
    annotations: Optional[dict[str, str]] = None,
    owner_references: Optional[list[dict]] = None,
    uid: Optional[str] = None,
) -> dict:
    """Build a ``metadata`` dictionary for a resource instance."""
    return {
        "name": name,
        "namespace": namespace,
        "uid": uid if uid is not None else new_uid(),
        "labels": dict(labels) if labels else {},
        "annotations": dict(annotations) if annotations else {},
        "ownerReferences": list(owner_references) if owner_references else [],
        "resourceVersion": 0,
        "creationTimestamp": None,
        "deletionTimestamp": None,
        "generation": 1,
    }


def make_owner_reference(owner: dict, controller: bool = True) -> dict:
    """Build an ownerReference entry pointing at ``owner``."""
    return {
        "kind": owner["kind"],
        "name": owner["metadata"]["name"],
        "uid": owner["metadata"]["uid"],
        "controller": controller,
    }


def owner_uids(obj: dict) -> set[str]:
    """Return the set of owner UIDs referenced by ``obj``.

    Corrupted metadata is tolerated: a missing or malformed
    ``ownerReferences`` list simply yields an empty set, which is exactly how
    a controller "loses" its children after an injection.
    """
    metadata = obj.get("metadata")
    if not isinstance(metadata, dict):
        return set()
    refs = metadata.get("ownerReferences")
    if not isinstance(refs, list):
        return set()
    uids = set()
    for ref in refs:
        if isinstance(ref, dict) and isinstance(ref.get("uid"), str):
            uids.add(ref["uid"])
    return uids


def controller_owner(obj: dict) -> Optional[dict]:
    """Return the ownerReference marked as controller, if any."""
    metadata = obj.get("metadata")
    if not isinstance(metadata, dict):
        return None
    refs = metadata.get("ownerReferences")
    if not isinstance(refs, list):
        return None
    for ref in refs:
        if isinstance(ref, dict) and ref.get("controller"):
            return ref
    return None


def deep_copy(obj: Any) -> Any:
    """Deep copy an API object (used on every read/write boundary).

    API objects are JSON-shaped trees — dicts, lists, tuples and immutable
    scalars — copied on every Apiserver read and write.  ``marshal`` copies
    such trees in C, several times faster than any Python-level recursion
    (and than :func:`copy.deepcopy`'s generic memo machinery); trees holding
    values marshal cannot serialize fall back to a direct recursive copy
    with identical semantics.
    """
    try:
        return marshal.loads(marshal.dumps(obj))
    except ValueError:
        return _deep_copy_fallback(obj)


def _deep_copy_fallback(obj: Any) -> Any:
    kind = type(obj)
    if kind is dict:
        return {key: _deep_copy_fallback(value) for key, value in obj.items()}
    if kind is list:
        return [_deep_copy_fallback(value) for value in obj]
    if kind is str or kind is int or kind is float or kind is bool or obj is None:
        return obj
    if kind is tuple:
        return tuple(_deep_copy_fallback(value) for value in obj)
    return copy.deepcopy(obj)


def object_key(obj: dict) -> str:
    """Return the ``namespace/name`` key of an object (best effort on corrupted data)."""
    metadata = obj.get("metadata", {})
    if not isinstance(metadata, dict):
        return "<corrupted>/<corrupted>"
    namespace = metadata.get("namespace", "default")
    name = metadata.get("name", "<unnamed>")
    return f"{namespace}/{name}"
