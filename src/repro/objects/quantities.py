"""Resource quantity parsing and arithmetic.

Pods request CPU in cores or millicores (``"500m"``) and memory in bytes with
binary suffixes (``"128Mi"``).  Nodes advertise allocatable capacity in the
same units.  The scheduler and the overload/exhaustion failure paths depend
on this arithmetic being correct, and on it being *tolerant*: a corrupted
quantity string must degrade predictably instead of crashing the scheduler.
"""

from __future__ import annotations

from typing import Union

_MEMORY_SUFFIXES = {
    "Ki": 1024,
    "Mi": 1024**2,
    "Gi": 1024**3,
    "Ti": 1024**4,
    "K": 1000,
    "M": 1000**2,
    "G": 1000**3,
    "T": 1000**4,
}


class QuantityError(ValueError):
    """Raised when a resource quantity string cannot be parsed."""


def parse_cpu(value: Union[str, int, float, None]) -> float:
    """Parse a CPU quantity into cores (float).

    Accepts integers/floats (cores), strings like ``"2"`` or ``"500m"``
    (millicores).  Raises :class:`QuantityError` on malformed strings.
    """
    if value is None:
        return 0.0
    if isinstance(value, bool):
        raise QuantityError(f"invalid CPU quantity {value!r}")
    if isinstance(value, (int, float)):
        if value < 0:
            raise QuantityError(f"negative CPU quantity {value!r}")
        return float(value)
    if isinstance(value, str):
        text = value.strip()
        if not text:
            raise QuantityError("empty CPU quantity")
        try:
            if text.endswith("m"):
                cores = int(text[:-1]) / 1000.0
            else:
                cores = float(text)
        except ValueError as exc:
            raise QuantityError(f"invalid CPU quantity {value!r}") from exc
        if cores < 0:
            raise QuantityError(f"negative CPU quantity {value!r}")
        return cores
    raise QuantityError(f"invalid CPU quantity {value!r}")


def parse_memory(value: Union[str, int, float, None]) -> int:
    """Parse a memory quantity into bytes (int).

    Accepts integers (bytes) and strings with decimal or binary suffixes.
    Raises :class:`QuantityError` on malformed strings.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        raise QuantityError(f"invalid memory quantity {value!r}")
    if isinstance(value, (int, float)):
        if value < 0:
            raise QuantityError(f"negative memory quantity {value!r}")
        return int(value)
    if isinstance(value, str):
        text = value.strip()
        if not text:
            raise QuantityError("empty memory quantity")
        for suffix, multiplier in _MEMORY_SUFFIXES.items():
            if text.endswith(suffix):
                number = text[: -len(suffix)]
                try:
                    parsed = int(float(number) * multiplier)
                except ValueError as exc:
                    raise QuantityError(f"invalid memory quantity {value!r}") from exc
                if parsed < 0:
                    raise QuantityError(f"negative memory quantity {value!r}")
                return parsed
        try:
            parsed = int(float(text))
        except ValueError as exc:
            raise QuantityError(f"invalid memory quantity {value!r}") from exc
        if parsed < 0:
            raise QuantityError(f"negative memory quantity {value!r}")
        return parsed
    raise QuantityError(f"invalid memory quantity {value!r}")


def safe_parse_cpu(value, default: float = 0.0) -> float:
    """Parse a CPU quantity, returning ``default`` on corrupted values."""
    try:
        return parse_cpu(value)
    except QuantityError:
        return default


def safe_parse_memory(value, default: int = 0) -> int:
    """Parse a memory quantity, returning ``default`` on corrupted values."""
    try:
        return parse_memory(value)
    except QuantityError:
        return default


def pod_resource_request(pod: dict) -> tuple[float, int]:
    """Return the total ``(cpu_cores, memory_bytes)`` requested by a Pod.

    Corrupted container specs contribute zero rather than raising, matching
    the real scheduler's behaviour of treating unparseable requests as empty.
    """
    spec = pod.get("spec")
    if not isinstance(spec, dict):
        return 0.0, 0
    containers = spec.get("containers")
    if not isinstance(containers, list):
        return 0.0, 0
    total_cpu = 0.0
    total_memory = 0
    for container in containers:
        if not isinstance(container, dict):
            continue
        resources = container.get("resources")
        if not isinstance(resources, dict):
            continue
        requests = resources.get("requests")
        if not isinstance(requests, dict):
            continue
        total_cpu += safe_parse_cpu(requests.get("cpu"))
        total_memory += safe_parse_memory(requests.get("memory"))
    return total_cpu, total_memory


def node_allocatable(node: dict) -> tuple[float, int]:
    """Return the ``(cpu_cores, memory_bytes)`` allocatable on a Node."""
    status = node.get("status")
    if not isinstance(status, dict):
        return 0.0, 0
    allocatable = status.get("allocatable")
    if not isinstance(allocatable, dict):
        return 0.0, 0
    return (
        safe_parse_cpu(allocatable.get("cpu")),
        safe_parse_memory(allocatable.get("memory")),
    )
