"""Label selector matching.

Label selectors are the "flexible but fragile" dependency mechanism the
paper's F2 finding is about: ReplicaSets, DaemonSets and Services all find
their Pods by matching labels.  A single corrupted character in a label or
selector silently breaks the relationship.
"""

from __future__ import annotations

from typing import Any, Optional


def selector_from_labels(labels: dict[str, str]) -> dict:
    """Build a selector that matches exactly the given labels."""
    return {"matchLabels": dict(labels)}


def _labels_of(obj: dict) -> dict:
    metadata = obj.get("metadata")
    if not isinstance(metadata, dict):
        return {}
    labels = metadata.get("labels")
    return labels if isinstance(labels, dict) else {}


def matches_selector(selector: Optional[dict], obj: dict) -> bool:
    """Return True if ``obj``'s labels satisfy ``selector``.

    Supports ``matchLabels`` and the ``matchExpressions`` operators ``In``,
    ``NotIn``, ``Exists`` and ``DoesNotExist``.  A corrupted selector (wrong
    type, missing keys) matches nothing rather than raising — mirroring how
    a real controller quietly stops finding its children.
    """
    if not isinstance(selector, dict):
        return False
    labels = _labels_of(obj)

    match_labels = selector.get("matchLabels")
    if match_labels is not None:
        if not isinstance(match_labels, dict):
            return False
        for key, value in match_labels.items():
            if labels.get(key) != value:
                return False

    expressions = selector.get("matchExpressions")
    if expressions is not None:
        if not isinstance(expressions, list):
            return False
        for expr in expressions:
            if not _matches_expression(expr, labels):
                return False

    if match_labels is None and expressions is None:
        # An empty selector matches nothing: this is the safe default the
        # apiserver validation enforces for workload controllers.
        return False
    return True


def _matches_expression(expr: Any, labels: dict[str, str]) -> bool:
    if not isinstance(expr, dict):
        return False
    key = expr.get("key")
    operator = expr.get("operator")
    values = expr.get("values", [])
    if not isinstance(key, str) or not isinstance(operator, str):
        return False
    if operator == "In":
        return isinstance(values, list) and labels.get(key) in values
    if operator == "NotIn":
        return isinstance(values, list) and labels.get(key) not in values
    if operator == "Exists":
        return key in labels
    if operator == "DoesNotExist":
        return key not in labels
    return False


def labels_subset(subset: dict[str, str], labels: dict[str, str]) -> bool:
    """Return True if every key/value in ``subset`` appears in ``labels``."""
    if not isinstance(subset, dict) or not isinstance(labels, dict):
        return False
    return all(labels.get(key) == value for key, value in subset.items())
