"""API object model.

Resources are represented the way Kubernetes itself represents them: as
nested dictionaries ("manifests").  This keeps field-level fault injection
natural — an injected field path addresses exactly the structure that is
serialized to the data store — while the helpers in this package provide the
typed constructors, label-selector matching, owner-reference bookkeeping and
resource-quantity arithmetic that the controllers need.
"""

from repro.objects.meta import (
    deep_copy,
    make_object_meta,
    make_owner_reference,
    new_uid,
    owner_uids,
)
from repro.objects.quantities import parse_cpu, parse_memory
from repro.objects.selectors import matches_selector, selector_from_labels
from repro.objects.kinds import (
    KINDS,
    make_configmap,
    make_daemonset,
    make_deployment,
    make_endpoints,
    make_lease,
    make_namespace,
    make_node,
    make_pod,
    make_replicaset,
    make_service,
)

__all__ = [
    "KINDS",
    "deep_copy",
    "make_configmap",
    "make_daemonset",
    "make_deployment",
    "make_endpoints",
    "make_lease",
    "make_namespace",
    "make_node",
    "make_object_meta",
    "make_owner_reference",
    "make_pod",
    "make_replicaset",
    "make_service",
    "matches_selector",
    "new_uid",
    "owner_uids",
    "parse_cpu",
    "parse_memory",
    "selector_from_labels",
]
