"""Constructors for the resource kinds handled by the simulated cluster.

The kinds mirror the subset of the Kubernetes API that the paper's
experiments exercise: Pod, ReplicaSet, Deployment, DaemonSet, Service,
Endpoints, Node, Namespace, ConfigMap and Lease.  Every constructor returns a
plain dictionary manifest so that field-level fault injection addresses the
exact structure stored in the data store.
"""

from __future__ import annotations

from typing import Optional

from repro.objects.meta import make_object_meta

#: Registry of supported kinds: plural resource name and whether namespaced.
KINDS: dict[str, dict] = {
    "Pod": {"plural": "pods", "namespaced": True},
    "ReplicaSet": {"plural": "replicasets", "namespaced": True},
    "Deployment": {"plural": "deployments", "namespaced": True},
    "DaemonSet": {"plural": "daemonsets", "namespaced": True},
    "Service": {"plural": "services", "namespaced": True},
    "Endpoints": {"plural": "endpoints", "namespaced": True},
    "ConfigMap": {"plural": "configmaps", "namespaced": True},
    "Lease": {"plural": "leases", "namespaced": True},
    "Event": {"plural": "events", "namespaced": True},
    "Node": {"plural": "nodes", "namespaced": False},
    "Namespace": {"plural": "namespaces", "namespaced": False},
}

#: Priority values (mirrors Kubernetes priority classes).
PRIORITY_DEFAULT = 0
PRIORITY_SYSTEM_NODE_CRITICAL = 2_000_001_000
PRIORITY_SYSTEM_CLUSTER_CRITICAL = 2_000_000_000


def make_container(
    name: str,
    image: str,
    command: Optional[list[str]] = None,
    cpu_request: str = "100m",
    memory_request: str = "64Mi",
    cpu_limit: Optional[str] = None,
    memory_limit: Optional[str] = None,
    port: Optional[int] = None,
) -> dict:
    """Build a container spec entry."""
    container = {
        "name": name,
        "image": image,
        "command": list(command) if command else [],
        "resources": {
            "requests": {"cpu": cpu_request, "memory": memory_request},
            "limits": {
                "cpu": cpu_limit if cpu_limit is not None else cpu_request,
                "memory": memory_limit if memory_limit is not None else memory_request,
            },
        },
        "ports": [],
    }
    if port is not None:
        container["ports"].append({"containerPort": port, "protocol": "TCP"})
    return container


def make_pod(
    name: str,
    namespace: str = "default",
    labels: Optional[dict[str, str]] = None,
    containers: Optional[list[dict]] = None,
    node_name: Optional[str] = None,
    priority: int = PRIORITY_DEFAULT,
    tolerations: Optional[list[dict]] = None,
    owner_references: Optional[list[dict]] = None,
    volumes: Optional[list[dict]] = None,
) -> dict:
    """Build a Pod manifest."""
    if containers is None:
        containers = [make_container(name="app", image="repro/flask-app:1.0", port=8080)]
    return {
        "kind": "Pod",
        "metadata": make_object_meta(
            name, namespace=namespace, labels=labels, owner_references=owner_references
        ),
        "spec": {
            "nodeName": node_name,
            "containers": containers,
            "priority": priority,
            "restartPolicy": "Always",
            "dnsPolicy": "ClusterFirst",
            "tolerations": list(tolerations) if tolerations else [],
            "volumes": list(volumes) if volumes else [],
            "terminationGracePeriodSeconds": 30,
        },
        "status": {
            "phase": "Pending",
            "podIP": None,
            "hostIP": None,
            "ready": False,
            "restartCount": 0,
            "startTime": None,
            "conditions": [],
        },
    }


def make_pod_template(
    labels: dict[str, str],
    containers: Optional[list[dict]] = None,
    priority: int = PRIORITY_DEFAULT,
    tolerations: Optional[list[dict]] = None,
    volumes: Optional[list[dict]] = None,
) -> dict:
    """Build the pod template embedded in workload controllers."""
    if containers is None:
        containers = [make_container(name="app", image="repro/flask-app:1.0", port=8080)]
    return {
        "metadata": {"labels": dict(labels), "annotations": {}},
        "spec": {
            "containers": containers,
            "priority": priority,
            "restartPolicy": "Always",
            "dnsPolicy": "ClusterFirst",
            "tolerations": list(tolerations) if tolerations else [],
            "volumes": list(volumes) if volumes else [],
            "terminationGracePeriodSeconds": 30,
        },
    }


def make_replicaset(
    name: str,
    namespace: str = "default",
    replicas: int = 1,
    labels: Optional[dict[str, str]] = None,
    selector: Optional[dict] = None,
    template: Optional[dict] = None,
    owner_references: Optional[list[dict]] = None,
) -> dict:
    """Build a ReplicaSet manifest."""
    pod_labels = labels if labels else {"app": name}
    return {
        "kind": "ReplicaSet",
        "metadata": make_object_meta(
            name, namespace=namespace, labels=dict(pod_labels), owner_references=owner_references
        ),
        "spec": {
            "replicas": replicas,
            "selector": selector if selector else {"matchLabels": dict(pod_labels)},
            "template": template if template else make_pod_template(pod_labels),
        },
        "status": {
            "replicas": 0,
            "readyReplicas": 0,
            "availableReplicas": 0,
            "observedGeneration": 0,
        },
    }


def make_deployment(
    name: str,
    namespace: str = "default",
    replicas: int = 1,
    labels: Optional[dict[str, str]] = None,
    containers: Optional[list[dict]] = None,
    max_unavailable: int = 0,
    max_surge: int = 1,
) -> dict:
    """Build a Deployment manifest with a RollingUpdate strategy."""
    pod_labels = labels if labels else {"app": name}
    return {
        "kind": "Deployment",
        "metadata": make_object_meta(name, namespace=namespace, labels=dict(pod_labels)),
        "spec": {
            "replicas": replicas,
            "selector": {"matchLabels": dict(pod_labels)},
            "template": make_pod_template(pod_labels, containers=containers),
            "strategy": {
                "type": "RollingUpdate",
                "rollingUpdate": {"maxUnavailable": max_unavailable, "maxSurge": max_surge},
            },
            "revisionHistoryLimit": 10,
        },
        "status": {
            "replicas": 0,
            "readyReplicas": 0,
            "availableReplicas": 0,
            "updatedReplicas": 0,
            "observedGeneration": 0,
        },
    }


def make_daemonset(
    name: str,
    namespace: str = "kube-system",
    labels: Optional[dict[str, str]] = None,
    containers: Optional[list[dict]] = None,
    priority: int = PRIORITY_SYSTEM_NODE_CRITICAL,
    tolerations: Optional[list[dict]] = None,
) -> dict:
    """Build a DaemonSet manifest (one Pod per eligible Node).

    DaemonSet pods default to the system-node-critical priority and tolerate
    every taint — which is why the paper's uncontrolled-replication example
    ends with DaemonSet pods preempting all application pods.
    """
    pod_labels = labels if labels else {"app": name}
    if tolerations is None:
        tolerations = [{"operator": "Exists"}]
    return {
        "kind": "DaemonSet",
        "metadata": make_object_meta(name, namespace=namespace, labels=dict(pod_labels)),
        "spec": {
            "selector": {"matchLabels": dict(pod_labels)},
            "template": make_pod_template(
                pod_labels, containers=containers, priority=priority, tolerations=tolerations
            ),
            "updateStrategy": {"type": "RollingUpdate"},
        },
        "status": {
            "desiredNumberScheduled": 0,
            "currentNumberScheduled": 0,
            "numberReady": 0,
            "observedGeneration": 0,
        },
    }


def make_service(
    name: str,
    namespace: str = "default",
    selector: Optional[dict[str, str]] = None,
    port: int = 80,
    target_port: int = 8080,
    cluster_ip: Optional[str] = None,
) -> dict:
    """Build a Service manifest (ClusterIP load balancer over selected Pods)."""
    return {
        "kind": "Service",
        "metadata": make_object_meta(name, namespace=namespace, labels={"app": name}),
        "spec": {
            "selector": dict(selector) if selector else {"app": name},
            "ports": [{"port": port, "targetPort": target_port, "protocol": "TCP"}],
            "clusterIP": cluster_ip,
            "type": "ClusterIP",
        },
        "status": {},
    }


def make_endpoints(
    name: str,
    namespace: str = "default",
    addresses: Optional[list[dict]] = None,
    port: int = 8080,
    owner_references: Optional[list[dict]] = None,
) -> dict:
    """Build an Endpoints manifest listing the ready backends of a Service."""
    return {
        "kind": "Endpoints",
        "metadata": make_object_meta(name, namespace=namespace, owner_references=owner_references),
        "subsets": [
            {
                "addresses": list(addresses) if addresses else [],
                "ports": [{"port": port, "protocol": "TCP"}],
            }
        ],
    }


def make_node(
    name: str,
    cpu: str = "8",
    memory: str = "4Gi",
    max_pods: int = 110,
    role: str = "worker",
    pod_cidr: Optional[str] = None,
) -> dict:
    """Build a Node manifest with allocatable resources and a Ready condition."""
    labels = {"kubernetes.io/hostname": name, "node-role.kubernetes.io/" + role: ""}
    return {
        "kind": "Node",
        "metadata": make_object_meta(name, namespace="", labels=labels),
        "spec": {
            "taints": [],
            "unschedulable": False,
            "podCIDR": pod_cidr,
        },
        "status": {
            "allocatable": {"cpu": cpu, "memory": memory, "pods": max_pods},
            "capacity": {"cpu": cpu, "memory": memory, "pods": max_pods},
            "conditions": [
                {"type": "Ready", "status": "True", "lastHeartbeatTime": 0.0},
            ],
            "addresses": [{"type": "InternalIP", "address": None}],
            "nodeInfo": {"kubeletVersion": "v1.27.4-sim", "osImage": "repro-linux"},
        },
    }


def make_namespace(name: str) -> dict:
    """Build a Namespace manifest."""
    return {
        "kind": "Namespace",
        "metadata": make_object_meta(name, namespace=""),
        "spec": {"finalizers": ["kubernetes"]},
        "status": {"phase": "Active"},
    }


def make_configmap(
    name: str, namespace: str = "kube-system", data: Optional[dict[str, str]] = None
) -> dict:
    """Build a ConfigMap manifest."""
    return {
        "kind": "ConfigMap",
        "metadata": make_object_meta(name, namespace=namespace),
        "data": dict(data) if data else {},
    }


def make_lease(
    name: str,
    namespace: str = "kube-node-lease",
    holder: Optional[str] = None,
    duration_seconds: int = 40,
) -> dict:
    """Build a Lease manifest (node heartbeats and leader election)."""
    return {
        "kind": "Lease",
        "metadata": make_object_meta(name, namespace=namespace),
        "spec": {
            "holderIdentity": holder,
            "leaseDurationSeconds": duration_seconds,
            "renewTime": None,
            "acquireTime": None,
            "leaseTransitions": 0,
        },
    }


def make_event(
    name: str,
    namespace: str,
    reason: str,
    message: str,
    involved_kind: str,
    involved_name: str,
) -> dict:
    """Build an Event manifest recording a notable cluster occurrence."""
    return {
        "kind": "Event",
        "metadata": make_object_meta(name, namespace=namespace),
        "reason": reason,
        "message": message,
        "involvedObject": {"kind": involved_kind, "name": involved_name},
        "count": 1,
    }
