"""The Apiserver validation layer.

The paper's propagation experiments (§V-C4, Table VI) show that the
Apiserver performs *general* validations — name format, required fields,
ranges, namespace/URL consistency, selector/template consistency — but
cannot detect values that are syntactically valid yet semantically wrong.
This module implements exactly that behaviour: structural checks are strict;
"valid but wrong" values (a label whose last character was flipped, a
replica count of 17 instead of 5) sail through.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.apiserver.errors import InvalidObjectError
from repro.hotpath import COUNTERS
from repro.objects.selectors import labels_subset
from repro.serialization.fieldpath import compile_path

#: RFC 1123 DNS label: what Kubernetes requires of most object names.
_DNS1123_RE = re.compile(r"^[a-z0-9]([-a-z0-9]*[a-z0-9])?$")
_LABEL_VALUE_RE = re.compile(r"^[A-Za-z0-9]([-A-Za-z0-9_.]*[A-Za-z0-9])?$|^$")

#: Precompiled accessors for the nested lookups validation repeats on every
#: workload write; :meth:`CompiledPath.find` tolerates missing or non-dict
#: intermediate nodes exactly like the chained ``.get``/``isinstance`` code
#: it replaces.
_TEMPLATE_LABELS_PATH = compile_path("spec.template.metadata.labels")
_TEMPLATE_SPEC_PATH = compile_path("spec.template.spec")

#: The largest replica count the Apiserver accepts; corrupt values beyond it
#: are caught, smaller wrong values are not.
MAX_REPLICAS = 10_000


class ValidationResult:
    """Outcome of validating an object: either ok or a list of reasons."""

    def __init__(self):
        self.errors: list[str] = []

    def add(self, message: str) -> None:
        self.errors.append(message)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            raise InvalidObjectError("; ".join(self.errors))


def _valid_name(name) -> bool:
    return isinstance(name, str) and 0 < len(name) <= 253 and bool(_DNS1123_RE.match(name))


def _valid_label_map(labels) -> bool:
    if not isinstance(labels, dict):
        return False
    for key, value in labels.items():
        if not isinstance(key, str) or not key:
            return False
        if not isinstance(value, str) or not _LABEL_VALUE_RE.match(value):
            return False
    return True


def validate_metadata(obj: dict, expected_namespace: Optional[str], result: ValidationResult) -> None:
    """Validate the metadata section common to every kind."""
    metadata = obj.get("metadata")
    if not isinstance(metadata, dict):
        result.add("metadata: missing or not an object")
        return
    name = metadata.get("name")
    if not _valid_name(name):
        result.add(f"metadata.name: invalid name {name!r}")
    namespace = metadata.get("namespace")
    if expected_namespace is not None and namespace != expected_namespace:
        # The namespace in the body must match the namespace in the request
        # URL; this is one of the checks the paper found effective.
        result.add(
            f"metadata.namespace: body namespace {namespace!r} does not match "
            f"request namespace {expected_namespace!r}"
        )
    labels = metadata.get("labels", {})
    if labels and not _valid_label_map(labels):
        result.add("metadata.labels: invalid label map")
    owner_refs = metadata.get("ownerReferences", [])
    if owner_refs is not None and not isinstance(owner_refs, list):
        result.add("metadata.ownerReferences: not a list")


def _validate_workload_selector(obj: dict, result: ValidationResult) -> None:
    """Check that a workload controller's selector matches its pod template.

    This is the validation that, per the paper, prevents the infinite-Pod-
    spawn pattern from being introduced through the Apiserver request path
    (though not when the value is corrupted after validation, on the way to
    etcd).
    """
    spec = obj.get("spec")
    if not isinstance(spec, dict):
        result.add("spec: missing or not an object")
        return
    selector = spec.get("selector")
    if not isinstance(selector, dict) or not selector.get("matchLabels"):
        result.add("spec.selector: missing matchLabels")
        return
    template = spec.get("template")
    if not isinstance(template, dict):
        result.add("spec.template: missing")
        return
    template_labels = _TEMPLATE_LABELS_PATH.find(obj, {})
    match_labels = selector.get("matchLabels", {})
    if not isinstance(match_labels, dict) or not isinstance(template_labels, dict):
        result.add("spec.selector: malformed matchLabels or template labels")
        return
    if not labels_subset(match_labels, template_labels):
        result.add("spec.selector: selector does not match template labels")


def _validate_replicas(obj: dict, result: ValidationResult) -> None:
    spec = obj.get("spec")
    if not isinstance(spec, dict):
        return
    replicas = spec.get("replicas")
    if replicas is None:
        return
    if not isinstance(replicas, int) or isinstance(replicas, bool):
        result.add(f"spec.replicas: not an integer ({replicas!r})")
    elif replicas < 0:
        result.add(f"spec.replicas: negative ({replicas})")
    elif replicas > MAX_REPLICAS:
        result.add(f"spec.replicas: {replicas} exceeds maximum {MAX_REPLICAS}")


def _validate_containers(spec: dict, path: str, result: ValidationResult) -> None:
    containers = spec.get("containers")
    if not isinstance(containers, list) or not containers:
        result.add(f"{path}.containers: at least one container is required")
        return
    for index, container in enumerate(containers):
        if not isinstance(container, dict):
            result.add(f"{path}.containers[{index}]: not an object")
            continue
        if not container.get("name"):
            result.add(f"{path}.containers[{index}].name: required")
        image = container.get("image")
        if not isinstance(image, str) or not image:
            result.add(f"{path}.containers[{index}].image: required")
        ports = container.get("ports", [])
        if isinstance(ports, list):
            for port_entry in ports:
                if not isinstance(port_entry, dict):
                    continue
                port = port_entry.get("containerPort")
                if port is not None and (
                    not isinstance(port, int) or isinstance(port, bool) or not 0 < port < 65536
                ):
                    result.add(f"{path}.containers[{index}].ports: invalid port {port!r}")


def _validate_pod(obj: dict, result: ValidationResult) -> None:
    spec = obj.get("spec")
    if not isinstance(spec, dict):
        result.add("spec: missing or not an object")
        return
    _validate_containers(spec, "spec", result)
    node_name = spec.get("nodeName")
    if node_name is not None and not isinstance(node_name, str):
        result.add("spec.nodeName: not a string")
    priority = spec.get("priority", 0)
    if priority is not None and (not isinstance(priority, int) or isinstance(priority, bool)):
        result.add("spec.priority: not an integer")


def _validate_service(obj: dict, result: ValidationResult) -> None:
    spec = obj.get("spec")
    if not isinstance(spec, dict):
        result.add("spec: missing or not an object")
        return
    selector = spec.get("selector")
    if selector is not None and not isinstance(selector, dict):
        result.add("spec.selector: not a map")
    ports = spec.get("ports")
    if not isinstance(ports, list) or not ports:
        result.add("spec.ports: at least one port is required")
        return
    for index, entry in enumerate(ports):
        if not isinstance(entry, dict):
            result.add(f"spec.ports[{index}]: not an object")
            continue
        for key in ("port", "targetPort"):
            value = entry.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or not 0 < value < 65536:
                result.add(f"spec.ports[{index}].{key}: invalid port {value!r}")


def _validate_node(obj: dict, result: ValidationResult) -> None:
    status = obj.get("status")
    if status is None:
        return
    if not isinstance(status, dict):
        result.add("status: not an object")
        return
    conditions = status.get("conditions")
    if conditions is not None and not isinstance(conditions, list):
        result.add("status.conditions: not a list")


def _validate_workload(obj: dict, result: ValidationResult) -> None:
    _validate_workload_selector(obj, result)
    _validate_replicas(obj, result)
    template_spec = _TEMPLATE_SPEC_PATH.find(obj)
    if isinstance(template_spec, dict):
        _validate_containers(template_spec, "spec.template.spec", result)


_KIND_VALIDATORS = {
    "Pod": _validate_pod,
    "ReplicaSet": _validate_workload,
    "Deployment": _validate_workload,
    "DaemonSet": _validate_workload,
    "Service": _validate_service,
    "Node": _validate_node,
}


def validate_object(kind: str, obj: dict, expected_namespace: Optional[str] = None) -> ValidationResult:
    """Run the validation chain for an object of the given kind."""
    COUNTERS.validations += 1
    result = ValidationResult()
    if not isinstance(obj, dict):
        result.add("object: not a map")
        return result
    if obj.get("kind") != kind:
        result.add(f"kind: expected {kind!r}, got {obj.get('kind')!r}")
    validate_metadata(obj, expected_namespace, result)
    validator = _KIND_VALIDATORS.get(kind)
    if validator is not None:
        validator(obj, result)
    return result
