"""Admission control.

After authentication/authorization and before persistence, the Apiserver
runs a chain of admission plugins that can mutate or reject the object.  The
paper points out that admission control "can change the message content,
even through custom code, possibly introducing errors" — the GKE webhook
outage of Figure 2 is an admission-webhook failure.  The chain here contains
the defaulting plugins the simulator needs plus an extension point for
custom (possibly faulty) webhooks.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.apiserver.errors import ForbiddenError
from repro.objects.kinds import PRIORITY_DEFAULT

#: An admission plugin receives ``(kind, obj, operation)`` and either mutates
#: the object in place, returns None (allow), or raises ForbiddenError.
AdmissionPlugin = Callable[[str, dict, str], None]


def default_pod_fields(kind: str, obj: dict, operation: str) -> None:
    """Fill in defaults for Pods (priority, restart policy, DNS policy)."""
    del operation
    if kind != "Pod" or not isinstance(obj.get("spec"), dict):
        return
    spec = obj["spec"]
    spec.setdefault("priority", PRIORITY_DEFAULT)
    spec.setdefault("restartPolicy", "Always")
    spec.setdefault("dnsPolicy", "ClusterFirst")
    spec.setdefault("tolerations", [])
    spec.setdefault("terminationGracePeriodSeconds", 30)


def default_workload_fields(kind: str, obj: dict, operation: str) -> None:
    """Fill in defaults for workload controllers (replicas, strategy)."""
    del operation
    if kind not in ("Deployment", "ReplicaSet", "DaemonSet") or not isinstance(
        obj.get("spec"), dict
    ):
        return
    spec = obj["spec"]
    if kind in ("Deployment", "ReplicaSet"):
        spec.setdefault("replicas", 1)
    if kind == "Deployment":
        spec.setdefault(
            "strategy",
            {"type": "RollingUpdate", "rollingUpdate": {"maxUnavailable": 0, "maxSurge": 1}},
        )


def deny_oversized_requests(kind: str, obj: dict, operation: str) -> None:
    """Reject requests that would create an implausibly large number of replicas.

    This plugin is *disabled by default*: the paper's F3 finding is precisely
    that the system does not detect hazardous user commands at scale.  The
    hardening benchmarks enable it to measure how many overload failures it
    prevents.
    """
    del operation
    if kind not in ("Deployment", "ReplicaSet"):
        return
    spec = obj.get("spec")
    if isinstance(spec, dict):
        replicas = spec.get("replicas")
        if isinstance(replicas, int) and not isinstance(replicas, bool) and replicas > 500:
            raise ForbiddenError(f"admission: replica count {replicas} exceeds policy limit 500")


class AdmissionChain:
    """Ordered chain of admission plugins applied to every write."""

    def __init__(self, plugins: Optional[list[AdmissionPlugin]] = None):
        if plugins is None:
            plugins = [default_pod_fields, default_workload_fields]
        self._plugins: list[AdmissionPlugin] = list(plugins)

    def add_plugin(self, plugin: AdmissionPlugin) -> None:
        """Append a plugin (e.g. a custom webhook) to the chain."""
        self._plugins.append(plugin)

    def admit(self, kind: str, obj: dict, operation: str) -> None:
        """Run the chain; plugins may mutate ``obj`` or raise ForbiddenError."""
        for plugin in self._plugins:
            plugin(kind, obj, operation)
