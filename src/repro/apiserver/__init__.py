"""The API server.

The Apiserver is the only component that talks to the data store; every
other component reads and writes cluster state through it.  This package
provides the request path (validation → admission → serialization → etcd
transaction), the watch hub that notifies controllers of state changes, and
the client wrapper used by components — the two communication channels the
Mutiny injector can tamper with.
"""

from repro.apiserver.apiserver import APIServer
from repro.apiserver.client import APIClient
from repro.apiserver.errors import (
    ApiError,
    ConflictError,
    InvalidObjectError,
    NotFoundError,
    ServerUnavailableError,
)

__all__ = [
    "APIClient",
    "APIServer",
    "ApiError",
    "ConflictError",
    "InvalidObjectError",
    "NotFoundError",
    "ServerUnavailableError",
]
