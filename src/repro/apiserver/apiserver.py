"""The Apiserver request path and watch hub.

Two properties matter for the fault-injection study and are modelled
faithfully:

* **Acknowledge now, reconcile later** (paper F4).  A write is acknowledged
  as soon as it is validated and persisted; whether the cluster ever reaches
  the requested state is decided later by the controllers.  The request log
  kept here is what the user-error analysis (Figure 7) inspects.
* **The Apiserver→etcd transaction is the injection point.**  Immediately
  before a transaction is handed to the (possibly replicated) data store,
  the registered write hook — the Mutiny injector — may corrupt the
  serialized bytes or drop the message entirely.  Corruption happens before
  consensus, so every replica stores the same wrong value.

The Apiserver also keeps a watch cache of decoded objects.  Reads are served
from the cache when possible, which is why corrupting data *at rest* in etcd
propagates differently from corrupting the transaction (paper §V-C1).
"""

from __future__ import annotations

import marshal
from dataclasses import dataclass
from typing import Callable, Optional

from repro.apiserver.admission import AdmissionChain
from repro.apiserver.errors import (
    AlreadyExistsError,
    ApiError,
    ConflictError,
    NotFoundError,
    ServerUnavailableError,
)
from repro.apiserver.registry import is_namespaced, kind_from_key, storage_key, storage_prefix
from repro.apiserver.validation import validate_object
from repro.etcd.raft import QuorumLost, RaftGroup
from repro.etcd.store import EtcdStore, EventType, StoreQuotaExceeded
from repro.objects.meta import deep_copy
from repro.objects.selectors import labels_subset
from repro.serialization import DecodeError, compile_path, decode_shared, encode
from repro.sim.engine import Simulation

#: Delay between a successful write and the delivery of watch notifications,
#: modelling the propagation latency of the watch channel.
WATCH_DELIVERY_DELAY = 0.05

#: Sentinel for field-selector misses; distinct from every storable value.
_FIELD_MISSING = object()


@dataclass
class WriteContext:
    """Metadata describing a single Apiserver→etcd transaction."""

    kind: str
    key: str
    operation: str
    actor: str
    name: str
    namespace: Optional[str]


@dataclass
class RequestRecord:
    """One request handled by the Apiserver, as seen by the requesting actor."""

    time: float
    actor: str
    operation: str
    kind: str
    name: str
    namespace: Optional[str]
    error: Optional[str] = None


#: Write hook signature: receives the transaction context and serialized
#: bytes; returns possibly-modified bytes, or None to drop the transaction.
EtcdWriteHook = Callable[[WriteContext, bytes], Optional[bytes]]

#: Watch handler signature: receives ("ADDED"|"MODIFIED"|"DELETED", object).
WatchHandler = Callable[[str, dict], None]


class APIServer:
    """Simulated kube-apiserver."""

    def __init__(
        self,
        sim: Simulation,
        store: EtcdStore,
        raft: Optional[RaftGroup] = None,
        admission: Optional[AdmissionChain] = None,
        serve_from_cache: bool = True,
    ):
        self.sim = sim
        self.store = store
        self.raft = raft
        self.admission = admission if admission is not None else AdmissionChain()
        self.serve_from_cache = serve_from_cache
        self.healthy = True
        self.request_log: list[RequestRecord] = []
        self.events: list[dict] = []
        self._cache: dict[str, dict] = {}
        #: Snapshot cache for ``list``: (prefix, selector) → (store revision,
        #: marshalled result list).  A snapshot is valid while no write has
        #: touched the listed kind since it was taken (``_kind_write_revs``),
        #: and a hit turns the per-object Python deep copy into one C-level
        #: ``marshal.loads``.
        self._list_cache: dict[tuple, tuple[int, bytes]] = {}
        #: Marshalled form of individual ``_cache`` entries, lazily built on
        #: ``get`` and dropped whenever the entry changes: repeated point
        #: reads of an unchanged object cost one ``marshal.loads`` instead of
        #: a Python deep copy.
        self._obj_blobs: dict[str, bytes] = {}
        #: Store revision of the last write observed per kind, maintained by
        #: the store watch; the snapshot validity check above compares
        #: against this instead of the global revision so that, e.g., Pod
        #: status churn does not invalidate Node or Service snapshots.
        self._kind_write_revs: dict[str, int] = {}
        self._watch_handlers: dict[str, list[WatchHandler]] = {}
        self._etcd_write_hook: Optional[EtcdWriteHook] = None
        self._store_watch_id = self.store.watch("/registry/", self._on_store_event)
        self.restart_count = 0

    # ------------------------------------------------------------------ hooks

    def set_etcd_write_hook(self, hook: Optional[EtcdWriteHook]) -> None:
        """Install (or clear) the transaction hook used by the Mutiny injector."""
        self._etcd_write_hook = hook

    def add_watch_handler(self, kind: str, handler: WatchHandler) -> None:
        """Register a component callback for changes to objects of ``kind``."""
        self._watch_handlers.setdefault(kind, []).append(handler)

    def record_event(self, reason: str, message: str, kind: str = "", name: str = "") -> None:
        """Record a cluster Event (observable by the monitoring substrate)."""
        self.events.append(
            {
                "time": self.sim.now,
                "reason": reason,
                "message": message,
                "kind": kind,
                "name": name,
            }
        )

    def restart(self) -> None:
        """Restart the Apiserver: the watch cache is dropped and rebuilt lazily."""
        self._cache.clear()
        self._list_cache.clear()
        self._obj_blobs.clear()
        self._kind_write_revs.clear()
        self.restart_count += 1
        self.record_event("ApiserverRestart", "apiserver restarted, cache dropped")

    # ------------------------------------------------------------- public API

    def create(self, kind: str, obj: dict, actor: str = "user") -> dict:
        """Create a resource instance; returns the stored object."""
        return self._write(kind, obj, operation="create", actor=actor)

    def update(self, kind: str, obj: dict, actor: str = "user") -> dict:
        """Update a resource instance (optimistic concurrency on resourceVersion)."""
        return self._write(kind, obj, operation="update", actor=actor)

    def update_status(self, kind: str, obj: dict, actor: str = "user") -> dict:
        """Update only the status of a resource instance (no generation bump)."""
        return self._write(kind, obj, operation="status", actor=actor)

    def get(
        self, kind: str, name: str, namespace: Optional[str] = "default", copy: bool = True
    ) -> dict:
        """Fetch a resource instance; raises NotFoundError if absent or undecodable.

        With ``copy=False`` the caller receives a reference into the watch
        cache and must treat it as **read-only** — the informer contract of
        real Kubernetes (objects from a shared informer cache must never be
        mutated).  Cache entries are replaced wholesale on writes, never
        mutated in place, so a held reference is a consistent snapshot.
        """
        self._check_readable()
        key = self._key(kind, namespace, name)
        if self.serve_from_cache and key in self._cache:
            if not copy:
                return self._cache[key]
            blobs = self._obj_blobs
            blob = blobs.get(key)
            if blob is None:
                try:
                    blob = marshal.dumps(self._cache[key])
                except ValueError:
                    return deep_copy(self._cache[key])
                if len(blobs) >= 4096:
                    blobs.clear()
                blobs[key] = blob
            return marshal.loads(blob)
        entry = self.store.get(key)
        if entry is None:
            raise NotFoundError(f"{kind} {namespace}/{name} not found")
        obj = self._decode_or_purge(key, entry.value)
        if obj is None:
            raise NotFoundError(f"{kind} {namespace}/{name} was undecodable and has been deleted")
        self._cache[key] = obj
        self._obj_blobs.pop(key, None)
        if not copy:
            return obj
        return deep_copy(obj)

    def list(
        self,
        kind: str,
        namespace: Optional[str] = None,
        label_selector: Optional[dict[str, str]] = None,
        field_selector: Optional[dict[str, object]] = None,
        copy: bool = True,
    ) -> list[dict]:
        """List resource instances, filtered by namespace, labels and fields.

        ``field_selector`` maps dotted field paths to required values, as in
        Kubernetes' ``spec.nodeName=worker-1``; an object whose path is
        missing (or whose intermediate node is corrupted into a scalar) does
        not match.

        With ``copy=False`` the returned objects are references into the
        watch cache and must be treated as **read-only** (the informer
        contract); the list itself is always the caller's own.
        """
        self._check_readable()
        prefix = storage_prefix(kind)
        if namespace and is_namespaced(kind):
            prefix = f"{prefix}{namespace}/"
        fields = (
            [(compile_path(path), value) for path, value in sorted(field_selector.items())]
            if field_selector
            else None
        )
        snapshot_key = None
        if self.serve_from_cache:
            # Serve a marshalled snapshot while no write has touched this
            # kind.  The result is a pure function of store state (cache
            # entries are the decoded store values), so the per-kind write
            # revision is a sound key; ``loads`` hands every caller an
            # independent tree.
            snapshot_key = (
                prefix,
                tuple(sorted(label_selector.items())) if label_selector else None,
                tuple(sorted(field_selector.items())) if field_selector else None,
            )
            snapshot = self._list_cache.get(snapshot_key)
            if snapshot is not None and snapshot[0] >= self._kind_write_revs.get(kind, 0):
                if not copy:
                    return list(snapshot[2])
                return marshal.loads(snapshot[1])
        refs = []
        for entry in self.store.range(prefix):
            if self.serve_from_cache and entry.key in self._cache:
                obj = self._cache[entry.key]
            else:
                obj = self._decode_or_purge(entry.key, entry.value)
                if obj is None:
                    continue
                self._cache[entry.key] = obj
                self._obj_blobs.pop(entry.key, None)
            if label_selector:
                metadata = obj.get("metadata", {})
                labels = metadata.get("labels", {}) if isinstance(metadata, dict) else {}
                if not labels_subset(label_selector, labels if isinstance(labels, dict) else {}):
                    continue
            if fields is not None and any(
                path.find(obj, _FIELD_MISSING) != value for path, value in fields
            ):
                continue
            refs.append(obj)
        if snapshot_key is not None:
            try:
                if len(self._list_cache) >= 256:
                    self._list_cache.clear()
                # One C-level dumps/loads pair replaces a Python deep copy per
                # object: the blob both refreshes the snapshot and produces
                # the caller's independent trees.  Revision read *after* the
                # scan: an undecodable-value purge above deletes from the
                # store and must not pin a stale key.
                blob = marshal.dumps(refs)
                self._list_cache[snapshot_key] = (self.store.revision, blob, refs)
                if not copy:
                    return list(refs)
                return marshal.loads(blob)
            except ValueError:
                pass  # non-marshallable value (never produced by decode)
        if not copy:
            return refs
        return [deep_copy(obj) for obj in refs]

    def delete(
        self, kind: str, name: str, namespace: Optional[str] = "default", actor: str = "user"
    ) -> bool:
        """Delete a resource instance; returns True if it existed."""
        record = RequestRecord(
            time=self.sim.now,
            actor=actor,
            operation="delete",
            kind=kind,
            name=name,
            namespace=namespace,
        )
        try:
            self._check_available()
            key = self._key(kind, namespace, name)
            existed = self.store.delete(key)
            self._cache.pop(key, None)
            self._obj_blobs.pop(key, None)
            if not existed:
                raise NotFoundError(f"{kind} {namespace}/{name} not found")
            return True
        except ApiError as exc:
            record.error = f"{exc.reason}: {exc}"
            raise
        finally:
            self.request_log.append(record)

    # -------------------------------------------------------------- internals

    def _key(self, kind: str, namespace: Optional[str], name: str) -> str:
        return storage_key(kind, namespace, name)

    def _check_available(self) -> None:
        self._check_readable()
        if self.store.alarm_active:
            raise ServerUnavailableError("etcd space alarm active")

    def _check_readable(self) -> None:
        """Reads require a healthy apiserver and quorum, but tolerate the space alarm."""
        if not self.healthy:
            raise ServerUnavailableError("apiserver is unhealthy")
        if self.raft is not None and not self.raft.has_quorum():
            raise ServerUnavailableError("etcd quorum unavailable")

    def _write(self, kind: str, obj: dict, operation: str, actor: str) -> dict:
        metadata = obj.get("metadata", {}) if isinstance(obj, dict) else {}
        name = metadata.get("name", "<unknown>") if isinstance(metadata, dict) else "<unknown>"
        namespace = metadata.get("namespace") if isinstance(metadata, dict) else None
        record = RequestRecord(
            time=self.sim.now,
            actor=actor,
            operation=operation,
            kind=kind,
            name=str(name),
            namespace=namespace if isinstance(namespace, str) else None,
        )
        try:
            self._check_available()
            obj = deep_copy(obj)
            expected_namespace = namespace if is_namespaced(kind) else None
            validate_object(kind, obj, expected_namespace).raise_if_failed()
            self.admission.admit(kind, obj, operation)
            key = self._key(kind, namespace if is_namespaced(kind) else None, obj["metadata"]["name"])
            existing_entry = self.store.get(key)

            if operation == "create":
                if existing_entry is not None and self._decode_or_purge(key, existing_entry.value):
                    raise AlreadyExistsError(f"{kind} {namespace}/{name} already exists")
                obj["metadata"]["creationTimestamp"] = self.sim.now
                obj["metadata"]["generation"] = 1
            else:
                if existing_entry is None:
                    raise NotFoundError(f"{kind} {namespace}/{name} not found")
                stored = self._decode_or_purge(key, existing_entry.value)
                if stored is None:
                    raise NotFoundError(f"{kind} {namespace}/{name} was undecodable")
                stored_rv = stored.get("metadata", {}).get("resourceVersion")
                incoming_rv = obj.get("metadata", {}).get("resourceVersion")
                if incoming_rv is not None and stored_rv is not None and incoming_rv != stored_rv:
                    raise ConflictError(
                        f"{kind} {namespace}/{name}: resourceVersion conflict "
                        f"({incoming_rv} != {stored_rv})"
                    )
                if operation == "update" and self._spec_changed(stored, obj):
                    generation = stored.get("metadata", {}).get("generation", 1)
                    obj["metadata"]["generation"] = (
                        generation + 1 if isinstance(generation, int) else 1
                    )
                else:
                    obj["metadata"]["generation"] = stored.get("metadata", {}).get("generation", 1)
                obj["metadata"]["creationTimestamp"] = stored.get("metadata", {}).get(
                    "creationTimestamp"
                )

            # Stamp the resourceVersion the object will have once committed.
            obj["metadata"]["resourceVersion"] = self.store.revision + 1

            data = encode(obj)
            context = WriteContext(
                kind=kind,
                key=key,
                operation=operation,
                actor=actor,
                name=str(obj["metadata"]["name"]),
                namespace=namespace if isinstance(namespace, str) else None,
            )
            if self._etcd_write_hook is not None:
                data = self._etcd_write_hook(context, data)
                if data is None:
                    # Message drop: the transaction silently never reaches the
                    # store, but the caller still receives an acknowledgement.
                    # ``obj`` is this call's private copy — hand it over.
                    return obj

            self._commit(key, data)

            # The cache is updated with what the Apiserver *believes* it wrote
            # only if the stored bytes still decode; otherwise the corrupted
            # bytes surface on the next read.
            try:
                self._cache[key] = decode_shared(data)
            except DecodeError:
                self._cache.pop(key, None)
            self._obj_blobs.pop(key, None)
            # ``obj`` is the private copy taken on entry; nothing here retains
            # it (the cache holds the decoded tree), so the caller owns it.
            return obj
        except ApiError as exc:
            record.error = f"{exc.reason}: {exc}"
            raise
        finally:
            self.request_log.append(record)

    def _commit(self, key: str, data: bytes) -> None:
        if self.raft is not None:
            try:
                self.raft.propose(payload_size=len(data))
            except QuorumLost as exc:
                raise ServerUnavailableError(str(exc)) from exc
        try:
            self.store.put(key, data)
        except StoreQuotaExceeded as exc:
            self.record_event("EtcdSpaceExhausted", str(exc))
            raise ServerUnavailableError(str(exc)) from exc

    @staticmethod
    def _spec_changed(old: dict, new: dict) -> bool:
        return old.get("spec") != new.get("spec") or (
            old.get("metadata", {}).get("labels") != new.get("metadata", {}).get("labels")
        )

    def _decode_or_purge(self, key: str, value: bytes) -> Optional[dict]:
        """Decode stored bytes; delete the key if undecodable (paper §II-D)."""
        try:
            # Shared-tree decode: the result goes straight into the watch
            # cache (or is only read), never mutated in place.
            return decode_shared(value)
        except DecodeError as exc:
            self.record_event(
                "UndecodableObjectDeleted",
                f"resource at {key} could not be decoded and was deleted: {exc}",
            )
            self.store.delete(key)
            self._cache.pop(key, None)
            self._obj_blobs.pop(key, None)
            return None

    # ---------------------------------------------------------------- watches

    def _on_store_event(self, event) -> None:
        kind = kind_from_key(event.key)
        if kind is None:
            return
        # Any write to this kind invalidates its list snapshots and the
        # key's point-read blob — tracked before the decode below so
        # undecodable writes invalidate too.
        self._kind_write_revs[kind] = event.revision
        self._obj_blobs.pop(event.key, None)
        if event.type == EventType.PUT:
            try:
                obj = decode_shared(event.value)
            except DecodeError:
                # Deliver nothing; the object will be purged on the next read.
                return
            event_type = "ADDED" if event.prev_value is None else "MODIFIED"
            # Cache entries are immutable by convention (replaced wholesale,
            # never edited), so the shared tree can be kept directly; handler
            # payloads below are separate copies.
            self._cache[event.key] = obj
        else:
            event_type = "DELETED"
            if event.prev_value is None:
                return
            try:
                obj = decode_shared(event.prev_value)
            except DecodeError:
                self._cache.pop(event.key, None)
                return
            self._cache.pop(event.key, None)
        handlers = self._watch_handlers.get(kind)
        if not handlers:
            return
        label = f"watch:{kind}:{event_type}"
        for handler in list(handlers):
            # Each handler owns its payload copy, taken synchronously here
            # (before any later write can replace the cached object).
            self.sim.call_after(
                WATCH_DELIVERY_DELAY,
                lambda handler=handler, payload=deep_copy(obj): handler(event_type, payload),
                label=label,
            )

    # ------------------------------------------------------------------ stats

    def user_errors(self, actor: str = "user") -> list[RequestRecord]:
        """Return the failed requests issued by the given actor."""
        return [record for record in self.request_log if record.actor == actor and record.error]

    def stats(self) -> dict:
        """Return request-path statistics."""
        return {
            "requests": len(self.request_log),
            "errors": sum(1 for record in self.request_log if record.error),
            "events": len(self.events),
            "cache_size": len(self._cache),
            "restarts": self.restart_count,
        }
