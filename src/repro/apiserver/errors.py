"""API error hierarchy.

These map onto the HTTP status classes the real Apiserver returns.  The
user-error analysis (paper §V-C3, Figure 7) counts experiments in which the
cluster user received any of these errors in response to a request.
"""

from __future__ import annotations


class ApiError(Exception):
    """Base class for errors returned by the Apiserver."""

    status_code = 500
    reason = "InternalError"


class InvalidObjectError(ApiError):
    """The object failed validation or could not be decoded (HTTP 400/422)."""

    status_code = 422
    reason = "Invalid"


class NotFoundError(ApiError):
    """The requested resource instance does not exist (HTTP 404)."""

    status_code = 404
    reason = "NotFound"


class ConflictError(ApiError):
    """The update conflicts with the stored resourceVersion (HTTP 409)."""

    status_code = 409
    reason = "Conflict"


class AlreadyExistsError(ApiError):
    """A resource with the same name already exists (HTTP 409)."""

    status_code = 409
    reason = "AlreadyExists"


class ForbiddenError(ApiError):
    """The request was rejected by admission control (HTTP 403)."""

    status_code = 403
    reason = "Forbidden"


class ServerUnavailableError(ApiError):
    """The data store is unavailable (no quorum or space alarm) (HTTP 503)."""

    status_code = 503
    reason = "ServiceUnavailable"
