"""Storage key layout for API objects.

Objects are stored under ``/registry/<plural>/<namespace>/<name>`` for
namespaced kinds and ``/registry/<plural>/<name>`` for cluster-scoped kinds,
mirroring the layout Kubernetes uses in etcd.
"""

from __future__ import annotations

from typing import Optional

from repro.objects.kinds import KINDS


class UnknownKindError(ValueError):
    """Raised when a request refers to a kind the registry does not know."""


def kind_info(kind: str) -> dict:
    """Return the registry entry for ``kind``; raise if unknown."""
    info = KINDS.get(kind)
    if info is None:
        raise UnknownKindError(f"unknown resource kind {kind!r}")
    return info


def is_namespaced(kind: str) -> bool:
    """True if the kind lives inside a namespace."""
    return bool(kind_info(kind)["namespaced"])


def storage_prefix(kind: str) -> str:
    """Return the etcd key prefix under which all instances of ``kind`` live."""
    return f"/registry/{kind_info(kind)['plural']}/"


def storage_key(kind: str, namespace: Optional[str], name: str) -> str:
    """Return the etcd key for a specific resource instance."""
    info = kind_info(kind)
    if info["namespaced"]:
        namespace = namespace if namespace else "default"
        return f"/registry/{info['plural']}/{namespace}/{name}"
    return f"/registry/{info['plural']}/{name}"


def kind_from_key(key: str) -> Optional[str]:
    """Return the kind stored at ``key``, or None if the key is not a registry key."""
    if not key.startswith("/registry/"):
        return None
    parts = key.split("/")
    if len(parts) < 4:
        return None
    plural = parts[2]
    for kind, info in KINDS.items():
        if info["plural"] == plural:
            return kind
    return None
