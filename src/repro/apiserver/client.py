"""Component-side API client.

Every control-plane and node component (Kcm, Scheduler, Kubelets, kube-proxy,
the kbench workload driver) talks to the Apiserver through an
:class:`APIClient`.  The client serializes requests before "sending" them,
which gives the Mutiny injector its second channel: messages from a component
to the Apiserver can be corrupted *before* they undergo validation and
admission — the propagation experiments of paper §V-C4 (Table VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.apiserver.apiserver import APIServer, RequestRecord
from repro.apiserver.errors import ApiError, InvalidObjectError
from repro.serialization import DecodeError, decode, encode


@dataclass
class RequestContext:
    """Metadata describing one component→Apiserver request."""

    component: str
    kind: str
    operation: str
    name: str
    namespace: Optional[str]


#: Request hook signature: receives the request context and serialized bytes;
#: returns possibly-modified bytes, or None to drop the request client-side.
RequestHook = Callable[[RequestContext, bytes], Optional[bytes]]


class APIClient:
    """A component's handle on the Apiserver."""

    def __init__(self, apiserver: APIServer, component: str):
        self.apiserver = apiserver
        self.component = component
        self._request_hook: Optional[RequestHook] = None
        self.requests_sent = 0
        self.requests_failed = 0

    def set_request_hook(self, hook: Optional[RequestHook]) -> None:
        """Install (or clear) the hook used to corrupt outgoing requests."""
        self._request_hook = hook

    # ------------------------------------------------------------------ reads

    def get(
        self, kind: str, name: str, namespace: Optional[str] = "default", copy: bool = True
    ) -> dict:
        """Fetch a resource instance.

        ``copy=False`` returns a read-only reference into the apiserver's
        watch cache (the informer contract): cheaper, but the caller must
        never mutate the result.
        """
        return self.apiserver.get(kind, name, namespace=namespace, copy=copy)

    def list(
        self,
        kind: str,
        namespace: Optional[str] = None,
        label_selector: Optional[dict[str, str]] = None,
        field_selector: Optional[dict[str, object]] = None,
        copy: bool = True,
    ) -> list[dict]:
        """List resource instances (``copy=False``: read-only cache refs)."""
        return self.apiserver.list(
            kind,
            namespace=namespace,
            label_selector=label_selector,
            field_selector=field_selector,
            copy=copy,
        )

    def watch(self, kind: str, handler) -> None:
        """Register a watch handler for a resource kind."""
        self.apiserver.add_watch_handler(kind, handler)

    # ----------------------------------------------------------------- writes

    def create(self, kind: str, obj: dict) -> dict:
        """Create a resource instance through the (hookable) request channel."""
        return self._send(kind, obj, "create")

    def update(self, kind: str, obj: dict) -> dict:
        """Update a resource instance through the (hookable) request channel."""
        return self._send(kind, obj, "update")

    def update_status(self, kind: str, obj: dict) -> dict:
        """Update a resource's status through the (hookable) request channel."""
        return self._send(kind, obj, "status")

    def delete(self, kind: str, name: str, namespace: Optional[str] = "default") -> bool:
        """Delete a resource instance."""
        self.requests_sent += 1
        try:
            return self.apiserver.delete(kind, name, namespace=namespace, actor=self.component)
        except ApiError:
            self.requests_failed += 1
            raise

    # -------------------------------------------------------------- internals

    def _send(self, kind: str, obj: dict, operation: str) -> dict:
        self.requests_sent += 1
        metadata = obj.get("metadata", {}) if isinstance(obj, dict) else {}
        context = RequestContext(
            component=self.component,
            kind=kind,
            operation=operation,
            name=str(metadata.get("name", "<unknown>")),
            namespace=metadata.get("namespace") if isinstance(metadata, dict) else None,
        )
        payload = obj
        if self._request_hook is not None:
            data = encode(obj)
            data = self._request_hook(context, data)
            if data is None:
                # The request is silently dropped before it leaves the
                # component (message-drop fault on this channel).
                return obj
            try:
                payload = decode(data)
            except DecodeError as exc:
                # A corrupted request that no longer parses is rejected by the
                # Apiserver exactly as an unparseable HTTP body would be.
                self.requests_failed += 1
                self.apiserver.request_log.append(
                    RequestRecord(
                        time=self.apiserver.sim.now,
                        actor=self.component,
                        operation=operation,
                        kind=kind,
                        name=context.name,
                        namespace=context.namespace,
                        error=f"BadRequest: undecodable request body ({exc})",
                    )
                )
                raise InvalidObjectError(f"request body could not be decoded: {exc}") from exc
        try:
            if operation == "create":
                return self.apiserver.create(kind, payload, actor=self.component)
            if operation == "update":
                return self.apiserver.update(kind, payload, actor=self.component)
            return self.apiserver.update_status(kind, payload, actor=self.component)
        except ApiError:
            self.requests_failed += 1
            raise
