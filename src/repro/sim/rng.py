"""Deterministic random number generation for the simulation.

All stochastic decisions in the simulator (jitter on periodic loops, network
latencies, which serialization byte a campaign corrupts, …) flow through a
:class:`DeterministicRNG` so that an experiment is fully determined by its
seed.  The class is a thin wrapper around :class:`random.Random` that adds
named sub-streams: two components drawing from differently named streams do
not perturb each other's sequences even if the order of their draws changes.
"""

from __future__ import annotations

import random
import zlib


class DeterministicRNG:
    """Seeded random source with named, independent sub-streams."""

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this RNG was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the named sub-stream, creating it on first use.

        The sub-stream seed is derived from the master seed and the CRC32 of
        the name, so it is stable across runs and across unrelated changes in
        the order streams are requested.
        """
        if name not in self._streams:
            derived = (self._seed * 2654435761 + zlib.crc32(name.encode("utf-8"))) % (2**63)
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw a uniform float in ``[low, high]`` from the named stream."""
        return self.stream(name).uniform(low, high)

    def randint(self, name: str, low: int, high: int) -> int:
        """Draw an integer in ``[low, high]`` (inclusive) from the named stream."""
        return self.stream(name).randint(low, high)

    def choice(self, name: str, seq):
        """Pick a random element of ``seq`` from the named stream."""
        return self.stream(name).choice(seq)

    def shuffle(self, name: str, seq: list) -> list:
        """Return a shuffled copy of ``seq`` using the named stream."""
        copy = list(seq)
        self.stream(name).shuffle(copy)
        return copy

    def jitter(self, name: str, base: float, fraction: float = 0.1) -> float:
        """Return ``base`` perturbed by up to ``±fraction`` of itself."""
        if base == 0:
            return 0.0
        return base * (1.0 + self.uniform(name, -fraction, fraction))

    def fork(self, salt: int) -> "DeterministicRNG":
        """Return a new RNG whose streams are independent of this one.

        Used by the campaign manager to give every experiment its own RNG
        derived from the campaign seed and the experiment index.
        """
        return DeterministicRNG((self._seed * 1000003 + salt) % (2**63))
