"""Discrete-event simulation kernel.

Every other substrate (etcd, apiserver, controllers, kubelets, network,
workloads) is driven by a single :class:`~repro.sim.engine.Simulation`
instance: components schedule callbacks at simulated timestamps and the
engine executes them in time order.  The kernel is deliberately small and
deterministic — the same seed always produces the same event interleaving,
which makes fault-injection experiments reproducible.
"""

from repro.sim.engine import Event, Simulation
from repro.sim.rng import DeterministicRNG

__all__ = ["DeterministicRNG", "Event", "Simulation"]
