"""The discrete-event simulation engine.

The engine maintains a priority queue of :class:`Event` objects keyed by
``(time, sequence_number)``.  Components schedule one-shot callbacks with
:meth:`Simulation.call_at` / :meth:`Simulation.call_after` and recurring
callbacks with :meth:`Simulation.call_every`.  Execution is strictly ordered
and single-threaded: there is no wall-clock time anywhere in the simulator.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.sim.rng import DeterministicRNG


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events run in ``(time, seq)`` order so that events scheduled for the same
    timestamp run in the order they were scheduled.  The heap itself stores
    ``(time, seq, event)`` tuples: tuple comparison short-circuits on the two
    floats/ints, so sifting never calls back into Python-level ``__lt__``.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None], label: str = ""):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False

    def __repr__(self) -> str:
        return f"Event(time={self.time!r}, seq={self.seq!r}, label={self.label!r})"

    def cancel(self) -> None:
        """Prevent the event from running when its time comes."""
        self.cancelled = True


class RecurringTask:
    """Handle for a periodic callback registered with :meth:`Simulation.call_every`."""

    def __init__(self, sim: "Simulation", callback: Callable[[], None], period: float, label: str):
        self._sim = sim
        self._callback = callback
        self._period = period
        self._label = label
        self._stopped = False
        self._pending: Optional[Event] = None

    @property
    def period(self) -> float:
        """Current period between invocations, in simulated seconds."""
        return self._period

    @period.setter
    def period(self, value: float) -> None:
        if value <= 0:
            raise SimulationError("recurring task period must be positive")
        self._period = value

    def stop(self) -> None:
        """Stop the task; the currently pending occurrence is cancelled."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()

    def _run_once(self) -> None:
        if self._stopped:
            return
        try:
            self._callback()
        finally:
            if not self._stopped:
                self._pending = self._sim.call_after(self._period, self._run_once, label=self._label)

    def start(self, delay: float = 0.0) -> "RecurringTask":
        """Schedule the first occurrence ``delay`` seconds from now."""
        self._pending = self._sim.call_after(delay, self._run_once, label=self._label)
        return self


class Simulation:
    """Single-threaded discrete-event simulation loop."""

    def __init__(self, rng: Optional[DeterministicRNG] = None):
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self.rng = rng if rng is not None else DeterministicRNG(0)
        self._events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (useful for progress accounting)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled placeholders)."""
        return len(self._queue)

    def call_at(self, when: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` to run at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when:.3f}, current time is {self._now:.3f}"
            )
        seq = next(self._counter)
        event = Event(time=when, seq=seq, callback=callback, label=label)
        heapq.heappush(self._queue, (when, seq, event))
        return event

    def call_after(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event with negative delay {delay:.3f}")
        return self.call_at(self._now + delay, callback, label=label)

    def call_every(
        self, period: float, callback: Callable[[], None], delay: float = 0.0, label: str = ""
    ) -> RecurringTask:
        """Schedule ``callback`` to run every ``period`` seconds, starting after ``delay``."""
        if period <= 0:
            raise SimulationError("period must be positive")
        return RecurringTask(self, callback, period, label).start(delay)

    def run_until(self, deadline: float, max_events: Optional[int] = None) -> None:
        """Run events in time order until the deadline is reached.

        Events scheduled exactly at the deadline are executed.  ``max_events``
        bounds the number of events executed in this call, protecting the
        caller against runaway event storms (which fault injection can and
        does create).
        """
        executed = 0
        queue = self._queue
        while queue:
            when = queue[0][0]
            if when > deadline:
                break
            event = heapq.heappop(queue)[2]
            if event.cancelled:
                continue
            self._now = when
            event.callback()
            self._events_executed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if self._now < deadline:
            self._now = deadline

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Run the simulation for ``duration`` simulated seconds."""
        self.run_until(self._now + duration, max_events=max_events)

    def step(self) -> bool:
        """Execute the next pending event; return False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)[2]
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._events_executed += 1
            return True
        return False
