"""Per-phase counters for the simulation hot path.

``repro.cli profile`` wraps a campaign in cProfile *and* these counters:
cProfile says where the wall-clock goes, the counters say how many times
each hot phase actually ran per experiment — encodes, decodes, validations,
watch dispatches — and how often the codec's decode cache and the store's
skip-if-no-subscriber dispatch short-circuited the work.  The numbers turn
"the codec is probably hot" into a measured claim, and the nightly
regression gate keeps the optimizations honest afterwards.

Incrementing a counter is a single attribute add on a ``__slots__``
instance, cheap enough to stay enabled permanently; the committed benchmark
baseline includes the cost.

This module must not import anything from :mod:`repro` — it sits below the
codec, the store and the validation layer, all of which import it.
"""

from __future__ import annotations


class HotPathCounters:
    """Cumulative hot-phase execution counts for this process."""

    __slots__ = (
        "encodes",
        "decodes",
        "decode_cache_hits",
        "validations",
        "watch_dispatches",
        "watch_events_skipped",
        "experiments",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        """Zero every counter (the profile subcommand resets before a run)."""
        self.encodes = 0
        self.decodes = 0
        self.decode_cache_hits = 0
        self.validations = 0
        self.watch_dispatches = 0
        self.watch_events_skipped = 0
        self.experiments = 0

    def snapshot(self) -> dict:
        """Return the current counts as a plain dictionary."""
        return {name: getattr(self, name) for name in self.__slots__}

    def render(self) -> str:
        """Render the per-phase counter report, with per-experiment averages."""
        experiments = max(self.experiments, 1)
        decode_requests = self.decodes + self.decode_cache_hits
        hit_rate = (
            100.0 * self.decode_cache_hits / decode_requests if decode_requests else 0.0
        )
        dispatch_events = self.watch_dispatches + self.watch_events_skipped
        skip_rate = (
            100.0 * self.watch_events_skipped / dispatch_events if dispatch_events else 0.0
        )

        def row(label: str, value: int, extra: str = "") -> str:
            per = value / experiments
            text = f"  {label:<28} {value:>10}  ({per:,.1f}/experiment)"
            return text + (f"  {extra}" if extra else "")

        lines = [
            f"hot-path counters ({self.experiments} experiment(s), golden runs included)",
            row("encodes", self.encodes),
            row("decodes", self.decodes),
            row(
                "decode cache hits",
                self.decode_cache_hits,
                f"[{hit_rate:.1f}% of decode requests]",
            ),
            row("validations", self.validations),
            row("watch dispatches", self.watch_dispatches),
            row(
                "watch events skipped",
                self.watch_events_skipped,
                f"[{skip_rate:.1f}% of store events had no subscriber]",
            ),
        ]
        return "\n".join(lines)


#: The process-wide counter instance every hot-path layer increments.
COUNTERS = HotPathCounters()
