"""MUT001 — informer-contract mutation checker.

PR 6 made ``APIServer.get/list`` (and the client wrappers) return *references
into the watch cache* under ``copy=False``: entries are immutable by
convention, every legitimate write replaces the cached object wholesale via
the apiserver.  A consumer that mutates such a reference in place corrupts
the shared snapshot every other controller reads — silently, until a digest
diverges three layers away.  This checker mechanizes the convention: any
name bound from a ``.get(..., copy=False)`` / ``.list(..., copy=False)``
call (or iterated out of one) is *tainted*, and attribute/item assignment or
a mutating method call on it is a finding unless the name was first rebound
through :func:`repro.objects.meta.deep_copy`.

The analysis is intraprocedural and lexical (statements in source order, one
symbol table per function).  Taint does not flow through function calls or
parameters — the checker is a convention gate for the common direct pattern,
not an escape analysis; the copy-on-write sites it cannot see are the ones
code review still owns.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.framework import Checker, root_name

#: Methods whose call mutates their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "setdefault", "sort", "reverse", "add", "discard",
    }
)

#: Accessor names whose ``copy=False`` form returns cache references.
CACHE_READERS = frozenset({"get", "list"})


def _is_copy_false_read(node: ast.AST) -> bool:
    """``<obj>.get(..., copy=False)`` or ``<obj>.list(..., copy=False)``."""
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return False
    if node.func.attr not in CACHE_READERS:
        return False
    for keyword in node.keywords:
        if keyword.arg == "copy" and isinstance(keyword.value, ast.Constant):
            return keyword.value.value is False
    return False


def _is_deep_copy_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Name):
        return node.func.id == "deep_copy"
    if isinstance(node.func, ast.Attribute):
        return node.func.attr == "deep_copy"
    return False


class InformerMutationChecker(Checker):
    code = "MUT001"
    name = "informer-mutation"
    title = "Mutation of a copy=False informer cache reference"
    explanation = """\
Contract (PR 6): `APIServer.get`/`list` and the client wrappers return
*references into the apiserver watch cache* when called with `copy=False`.
Those objects are shared by every controller, the metrics scraper, the
network layer, and the injector's field recorder; they are immutable by
convention — all legitimate writes replace the cached entry wholesale
through `client.update(...)`/`update_status(...)`.

Mutating a cache reference in place bypasses the apiserver entirely: no
revision bump, no watch event, no admission/validation pass — every other
reader sees the edit immediately and the campaign digest diverges from the
serial baseline in a way nothing logs.  This is exactly the silent
cross-layer contract violation the Mutiny paper (DSN 2024) documents as the
dominant Kubernetes failure pattern.

Correct pattern — copy at the mutation point, then write back:

    pod = deep_copy(pod)          # listed refs are read-only
    pod["metadata"]["ownerReferences"].append(ref)
    client.update("Pod", pod)

The checker taints names bound from `.get(..., copy=False)` /
`.list(..., copy=False)` calls (and loop variables iterating them) and
flags attribute/item assignment, `del`, augmented assignment, and mutating
method calls (`append`, `update`, `setdefault`, ...) through them.
Rebinding a name via `deep_copy(...)` clears its taint.  The analysis is
per-function and lexical; taint does not cross call boundaries.
"""

    def __init__(self, file):
        super().__init__(file)
        #: name -> (line of the copy=False read, kind) per function.  Kind
        #: "ref": the name is (or may be) a cache reference — any in-place
        #: mutation is a finding.  Kind "elements": the name is a fresh
        #: container whose *elements* are cache refs — mutating the
        #: container is fine, but iterating it yields "ref"-tainted names.
        self._tainted: dict[str, tuple[int, str]] = {}

    # ------------------------------------------------------------- functions

    def _visit_function(self, node) -> None:
        outer = self._tainted
        self._tainted = {}
        for statement in node.body:
            self.visit(statement)
        self._tainted = outer

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # ----------------------------------------------------------------- taint

    def _taints_from_value(self, value: ast.AST) -> Optional[tuple[int, str]]:
        """The ``(line, kind)`` taint a value expression carries, or ``None``."""
        if _is_copy_false_read(value):
            return (value.lineno, "ref")
        if isinstance(value, ast.Name) and value.id in self._tainted:
            return self._tainted[value.id]
        if isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            # A comprehension over a tainted iterable builds a *fresh*
            # container whose items are cache refs — unless every element is
            # routed through deep_copy.
            if _is_deep_copy_call(value.elt):
                return None
            for generator in value.generators:
                taint = self._taints_from_value(generator.iter)
                if taint is not None:
                    return (taint[0], "elements")
        return None

    def _bind(self, target: ast.AST, taint: Optional[tuple[int, str]]) -> None:
        if isinstance(target, ast.Name):
            if taint is None:
                self._tainted.pop(target.id, None)
            else:
                self._tainted[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint)

    def _flag_if_tainted(self, node: ast.AST, action: str) -> None:
        name = root_name(node)
        if name is None:
            return
        taint = self._tainted.get(name)
        if taint is not None and taint[1] == "ref":
            self.report(
                node,
                f"{action} through {name!r}, a copy=False informer cache "
                f"reference (read at line {taint[0]}); "
                "deep_copy() it before mutating, then write back via the "
                "apiserver",
            )

    # ------------------------------------------------------------ statements

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node.value)  # nested mutating calls inside value
        taint = None if _is_deep_copy_call(node.value) else self._taints_from_value(node.value)
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self._flag_if_tainted(target, "item/attribute assignment")
            else:
                self._bind(target, taint)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node.value)
        if isinstance(node.target, (ast.Attribute, ast.Subscript)):
            self._flag_if_tainted(node.target, "augmented assignment")
        elif isinstance(node.target, ast.Name):
            taint = self._tainted.get(node.target.id)
            if taint is not None and taint[1] == "ref":
                self.report(
                    node,
                    f"augmented assignment to {node.target.id!r}, a copy=False "
                    f"informer cache reference (read at line {taint[0]}); "
                    "deep_copy() it first",
                )

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.generic_visit(node.value)
            taint = None if _is_deep_copy_call(node.value) else self._taints_from_value(node.value)
            if isinstance(node.target, (ast.Attribute, ast.Subscript)):
                self._flag_if_tainted(node.target, "item/attribute assignment")
            else:
                self._bind(node.target, taint)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self._flag_if_tainted(target, "del")
            elif isinstance(target, ast.Name):
                self._tainted.pop(target.id, None)

    def visit_For(self, node: ast.For) -> None:
        self.generic_visit(node.iter)
        # Iterating either taint kind yields cache references: items of a
        # copy=False list are refs, and so are items of a fresh container
        # built from one.
        taint = self._taints_from_value(node.iter)
        self._bind(node.target, (taint[0], "ref") if taint is not None else None)
        for statement in node.body + node.orelse:
            self.visit(statement)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
        ):
            self._flag_if_tainted(node.func.value, f"mutating call .{node.func.attr}()")
        self.generic_visit(node)
