"""MUT002 — transport-purity checker.

PR 4 extracted the :class:`~repro.core.transport.ShardTransport` seven-op
contract (put, put_if_absent, get/get_with_stat, list/list_iter, stat,
delete/delete_if_unchanged, refresh, plus the PR 5 append) precisely so the
store, lease, federation, and service layers never touch bytes directly:
the POSIX and object-store backends implement durability (fsync'd atomic
renames, conditional HTTP) and the retried-request-ambiguity rules exactly
once.  A direct ``open()``/``os.rename()``/``http.client`` call in those
layers reopens every bug the transport closed — non-atomic writes, torn
shards, leases that double-claim under retry.

This checker bans direct file and raw-HTTP I/O in the store-consuming
modules (``core/resultstore.py``, ``core/distributed.py``,
``core/federate.py``, and everything under ``service/``).  The transport
implementations themselves (``core/transport.py``, ``core/objstore.py``)
are the contract's floor and are out of scope by construction.
"""

from __future__ import annotations

import ast

from repro.lint.framework import Checker, dotted_name

#: Files / packages the purity contract covers (repro-package-relative).
SCOPE_FILES = frozenset(
    {
        ("core", "resultstore.py"),
        ("core", "distributed.py"),
        ("core", "federate.py"),
    }
)
SCOPE_DIRS = frozenset({"service"})

#: ``os`` functions that create, destroy, or rewrite filesystem state.
BANNED_OS = frozenset(
    {
        "remove", "rename", "unlink", "replace", "rmdir", "removedirs",
        "mkdir", "makedirs", "open", "write", "truncate", "fsync",
        "link", "symlink",
    }
)

#: Fully dotted callables that bypass the transport.
BANNED_DOTTED = frozenset(
    {
        "gzip.open", "io.open", "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryFile", "tempfile.mkstemp",
    }
)

#: Modules whose import alone marks a bypass (any use is raw I/O).
BANNED_MODULES = frozenset({"shutil", "http.client", "urllib.request"})


class TransportPurityChecker(Checker):
    code = "MUT002"
    name = "transport-purity"
    title = "Direct storage I/O bypassing the ShardTransport contract"
    explanation = """\
Contract (PR 4/5): every byte the shard store, the slice leases, the
federation merge, or the campaign service persists or reads travels through
the `ShardTransport` seven-op contract (`put`, `put_if_absent`,
`get`/`get_with_stat`, `list`/`list_iter`, `stat` with generation tokens,
`delete`/`delete_if_unchanged`, `refresh`, `append`).  The transports own
atomicity (fsync'd temp-file renames on POSIX, conditional HTTP on the
object store) and the documented retried-request-ambiguity rules — the
regression class PR 5 swept (a retried `delete_if_unchanged` walking away
from a slice it freed, a dropped `refresh` response surrendering a live
lease).

A direct `open()`, `os.remove`/`os.rename`, `shutil.*`, `gzip.open`, or
raw `http.client` call in `core/resultstore.py`, `core/distributed.py`,
`core/federate.py`, or `service/` silently forks the storage semantics:
the write is no longer atomic, no longer conditional, invisible to the
object-store backend, and exempt from the ambiguity rules.  Such code
works on a developer laptop and corrupts stores on NFS or under retry.

Correct pattern: take a `transport_for(root)` (or the store's
`.transport`) and express the operation in the seven ops; if an operation
genuinely cannot be expressed, extend the transport contract — in
`core/transport.py`, where both backends and the fault-injection proxy
implement it once.

Out of scope by construction: `core/transport.py` and `core/objstore.py`
(the implementations), and non-storage modules.  Intentional raw-HTTP
sites that are *not* storage (the service's control-plane client) carry a
justified inline suppression.
"""

    @classmethod
    def applies_to(cls, relparts: tuple[str, ...]) -> bool:
        if tuple(relparts[-2:]) in SCOPE_FILES:
            return True
        return bool(relparts) and relparts[0] in SCOPE_DIRS

    # -------------------------------------------------------------- imports

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in BANNED_MODULES:
                self.report(
                    node,
                    f"import of {alias.name!r} in a transport-pure module; "
                    "storage I/O must go through the ShardTransport seven ops",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module in BANNED_MODULES:
            self.report(
                node,
                f"import from {module!r} in a transport-pure module; "
                "storage I/O must go through the ShardTransport seven ops",
            )
        if module == "http" and any(alias.name == "client" for alias in node.names):
            self.report(
                node,
                "import of 'http.client' in a transport-pure module; "
                "storage I/O must go through the ShardTransport seven ops",
            )
        if module == "os":
            for alias in node.names:
                if alias.name in BANNED_OS:
                    self.report(
                        node,
                        f"import of 'os.{alias.name}' in a transport-pure module; "
                        "storage I/O must go through the ShardTransport seven ops",
                    )
        self.generic_visit(node)

    # ---------------------------------------------------------------- calls

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            self.report(
                node,
                "direct open() in a transport-pure module; read/write through "
                "the ShardTransport seven ops instead",
            )
        dotted = dotted_name(node.func)
        if dotted is not None:
            if dotted.startswith("os.") and dotted.split(".", 1)[1] in BANNED_OS:
                self.report(
                    node,
                    f"direct {dotted}() in a transport-pure module; storage "
                    "mutation belongs behind the ShardTransport contract",
                )
            elif dotted in BANNED_DOTTED:
                self.report(
                    node,
                    f"direct {dotted}() in a transport-pure module; storage I/O "
                    "belongs behind the ShardTransport contract",
                )
            elif dotted.startswith(("shutil.", "http.client.", "urllib.request.")):
                self.report(
                    node,
                    f"direct {dotted}() in a transport-pure module; storage I/O "
                    "belongs behind the ShardTransport contract",
                )
        self.generic_visit(node)
